//! The versioned, length-prefixed binary wire protocol.
//!
//! Every message — request or response — is one *frame*:
//!
//! ```text
//! ┌────────────┬───────────┬────────┬──────────────┐
//! │ len: u32LE │ ver: u8   │ kind:u8│ body (len-2) │
//! └────────────┴───────────┴────────┴──────────────┘
//! ```
//!
//! `len` counts everything after the prefix (version byte + kind byte +
//! body). All integers are little-endian; floats are IEEE-754 bit patterns.
//! The *payload* of a frame is the `len` bytes after the prefix.
//!
//! Request bodies:
//!
//! * [`RequestKind::ComputeCds`] — `flags u8, deadline_ms u32, policy u8,
//!   schedule u8, rule2 u8, application u8, has_energy u8, n u32, m u32,
//!   edges m×(u32,u32), energy n×u64 (iff has_energy)`. Edge order on the
//!   wire is arbitrary; the server canonicalises before cache keying.
//! * [`RequestKind::GenCompute`] — `flags u8, deadline_ms u32, policy u8,
//!   schedule u8, rule2 u8, application u8, n u32, seed u64, radius f64,
//!   side f64, connected u8, has_energy_seed u8, energy_seed u64`.
//! * [`RequestKind::Stats`] — `format u8` (0 table, 1 jsonl, 2 prometheus).
//! * [`RequestKind::Ping`] — empty body.
//! * [`RequestKind::OpenGraph`] — `name_len u16, name, config 4 bytes,
//!   shards u32, radius f64, bounds 4×f64, n u32, points n×(f64,f64),
//!   energy n×u64` (energy is always present — it is churn-graph state).
//! * [`RequestKind::Mutate`] — `name_len u16, name, k u32, k × event`
//!   where an event is `kind u8` (0 Add, 1 Move, 2 Kill, 3 Drain)
//!   followed by that kind's fields ([`WireEvent`]).
//! * [`RequestKind::CloseGraph`] — `name_len u16, name`.
//! * [`RequestKind::QueryTile`] — `name_len u16, name, tile u32`.
//! * [`RequestKind::Subscribe`] — `flags u8 ([`SUB_STATS`] | [`SUB_FLIPS`]),
//!   interval_ms u32, name_len u16, name` (`name_len` 0 = all graphs).
//!
//! Response bodies:
//!
//! * [`ResponseKind::CdsResult`] — `cache_hit u8, n u32, marked u32,
//!   after_rule1 u32, gateways u32, rounds u32, mask ⌈n/8⌉ bytes` (bit `v`
//!   of the mask = host `v` is a gateway; LSB-first within each byte).
//! * [`ResponseKind::StatsResult`] — `k u32, k × (name_len u16, name,
//!   value u64), text_len u32, text` (the rendered `pacds-obs` snapshot).
//! * [`ResponseKind::Pong`] — empty body.
//! * [`ResponseKind::GraphOpened`] — `tiles u32, n u32, gateways u32`.
//! * [`ResponseKind::MutateResult`] — `applied u32, dirty_tiles u32,
//!   resolved_tiles u32, total_tiles u32, gateway_flips u64,
//!   gateways u32, n u32`.
//! * [`ResponseKind::GraphClosed`] — empty body.
//! * [`ResponseKind::TileResult`] — `tile u32, k u32, k × (node u32,
//!   flags u8)`. Deliberately carries **no** cache-hit byte, so a
//!   cache-warm response frame is byte-identical to the cache-cold one.
//! * [`ResponseKind::SubscribeAck`] — `subscriber_id u64, flags u8,
//!   interval_ms u32` (the negotiated options, echoed back).
//! * [`ResponseKind::StatsDelta`] — `seq u64, dt_us u64, requests u64,
//!   samples u64, p50_ns u64, p99_ns u64, gateway_flips u64,
//!   tiles_resolved u64, refreshes u64, push_dropped u64`. Pushed every
//!   interval while a [`SUB_STATS`] subscription is open.
//! * [`ResponseKind::FlipEvent`] — `name_len u16, name, refresh_seq u64,
//!   gateway_flips u64, gateways u32, k u32, k × tile u32` (the tiles the
//!   refresh re-solved). Pushed per Mutate-triggered refresh while a
//!   [`SUB_FLIPS`] subscription is open.
//! * [`ResponseKind::Error`] — `code u8, msg_len u32, msg` (UTF-8).
//!
//! Decoding is strict: truncated or trailing bytes, out-of-range enum
//! discriminants, self-loop or out-of-range edges all produce a typed
//! [`DecodeError`] that the server answers with an [`ErrorCode`] frame —
//! never a panic, never a hang.

use pacds_core::{Application, CdsConfig, Policy, PruneSchedule, Rule2Semantics};
use pacds_graph::VertexMask;

/// Current protocol version, first payload byte of every frame.
pub const PROTOCOL_VERSION: u8 = 1;

/// Bytes of the frame length prefix.
pub const LEN_PREFIX: usize = 4;

/// Default maximum frame length (payload bytes) either side accepts.
pub const DEFAULT_MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Maximum vertex count a server will process (a tiny frame must not be
/// able to demand gigabyte-sized masks).
pub const MAX_NODES: u32 = 2_000_000;

/// Offset of the `cache_hit` byte inside a [`ResponseKind::CdsResult`]
/// payload (version, kind, then the flag) — the cache stores responses with
/// the flag zeroed and patches this byte on a hit.
pub const CACHE_FLAG_PAYLOAD_OFFSET: usize = 2;

/// Request flag: bypass the result cache entirely (no lookup, no insert).
pub const FLAG_NO_CACHE: u8 = 0b0000_0001;

/// Request kinds (client → server).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum RequestKind {
    /// Compute the gateway set of an explicit topology.
    ComputeCds = 0x01,
    /// Generate a seeded unit-disk topology server-side, then compute.
    GenCompute = 0x02,
    /// Server + obs statistics probe.
    Stats = 0x03,
    /// Liveness probe.
    Ping = 0x04,
    /// Open a persistent named churn graph (spatial instance + config).
    OpenGraph = 0x05,
    /// Apply a batch of mutation events to a named graph and refresh.
    Mutate = 0x06,
    /// Close (drop) a named graph.
    CloseGraph = 0x07,
    /// Fetch one tile's per-owned-node verdicts from a named graph.
    QueryTile = 0x08,
    /// Subscribe this connection to pushed telemetry (stats deltas and/or
    /// gateway-flip events). The connection stops being request/response:
    /// after the ack, the server pushes frames until either side closes.
    Subscribe = 0x09,
}

impl RequestKind {
    /// Decodes a wire discriminant.
    pub fn from_wire(b: u8) -> Option<Self> {
        Some(match b {
            0x01 => Self::ComputeCds,
            0x02 => Self::GenCompute,
            0x03 => Self::Stats,
            0x04 => Self::Ping,
            0x05 => Self::OpenGraph,
            0x06 => Self::Mutate,
            0x07 => Self::CloseGraph,
            0x08 => Self::QueryTile,
            0x09 => Self::Subscribe,
            _ => return None,
        })
    }
}

/// Response kinds (server → client).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ResponseKind {
    /// Gateway-set result.
    CdsResult = 0x81,
    /// Statistics snapshot.
    StatsResult = 0x83,
    /// Liveness reply.
    Pong = 0x84,
    /// A churn graph is open.
    GraphOpened = 0x85,
    /// A mutation batch was applied and refreshed.
    MutateResult = 0x86,
    /// A churn graph was closed.
    GraphClosed = 0x87,
    /// One tile's verdicts (no cache-hit byte: cache-cold and cache-warm
    /// responses are byte-identical; hits are observable via Stats only).
    TileResult = 0x88,
    /// A subscription is active (carries the subscriber id and the
    /// negotiated options).
    SubscribeAck = 0x89,
    /// Pushed: one closed telemetry window's deltas.
    StatsDelta = 0x8A,
    /// Pushed: one refresh's gateway flips on a named graph.
    FlipEvent = 0x8B,
    /// Typed failure.
    Error = 0x7F,
}

impl ResponseKind {
    /// Decodes a wire discriminant.
    pub fn from_wire(b: u8) -> Option<Self> {
        Some(match b {
            0x81 => Self::CdsResult,
            0x83 => Self::StatsResult,
            0x84 => Self::Pong,
            0x85 => Self::GraphOpened,
            0x86 => Self::MutateResult,
            0x87 => Self::GraphClosed,
            0x88 => Self::TileResult,
            0x89 => Self::SubscribeAck,
            0x8A => Self::StatsDelta,
            0x8B => Self::FlipEvent,
            0x7F => Self::Error,
            _ => return None,
        })
    }
}

/// Typed error codes carried by [`ResponseKind::Error`] frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The frame's version byte is not [`PROTOCOL_VERSION`].
    UnsupportedVersion = 1,
    /// Unknown request kind.
    UnknownKind = 2,
    /// Frame or body fails to parse (truncated, trailing, bad enum).
    Malformed = 3,
    /// Declared frame length exceeds the server's maximum.
    Oversized = 4,
    /// Backpressure: the bounded accept queue is full; retry later.
    Rejected = 5,
    /// The request's deadline elapsed before a reply could be sent.
    DeadlineExceeded = 6,
    /// The frame parses but the content is unusable (edge out of range,
    /// self-loop, missing energy for an energy policy, n over the cap).
    BadInput = 7,
    /// Server-side failure unrelated to the request bytes.
    Internal = 8,
    /// The named churn graph is not open on this server.
    UnknownGraph = 9,
    /// An `OpenGraph` named a graph that is already open.
    GraphExists = 10,
    /// A mutation event was rejected (unknown node, dead node, out of
    /// bounds); events before it in the batch stay applied, the rejected
    /// one and everything after it do not.
    MutationRejected = 11,
    /// The subscriber fell too far behind the push stream (its bounded
    /// queue overflowed); the server sends this and closes the
    /// subscription connection. Data-path connections are unaffected.
    SubscriberLagged = 12,
}

impl ErrorCode {
    /// Decodes a wire discriminant.
    pub fn from_wire(b: u8) -> Option<Self> {
        Some(match b {
            1 => Self::UnsupportedVersion,
            2 => Self::UnknownKind,
            3 => Self::Malformed,
            4 => Self::Oversized,
            5 => Self::Rejected,
            6 => Self::DeadlineExceeded,
            7 => Self::BadInput,
            8 => Self::Internal,
            9 => Self::UnknownGraph,
            10 => Self::GraphExists,
            11 => Self::MutationRejected,
            12 => Self::SubscriberLagged,
            _ => return None,
        })
    }

    /// Whether the connection is left in an unusable state (framing lost)
    /// and the server closes it after sending this error.
    pub fn is_connection_fatal(self) -> bool {
        matches!(
            self,
            Self::UnsupportedVersion | Self::UnknownKind | Self::Malformed | Self::Oversized
        )
    }
}

/// Stats output format selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum StatsFormat {
    /// Human-readable table.
    Table = 0,
    /// One JSON object (the obs snapshot JSONL line).
    Jsonl = 1,
    /// Prometheus text exposition.
    Prometheus = 2,
    /// Counters only, empty text block: the cheap health-probe form — no
    /// obs snapshot capture, no rendering. This is what a cluster
    /// coordinator polls every few hundred milliseconds.
    Health = 3,
}

impl StatsFormat {
    /// Decodes a wire discriminant.
    pub fn from_wire(b: u8) -> Option<Self> {
        Some(match b {
            0 => Self::Table,
            1 => Self::Jsonl,
            2 => Self::Prometheus,
            3 => Self::Health,
            _ => return None,
        })
    }
}

/// A decode failure; the server maps it onto an [`ErrorCode`] reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The payload ended before the field being read.
    Truncated,
    /// Bytes remained after the body's last field.
    Trailing,
    /// A field held an out-of-range or inconsistent value.
    Bad(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => f.write_str("truncated payload"),
            DecodeError::Trailing => f.write_str("trailing bytes after body"),
            DecodeError::Bad(what) => write!(f, "bad field: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Bounds-checked little-endian reader over one payload.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Unread bytes.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes the next `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Next `u8`.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.bytes(1)?[0])
    }

    /// Next little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.bytes(2)?.try_into().unwrap()))
    }

    /// Next little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    /// Next little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    /// Next IEEE-754 `f64` (little-endian bit pattern).
    pub fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Asserts the body is fully consumed.
    pub fn finish(&self) -> Result<(), DecodeError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(DecodeError::Trailing)
        }
    }
}

/// Appends little-endian scalars to a frame under construction.
pub trait WireWrite {
    /// Appends raw bytes.
    fn put(&mut self, bytes: &[u8]);
    /// Appends a `u8`.
    fn put_u8(&mut self, v: u8) {
        self.put(&[v]);
    }
    /// Appends a little-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put(&v.to_le_bytes());
    }
    /// Appends a little-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put(&v.to_le_bytes());
    }
    /// Appends a little-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put(&v.to_le_bytes());
    }
    /// Appends an `f64` bit pattern.
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

impl WireWrite for Vec<u8> {
    fn put(&mut self, bytes: &[u8]) {
        self.extend_from_slice(bytes);
    }
}

/// Starts a frame in `out` (clears it, reserves the length prefix, writes
/// version + kind). Finish with [`end_frame`].
pub fn begin_frame(out: &mut Vec<u8>, kind: u8) {
    out.clear();
    out.extend_from_slice(&[0; LEN_PREFIX]);
    out.put_u8(PROTOCOL_VERSION);
    out.put_u8(kind);
}

/// Patches the length prefix of a frame begun with [`begin_frame`].
pub fn end_frame(out: &mut [u8]) {
    let len = (out.len() - LEN_PREFIX) as u32;
    out[..LEN_PREFIX].copy_from_slice(&len.to_le_bytes());
}

/// Wire encoding of a [`CdsConfig`] as a stack array (4 bytes) — also the
/// bytes folded into cache keys, so it must stay stable.
pub fn config_bytes(cfg: &CdsConfig) -> [u8; 4] {
    [
        match cfg.policy {
            Policy::NoPruning => 0,
            Policy::Id => 1,
            Policy::Degree => 2,
            Policy::Energy => 3,
            Policy::EnergyDegree => 4,
        },
        match cfg.schedule {
            PruneSchedule::SinglePass => 0,
            PruneSchedule::Fixpoint => 1,
        },
        match cfg.rule2 {
            Rule2Semantics::MinOfThree => 0,
            Rule2Semantics::CaseAnalysis => 1,
        },
        match cfg.application {
            Application::Simultaneous => 0,
            Application::Sequential => 1,
        },
    ]
}

/// Appends the 4-byte [`CdsConfig`] encoding to a frame.
pub fn put_config(out: &mut Vec<u8>, cfg: &CdsConfig) {
    out.put(&config_bytes(cfg));
}

/// Decodes the 4-byte [`CdsConfig`] encoding.
pub fn read_config(r: &mut Reader<'_>) -> Result<CdsConfig, DecodeError> {
    let policy = match r.u8()? {
        0 => Policy::NoPruning,
        1 => Policy::Id,
        2 => Policy::Degree,
        3 => Policy::Energy,
        4 => Policy::EnergyDegree,
        _ => return Err(DecodeError::Bad("policy")),
    };
    let schedule = match r.u8()? {
        0 => PruneSchedule::SinglePass,
        1 => PruneSchedule::Fixpoint,
        _ => return Err(DecodeError::Bad("schedule")),
    };
    let rule2 = match r.u8()? {
        0 => Rule2Semantics::MinOfThree,
        1 => Rule2Semantics::CaseAnalysis,
        _ => return Err(DecodeError::Bad("rule2 semantics")),
    };
    let application = match r.u8()? {
        0 => Application::Simultaneous,
        1 => Application::Sequential,
        _ => return Err(DecodeError::Bad("application")),
    };
    Ok(CdsConfig {
        policy,
        schedule,
        rule2,
        application,
    })
}

/// A decoded compute-CDS request. Edge and energy payloads stay as raw
/// borrowed bytes so the hot path can stream them without allocating.
#[derive(Debug, Clone)]
pub struct ComputeCdsRequest<'a> {
    /// Request flags ([`FLAG_NO_CACHE`]).
    pub flags: u8,
    /// Per-request deadline in milliseconds from frame receipt; 0 = none.
    pub deadline_ms: u32,
    /// CDS configuration to run.
    pub cfg: CdsConfig,
    /// Vertex count.
    pub n: u32,
    /// Edge count as declared (pre-dedup).
    pub m: u32,
    /// `m × 8` raw bytes: each edge as two little-endian `u32`s.
    pub edges_raw: &'a [u8],
    /// `n × 8` raw bytes of little-endian `u64` energies, if present.
    pub energy_raw: Option<&'a [u8]>,
}

impl<'a> ComputeCdsRequest<'a> {
    /// Decodes a `ComputeCds` body (the payload after version + kind).
    pub fn decode(body: &'a [u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(body);
        let flags = r.u8()?;
        let deadline_ms = r.u32()?;
        let cfg = read_config(&mut r)?;
        let has_energy = match r.u8()? {
            0 => false,
            1 => true,
            _ => return Err(DecodeError::Bad("has_energy")),
        };
        let n = r.u32()?;
        if n > MAX_NODES {
            return Err(DecodeError::Bad("n exceeds MAX_NODES"));
        }
        let m = r.u32()?;
        let edge_bytes = (m as usize)
            .checked_mul(8)
            .ok_or(DecodeError::Bad("edge count overflow"))?;
        let edges_raw = r.bytes(edge_bytes)?;
        let energy_raw = if has_energy {
            Some(r.bytes(n as usize * 8)?)
        } else {
            None
        };
        r.finish()?;
        if cfg.policy.needs_energy() && energy_raw.is_none() {
            return Err(DecodeError::Bad("energy required by policy"));
        }
        Ok(Self {
            flags,
            deadline_ms,
            cfg,
            n,
            m,
            edges_raw,
            energy_raw,
        })
    }

    /// Iterates the raw edges in wire order (no validation).
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + 'a {
        self.edges_raw.chunks_exact(8).map(|c| {
            (
                u32::from_le_bytes(c[0..4].try_into().unwrap()),
                u32::from_le_bytes(c[4..8].try_into().unwrap()),
            )
        })
    }

    /// Iterates the raw energies in host order, if present.
    pub fn energies(&self) -> Option<impl Iterator<Item = u64> + 'a> {
        self.energy_raw
            .map(|raw| raw.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().unwrap())))
    }
}

/// A decoded generate-and-compute request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenComputeRequest {
    /// Request flags ([`FLAG_NO_CACHE`]).
    pub flags: u8,
    /// Per-request deadline in milliseconds from frame receipt; 0 = none.
    pub deadline_ms: u32,
    /// CDS configuration to run.
    pub cfg: CdsConfig,
    /// Host count.
    pub n: u32,
    /// Placement RNG seed.
    pub seed: u64,
    /// Transmission radius.
    pub radius: f64,
    /// Arena side length (square arena).
    pub side: f64,
    /// Resample placements until connected (up to a bounded retry count).
    pub connected: bool,
    /// Seed for random per-host energies; `None` = uniform full energy.
    pub energy_seed: Option<u64>,
}

impl GenComputeRequest {
    /// Decodes a `GenCompute` body.
    pub fn decode(body: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(body);
        let flags = r.u8()?;
        let deadline_ms = r.u32()?;
        let cfg = read_config(&mut r)?;
        let n = r.u32()?;
        if n > MAX_NODES {
            return Err(DecodeError::Bad("n exceeds MAX_NODES"));
        }
        let seed = r.u64()?;
        let radius = r.f64()?;
        let side = r.f64()?;
        if !radius.is_finite() || radius <= 0.0 || !side.is_finite() || side <= 0.0 {
            return Err(DecodeError::Bad("radius/side must be finite and positive"));
        }
        let connected = match r.u8()? {
            0 => false,
            1 => true,
            _ => return Err(DecodeError::Bad("connected")),
        };
        let energy_seed = match r.u8()? {
            0 => {
                let _ = r.u64()?; // reserved slot, must still be present
                None
            }
            1 => Some(r.u64()?),
            _ => return Err(DecodeError::Bad("has_energy_seed")),
        };
        r.finish()?;
        Ok(Self {
            flags,
            deadline_ms,
            cfg,
            n,
            seed,
            radius,
            side,
            connected,
            energy_seed,
        })
    }

    /// Encodes this request as a complete frame into `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        begin_frame(out, RequestKind::GenCompute as u8);
        out.put_u8(self.flags);
        out.put_u32(self.deadline_ms);
        put_config(out, &self.cfg);
        out.put_u32(self.n);
        out.put_u64(self.seed);
        out.put_f64(self.radius);
        out.put_f64(self.side);
        out.put_u8(self.connected as u8);
        match self.energy_seed {
            None => {
                out.put_u8(0);
                out.put_u64(0);
            }
            Some(s) => {
                out.put_u8(1);
                out.put_u64(s);
            }
        }
        end_frame(out);
    }
}

/// Encodes a complete `ComputeCds` request frame from edge/energy slices.
pub fn encode_compute_cds(
    out: &mut Vec<u8>,
    flags: u8,
    deadline_ms: u32,
    cfg: &CdsConfig,
    n: u32,
    edges: &[(u32, u32)],
    energy: Option<&[u64]>,
) {
    begin_frame(out, RequestKind::ComputeCds as u8);
    out.put_u8(flags);
    out.put_u32(deadline_ms);
    put_config(out, cfg);
    out.put_u8(energy.is_some() as u8);
    out.put_u32(n);
    out.put_u32(edges.len() as u32);
    for &(u, v) in edges {
        out.put_u32(u);
        out.put_u32(v);
    }
    if let Some(levels) = energy {
        debug_assert_eq!(levels.len(), n as usize);
        for &e in levels {
            out.put_u64(e);
        }
    }
    end_frame(out);
}

/// Encodes a complete `Stats` request frame.
pub fn encode_stats_request(out: &mut Vec<u8>, format: StatsFormat) {
    begin_frame(out, RequestKind::Stats as u8);
    out.put_u8(format as u8);
    end_frame(out);
}

/// Encodes a complete `Ping` request frame.
pub fn encode_ping(out: &mut Vec<u8>) {
    begin_frame(out, RequestKind::Ping as u8);
    end_frame(out);
}

/// Encodes a complete `Error` response frame.
pub fn encode_error(out: &mut Vec<u8>, code: ErrorCode, msg: &str) {
    begin_frame(out, ResponseKind::Error as u8);
    out.put_u8(code as u8);
    out.put_u32(msg.len() as u32);
    out.put(msg.as_bytes());
    end_frame(out);
}

/// A decoded CDS result (client side; owns the mask).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CdsResult {
    /// Whether the server answered from its result cache.
    pub cache_hit: bool,
    /// Marked-set size (after the marking process).
    pub marked: u32,
    /// Set size after Rule 1.
    pub after_rule1: u32,
    /// Final gateway count.
    pub gateways: u32,
    /// (Rule 1; Rule 2) rounds executed.
    pub rounds: u32,
    /// The gateway mask, length `n`.
    pub mask: VertexMask,
}

/// Decodes a `CdsResult` body.
pub fn decode_cds_result(body: &[u8]) -> Result<CdsResult, DecodeError> {
    let mut r = Reader::new(body);
    let cache_hit = match r.u8()? {
        0 => false,
        1 => true,
        _ => return Err(DecodeError::Bad("cache_hit")),
    };
    let n = r.u32()?;
    let marked = r.u32()?;
    let after_rule1 = r.u32()?;
    let gateways = r.u32()?;
    let rounds = r.u32()?;
    let mask_bytes = r.bytes(n.div_ceil(8) as usize)?;
    r.finish()?;
    let mut mask = vec![false; n as usize];
    let mut count = 0u32;
    for (v, slot) in mask.iter_mut().enumerate() {
        if mask_bytes[v / 8] >> (v % 8) & 1 == 1 {
            *slot = true;
            count += 1;
        }
    }
    if count != gateways {
        return Err(DecodeError::Bad("gateway count / mask mismatch"));
    }
    Ok(CdsResult {
        cache_hit,
        marked,
        after_rule1,
        gateways,
        rounds,
        mask,
    })
}

/// One decoded server statistic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatEntry {
    /// Stable counter name (e.g. `"cache_hits"`).
    pub name: String,
    /// Counter value.
    pub value: u64,
}

/// A decoded stats response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsResult {
    /// The server's always-on counters.
    pub counters: Vec<StatEntry>,
    /// Rendered `pacds-obs` snapshot in the requested format (empty body
    /// when the server was built without `--features obs`).
    pub text: String,
}

impl StatsResult {
    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|c| c.name == name).map(|c| c.value)
    }
}

/// Decodes a `StatsResult` body.
pub fn decode_stats_result(body: &[u8]) -> Result<StatsResult, DecodeError> {
    let mut r = Reader::new(body);
    let k = r.u32()?;
    let mut counters = Vec::with_capacity(k.min(1024) as usize);
    for _ in 0..k {
        let name_len = r.u16()? as usize;
        let name = std::str::from_utf8(r.bytes(name_len)?)
            .map_err(|_| DecodeError::Bad("counter name utf-8"))?
            .to_string();
        let value = r.u64()?;
        counters.push(StatEntry { name, value });
    }
    let text_len = r.u32()? as usize;
    let text = std::str::from_utf8(r.bytes(text_len)?)
        .map_err(|_| DecodeError::Bad("stats text utf-8"))?
        .to_string();
    r.finish()?;
    Ok(StatsResult { counters, text })
}

/// A decoded error response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// The typed code.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}: {}", self.code, self.message)
    }
}

impl std::error::Error for WireError {}

/// Decodes an `Error` body.
pub fn decode_error(body: &[u8]) -> Result<WireError, DecodeError> {
    let mut r = Reader::new(body);
    let code = ErrorCode::from_wire(r.u8()?).ok_or(DecodeError::Bad("error code"))?;
    let msg_len = r.u32()? as usize;
    let message = std::str::from_utf8(r.bytes(msg_len)?)
        .map_err(|_| DecodeError::Bad("error message utf-8"))?
        .to_string();
    r.finish()?;
    Ok(WireError { code, message })
}

// ---------------------------------------------------------------------
// Churn graph frames (OpenGraph / Mutate / CloseGraph / QueryTile)
// ---------------------------------------------------------------------

/// Maximum graph-name length in bytes.
pub const MAX_GRAPH_NAME: usize = 255;

/// Maximum events per `Mutate` frame.
pub const MAX_MUTATION_BATCH: u32 = 65_536;

/// Reads a length-prefixed (`u16`) UTF-8 graph name.
fn read_name<'a>(r: &mut Reader<'a>) -> Result<&'a str, DecodeError> {
    let len = r.u16()? as usize;
    if len == 0 || len > MAX_GRAPH_NAME {
        return Err(DecodeError::Bad("graph name length"));
    }
    std::str::from_utf8(r.bytes(len)?).map_err(|_| DecodeError::Bad("graph name utf-8"))
}

fn put_name(out: &mut Vec<u8>, name: &str) {
    debug_assert!(!name.is_empty() && name.len() <= MAX_GRAPH_NAME);
    out.put_u16(name.len() as u16);
    out.put(name.as_bytes());
}

/// A mutation event on the wire — mirrors `pacds_shard::ChurnEvent`
/// field for field (kind byte: 0 Add, 1 Move, 2 Kill, 3 Drain).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WireEvent {
    /// Spawn a host at `(x, y)` with `energy` residual units.
    Add {
        /// Spawn x coordinate.
        x: f64,
        /// Spawn y coordinate.
        y: f64,
        /// Initial residual energy.
        energy: u64,
    },
    /// Move host `node` to `(x, y)`.
    Move {
        /// The moving host.
        node: u32,
        /// Destination x coordinate.
        x: f64,
        /// Destination y coordinate.
        y: f64,
    },
    /// Switch host `node` off permanently.
    Kill {
        /// The dying host.
        node: u32,
    },
    /// Set host `node`'s residual energy to the absolute level `remaining`.
    Drain {
        /// The draining host.
        node: u32,
        /// New absolute residual level.
        remaining: u64,
    },
}

impl WireEvent {
    fn encode(&self, out: &mut Vec<u8>) {
        match *self {
            Self::Add { x, y, energy } => {
                out.put_u8(0);
                out.put_f64(x);
                out.put_f64(y);
                out.put_u64(energy);
            }
            Self::Move { node, x, y } => {
                out.put_u8(1);
                out.put_u32(node);
                out.put_f64(x);
                out.put_f64(y);
            }
            Self::Kill { node } => {
                out.put_u8(2);
                out.put_u32(node);
            }
            Self::Drain { node, remaining } => {
                out.put_u8(3);
                out.put_u32(node);
                out.put_u64(remaining);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match r.u8()? {
            0 => {
                let (x, y, energy) = (r.f64()?, r.f64()?, r.u64()?);
                if !x.is_finite() || !y.is_finite() {
                    return Err(DecodeError::Bad("event coordinates must be finite"));
                }
                Self::Add { x, y, energy }
            }
            1 => {
                let (node, x, y) = (r.u32()?, r.f64()?, r.f64()?);
                if !x.is_finite() || !y.is_finite() {
                    return Err(DecodeError::Bad("event coordinates must be finite"));
                }
                Self::Move { node, x, y }
            }
            2 => Self::Kill { node: r.u32()? },
            3 => Self::Drain {
                node: r.u32()?,
                remaining: r.u64()?,
            },
            _ => return Err(DecodeError::Bad("event kind")),
        })
    }
}

/// A decoded open-graph request. Point and energy payloads stay as raw
/// borrowed bytes.
#[derive(Debug, Clone)]
pub struct OpenGraphRequest<'a> {
    /// The graph's registry name.
    pub name: &'a str,
    /// CDS configuration the graph will run (must be shardable).
    pub cfg: CdsConfig,
    /// Shard (tile) count; `0` sizes automatically from `n`.
    pub shards: u32,
    /// Unit-disk transmission radius.
    pub radius: f64,
    /// Tile-domain bounds as `(x0, y0, x1, y1)`.
    pub bounds: (f64, f64, f64, f64),
    /// Initial host count.
    pub n: u32,
    /// `n × 16` raw bytes: each point as two little-endian `f64`s.
    pub points_raw: &'a [u8],
    /// `n × 8` raw bytes of little-endian `u64` energies (always present;
    /// energy is churn-graph state even under energy-blind policies).
    pub energy_raw: &'a [u8],
}

impl<'a> OpenGraphRequest<'a> {
    /// Decodes an `OpenGraph` body.
    pub fn decode(body: &'a [u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(body);
        let name = read_name(&mut r)?;
        let cfg = read_config(&mut r)?;
        let shards = r.u32()?;
        let radius = r.f64()?;
        if !radius.is_finite() || radius <= 0.0 {
            return Err(DecodeError::Bad("radius must be finite and positive"));
        }
        let bounds = (r.f64()?, r.f64()?, r.f64()?, r.f64()?);
        if !(bounds.0.is_finite() && bounds.1.is_finite() && bounds.2.is_finite() && bounds.3.is_finite())
            || bounds.0 > bounds.2
            || bounds.1 > bounds.3
        {
            return Err(DecodeError::Bad("bounds must be a finite ordered rectangle"));
        }
        let n = r.u32()?;
        if n > MAX_NODES {
            return Err(DecodeError::Bad("n exceeds MAX_NODES"));
        }
        let points_raw = r.bytes(n as usize * 16)?;
        let energy_raw = r.bytes(n as usize * 8)?;
        r.finish()?;
        for c in points_raw.chunks_exact(8) {
            if !f64::from_le_bytes(c.try_into().unwrap()).is_finite() {
                return Err(DecodeError::Bad("point coordinates must be finite"));
            }
        }
        Ok(Self {
            name,
            cfg,
            shards,
            radius,
            bounds,
            n,
            points_raw,
            energy_raw,
        })
    }

    /// Iterates the points in host order.
    pub fn points(&self) -> impl Iterator<Item = (f64, f64)> + 'a {
        self.points_raw.chunks_exact(16).map(|c| {
            (
                f64::from_le_bytes(c[0..8].try_into().unwrap()),
                f64::from_le_bytes(c[8..16].try_into().unwrap()),
            )
        })
    }

    /// Iterates the energies in host order.
    pub fn energies(&self) -> impl Iterator<Item = u64> + 'a {
        self.energy_raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
    }
}

/// Encodes a complete `OpenGraph` request frame.
#[allow(clippy::too_many_arguments)]
pub fn encode_open_graph(
    out: &mut Vec<u8>,
    name: &str,
    cfg: &CdsConfig,
    shards: u32,
    radius: f64,
    bounds: (f64, f64, f64, f64),
    points: &[(f64, f64)],
    energy: &[u64],
) {
    debug_assert_eq!(points.len(), energy.len());
    begin_frame(out, RequestKind::OpenGraph as u8);
    put_name(out, name);
    put_config(out, cfg);
    out.put_u32(shards);
    out.put_f64(radius);
    out.put_f64(bounds.0);
    out.put_f64(bounds.1);
    out.put_f64(bounds.2);
    out.put_f64(bounds.3);
    out.put_u32(points.len() as u32);
    for &(x, y) in points {
        out.put_f64(x);
        out.put_f64(y);
    }
    for &e in energy {
        out.put_u64(e);
    }
    end_frame(out);
}

/// Decodes a `Mutate` body into the graph name and its event batch.
pub fn decode_mutate(body: &[u8]) -> Result<(&str, Vec<WireEvent>), DecodeError> {
    let mut r = Reader::new(body);
    let name = read_name(&mut r)?;
    let k = r.u32()?;
    if k > MAX_MUTATION_BATCH {
        return Err(DecodeError::Bad("mutation batch too large"));
    }
    let mut events = Vec::with_capacity(k.min(4096) as usize);
    for _ in 0..k {
        events.push(WireEvent::decode(&mut r)?);
    }
    r.finish()?;
    Ok((name, events))
}

/// Encodes a complete `Mutate` request frame.
pub fn encode_mutate(out: &mut Vec<u8>, name: &str, events: &[WireEvent]) {
    begin_frame(out, RequestKind::Mutate as u8);
    put_name(out, name);
    out.put_u32(events.len() as u32);
    for ev in events {
        ev.encode(out);
    }
    end_frame(out);
}

/// Decodes a `CloseGraph` body (just the name).
pub fn decode_close_graph(body: &[u8]) -> Result<&str, DecodeError> {
    let mut r = Reader::new(body);
    let name = read_name(&mut r)?;
    r.finish()?;
    Ok(name)
}

/// Encodes a complete `CloseGraph` request frame.
pub fn encode_close_graph(out: &mut Vec<u8>, name: &str) {
    begin_frame(out, RequestKind::CloseGraph as u8);
    put_name(out, name);
    end_frame(out);
}

/// Decodes a `QueryTile` body into the graph name and tile index.
pub fn decode_query_tile(body: &[u8]) -> Result<(&str, u32), DecodeError> {
    let mut r = Reader::new(body);
    let name = read_name(&mut r)?;
    let tile = r.u32()?;
    r.finish()?;
    Ok((name, tile))
}

/// Encodes a complete `QueryTile` request frame.
pub fn encode_query_tile(out: &mut Vec<u8>, name: &str, tile: u32) {
    begin_frame(out, RequestKind::QueryTile as u8);
    put_name(out, name);
    out.put_u32(tile);
    end_frame(out);
}

/// A decoded graph-opened response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphOpened {
    /// Tiles in the graph's fixed grid.
    pub tiles: u32,
    /// Initial host count.
    pub n: u32,
    /// Gateways after the initial full solve.
    pub gateways: u32,
}

/// Decodes a `GraphOpened` body.
pub fn decode_graph_opened(body: &[u8]) -> Result<GraphOpened, DecodeError> {
    let mut r = Reader::new(body);
    let out = GraphOpened {
        tiles: r.u32()?,
        n: r.u32()?,
        gateways: r.u32()?,
    };
    r.finish()?;
    Ok(out)
}

/// A decoded mutate response: the churn metrics of one refreshed batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MutateResult {
    /// Events applied (equals the batch size on success).
    pub applied: u32,
    /// Tiles the batch dirtied.
    pub dirty_tiles: u32,
    /// Tiles actually re-solved by the refresh.
    pub resolved_tiles: u32,
    /// Total tiles in the fixed grid.
    pub total_tiles: u32,
    /// Gateway verdicts flipped by the refresh.
    pub gateway_flips: u64,
    /// Gateway count after the refresh.
    pub gateways: u32,
    /// Host-slot count after the batch (grows with Add events).
    pub n: u32,
}

/// Decodes a `MutateResult` body.
pub fn decode_mutate_result(body: &[u8]) -> Result<MutateResult, DecodeError> {
    let mut r = Reader::new(body);
    let out = MutateResult {
        applied: r.u32()?,
        dirty_tiles: r.u32()?,
        resolved_tiles: r.u32()?,
        total_tiles: r.u32()?,
        gateway_flips: r.u64()?,
        gateways: r.u32()?,
        n: r.u32()?,
    };
    r.finish()?;
    Ok(out)
}

/// A decoded tile-result response: the tile's owned hosts in ascending id
/// order with their verdict bit-sets (bit 0 marked, bit 1 after-Rule-1,
/// bit 2 gateway — dead hosts carry 0).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileResult {
    /// The queried tile.
    pub tile: u32,
    /// `(host id, verdict bits)` for every owned host, ascending by id.
    pub entries: Vec<(u32, u8)>,
}

/// Decodes a `TileResult` body.
pub fn decode_tile_result(body: &[u8]) -> Result<TileResult, DecodeError> {
    let mut r = Reader::new(body);
    let tile = r.u32()?;
    let k = r.u32()?;
    let mut entries = Vec::with_capacity(k.min(1 << 20) as usize);
    for _ in 0..k {
        entries.push((r.u32()?, r.u8()?));
    }
    r.finish()?;
    Ok(TileResult { tile, entries })
}

/// Subscription flag: push periodic [`ResponseKind::StatsDelta`] frames.
pub const SUB_STATS: u8 = 0b0000_0001;

/// Subscription flag: push per-refresh [`ResponseKind::FlipEvent`] frames.
pub const SUB_FLIPS: u8 = 0b0000_0010;

/// Fastest stats-delta cadence a subscriber may request.
pub const MIN_SUBSCRIBE_INTERVAL_MS: u32 = 10;

/// A decoded `Subscribe` request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubscribeRequest<'a> {
    /// [`SUB_STATS`] | [`SUB_FLIPS`]; at least one bit is set.
    pub flags: u8,
    /// Stats-delta push cadence in milliseconds.
    pub interval_ms: u32,
    /// Restrict flip events to this named graph; `None` = all graphs.
    pub graph: Option<&'a str>,
}

/// Decodes a `Subscribe` body.
pub fn decode_subscribe(body: &[u8]) -> Result<SubscribeRequest<'_>, DecodeError> {
    let mut r = Reader::new(body);
    let flags = r.u8()?;
    if flags == 0 || flags & !(SUB_STATS | SUB_FLIPS) != 0 {
        return Err(DecodeError::Bad("subscribe flags"));
    }
    let interval_ms = r.u32()?;
    if flags & SUB_STATS != 0 && interval_ms < MIN_SUBSCRIBE_INTERVAL_MS {
        return Err(DecodeError::Bad("subscribe interval"));
    }
    let len = r.u16()? as usize;
    let graph = if len == 0 {
        None
    } else {
        if len > MAX_GRAPH_NAME {
            return Err(DecodeError::Bad("graph name length"));
        }
        Some(
            std::str::from_utf8(r.bytes(len)?).map_err(|_| DecodeError::Bad("graph name utf-8"))?,
        )
    };
    r.finish()?;
    Ok(SubscribeRequest {
        flags,
        interval_ms,
        graph,
    })
}

/// Encodes a complete `Subscribe` request frame.
pub fn encode_subscribe(out: &mut Vec<u8>, flags: u8, interval_ms: u32, graph: Option<&str>) {
    begin_frame(out, RequestKind::Subscribe as u8);
    out.put_u8(flags);
    out.put_u32(interval_ms);
    match graph {
        Some(name) => put_name(out, name),
        None => out.put_u16(0),
    }
    end_frame(out);
}

/// A decoded subscribe acknowledgement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubscribeAck {
    /// Server-assigned subscriber id (diagnostic; unique per server run).
    pub subscriber_id: u64,
    /// The accepted flags.
    pub flags: u8,
    /// The accepted stats cadence.
    pub interval_ms: u32,
}

/// Encodes a complete `SubscribeAck` response frame.
pub fn encode_subscribe_ack(out: &mut Vec<u8>, ack: SubscribeAck) {
    begin_frame(out, ResponseKind::SubscribeAck as u8);
    out.put_u64(ack.subscriber_id);
    out.put_u8(ack.flags);
    out.put_u32(ack.interval_ms);
    end_frame(out);
}

/// Decodes a `SubscribeAck` body.
pub fn decode_subscribe_ack(body: &[u8]) -> Result<SubscribeAck, DecodeError> {
    let mut r = Reader::new(body);
    let out = SubscribeAck {
        subscriber_id: r.u64()?,
        flags: r.u8()?,
        interval_ms: r.u32()?,
    };
    r.finish()?;
    Ok(out)
}

/// One pushed telemetry window: deltas since the previous push, not
/// lifetime totals. Mirrors `pacds_obs::WindowDelta` but is plain wire
/// data, so the protocol stays independent of the obs feature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsDelta {
    /// Window sequence number (per subscription, 0-based).
    pub seq: u64,
    /// Window length in microseconds.
    pub dt_us: u64,
    /// Requests completed in the window.
    pub requests: u64,
    /// Latency samples behind the percentiles.
    pub samples: u64,
    /// In-window median compute latency (bucket upper bound, ns).
    pub p50_ns: u64,
    /// In-window p99 compute latency (bucket upper bound, ns).
    pub p99_ns: u64,
    /// Gateway verdict flips in the window.
    pub gateway_flips: u64,
    /// Tiles re-solved in the window.
    pub tiles_resolved: u64,
    /// Churn refreshes in the window.
    pub refreshes: u64,
    /// Push frames dropped server-wide so far (lifetime counter — lets a
    /// surviving subscriber see that *some* consumer is lagging).
    pub push_dropped: u64,
}

/// Encodes a complete `StatsDelta` push frame.
pub fn encode_stats_delta(out: &mut Vec<u8>, d: &StatsDelta) {
    begin_frame(out, ResponseKind::StatsDelta as u8);
    out.put_u64(d.seq);
    out.put_u64(d.dt_us);
    out.put_u64(d.requests);
    out.put_u64(d.samples);
    out.put_u64(d.p50_ns);
    out.put_u64(d.p99_ns);
    out.put_u64(d.gateway_flips);
    out.put_u64(d.tiles_resolved);
    out.put_u64(d.refreshes);
    out.put_u64(d.push_dropped);
    end_frame(out);
}

/// Decodes a `StatsDelta` body.
pub fn decode_stats_delta(body: &[u8]) -> Result<StatsDelta, DecodeError> {
    let mut r = Reader::new(body);
    let out = StatsDelta {
        seq: r.u64()?,
        dt_us: r.u64()?,
        requests: r.u64()?,
        samples: r.u64()?,
        p50_ns: r.u64()?,
        p99_ns: r.u64()?,
        gateway_flips: r.u64()?,
        tiles_resolved: r.u64()?,
        refreshes: r.u64()?,
        push_dropped: r.u64()?,
    };
    r.finish()?;
    Ok(out)
}

/// One pushed gateway-flip event: a named graph finished a refresh.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlipEvent {
    /// The refreshed graph.
    pub name: String,
    /// The graph's refresh count after this refresh (1-based).
    pub refresh_seq: u64,
    /// Gateway verdicts the refresh flipped.
    pub gateway_flips: u64,
    /// Gateway count after the refresh.
    pub gateways: u32,
    /// The tiles the refresh re-solved (the Mutate batch's dirty set).
    pub tiles: Vec<u32>,
}

/// Encodes a complete `FlipEvent` push frame.
pub fn encode_flip_event(
    out: &mut Vec<u8>,
    name: &str,
    refresh_seq: u64,
    gateway_flips: u64,
    gateways: u32,
    tiles: &[u32],
) {
    begin_frame(out, ResponseKind::FlipEvent as u8);
    put_name(out, name);
    out.put_u64(refresh_seq);
    out.put_u64(gateway_flips);
    out.put_u32(gateways);
    out.put_u32(tiles.len() as u32);
    for &t in tiles {
        out.put_u32(t);
    }
    end_frame(out);
}

/// Decodes a `FlipEvent` body.
pub fn decode_flip_event(body: &[u8]) -> Result<FlipEvent, DecodeError> {
    let mut r = Reader::new(body);
    let name = read_name(&mut r)?.to_owned();
    let refresh_seq = r.u64()?;
    let gateway_flips = r.u64()?;
    let gateways = r.u32()?;
    let k = r.u32()?;
    let mut tiles = Vec::with_capacity(k.min(1 << 20) as usize);
    for _ in 0..k {
        tiles.push(r.u32()?);
    }
    r.finish()?;
    Ok(FlipEvent {
        name,
        refresh_seq,
        gateway_flips,
        gateways,
        tiles,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(frame: &[u8]) -> &[u8] {
        let len = u32::from_le_bytes(frame[..4].try_into().unwrap()) as usize;
        assert_eq!(len, frame.len() - LEN_PREFIX, "length prefix consistent");
        &frame[LEN_PREFIX..]
    }

    #[test]
    fn compute_cds_round_trip() {
        let cfg = CdsConfig::sequential(Policy::EnergyDegree);
        let edges = [(0u32, 1u32), (3, 1), (2, 0)];
        let energy = [5u64, 0, 9, 7];
        let mut out = Vec::new();
        encode_compute_cds(&mut out, FLAG_NO_CACHE, 250, &cfg, 4, &edges, Some(&energy));
        let p = payload(&out);
        assert_eq!(p[0], PROTOCOL_VERSION);
        assert_eq!(RequestKind::from_wire(p[1]), Some(RequestKind::ComputeCds));
        let req = ComputeCdsRequest::decode(&p[2..]).unwrap();
        assert_eq!(req.flags, FLAG_NO_CACHE);
        assert_eq!(req.deadline_ms, 250);
        assert_eq!(req.cfg, cfg);
        assert_eq!(req.n, 4);
        assert_eq!(req.edges().collect::<Vec<_>>(), edges);
        assert_eq!(req.energies().unwrap().collect::<Vec<_>>(), energy);
    }

    #[test]
    fn gen_compute_round_trip() {
        let req = GenComputeRequest {
            flags: 0,
            deadline_ms: 0,
            cfg: CdsConfig::policy(Policy::Degree),
            n: 77,
            seed: 0xDEAD_BEEF,
            radius: 25.0,
            side: 100.0,
            connected: true,
            energy_seed: Some(42),
        };
        let mut out = Vec::new();
        req.encode(&mut out);
        let p = payload(&out);
        assert_eq!(RequestKind::from_wire(p[1]), Some(RequestKind::GenCompute));
        assert_eq!(GenComputeRequest::decode(&p[2..]).unwrap(), req);
    }

    #[test]
    fn error_round_trip() {
        let mut out = Vec::new();
        encode_error(&mut out, ErrorCode::Rejected, "queue full");
        let p = payload(&out);
        assert_eq!(ResponseKind::from_wire(p[1]), Some(ResponseKind::Error));
        let e = decode_error(&p[2..]).unwrap();
        assert_eq!(e.code, ErrorCode::Rejected);
        assert_eq!(e.message, "queue full");
    }

    #[test]
    fn truncated_and_trailing_bodies_are_rejected() {
        let cfg = CdsConfig::policy(Policy::Id);
        let mut out = Vec::new();
        encode_compute_cds(&mut out, 0, 0, &cfg, 3, &[(0, 1), (1, 2)], None);
        let body = &payload(&out)[2..];
        // Every strict prefix fails as Truncated; whole body + junk fails
        // as Trailing.
        for cut in 0..body.len() {
            assert_eq!(
                ComputeCdsRequest::decode(&body[..cut]).unwrap_err(),
                DecodeError::Truncated,
                "cut={cut}"
            );
        }
        let mut extended = body.to_vec();
        extended.push(0);
        assert_eq!(
            ComputeCdsRequest::decode(&extended).unwrap_err(),
            DecodeError::Trailing
        );
    }

    #[test]
    fn bad_discriminants_are_typed_errors() {
        let cfg = CdsConfig::policy(Policy::Energy);
        let mut out = Vec::new();
        encode_compute_cds(&mut out, 0, 0, &cfg, 2, &[(0, 1)], Some(&[1, 2]));
        let body_start = LEN_PREFIX + 2;
        // policy byte out of range
        let mut bad = out.clone();
        bad[body_start + 5] = 9;
        assert!(matches!(
            ComputeCdsRequest::decode(&bad[body_start..]).unwrap_err(),
            DecodeError::Bad("policy")
        ));
        // energy-needing policy without energy
        let mut no_energy = Vec::new();
        encode_compute_cds(&mut no_energy, 0, 0, &cfg, 2, &[(0, 1)], None);
        assert!(matches!(
            ComputeCdsRequest::decode(&no_energy[body_start..]).unwrap_err(),
            DecodeError::Bad("energy required by policy")
        ));
    }

    #[test]
    fn oversized_node_count_is_rejected_at_decode() {
        let cfg = CdsConfig::policy(Policy::Id);
        let mut out = Vec::new();
        encode_compute_cds(&mut out, 0, 0, &cfg, MAX_NODES + 1, &[], None);
        assert!(matches!(
            ComputeCdsRequest::decode(&payload(&out)[2..]).unwrap_err(),
            DecodeError::Bad("n exceeds MAX_NODES")
        ));
    }

    #[test]
    fn cds_result_round_trip_via_manual_encode() {
        // Mirror the server's encoder (handler.rs) for a 10-host mask.
        let mask: Vec<bool> = (0..10).map(|v| v % 3 == 0).collect();
        let mut out = Vec::new();
        begin_frame(&mut out, ResponseKind::CdsResult as u8);
        out.put_u8(0);
        out.put_u32(10);
        out.put_u32(8);
        out.put_u32(6);
        out.put_u32(4);
        out.put_u32(1);
        let mut byte = 0u8;
        for (v, &g) in mask.iter().enumerate() {
            if g {
                byte |= 1 << (v % 8);
            }
            if v % 8 == 7 {
                out.put_u8(byte);
                byte = 0;
            }
        }
        out.put_u8(byte);
        end_frame(&mut out);
        let r = decode_cds_result(&payload(&out)[2..]).unwrap();
        assert!(!r.cache_hit);
        assert_eq!(r.mask, mask);
        assert_eq!(r.gateways, 4);
        assert_eq!(r.rounds, 1);
    }

    #[test]
    fn stats_result_round_trip() {
        let mut out = Vec::new();
        begin_frame(&mut out, ResponseKind::StatsResult as u8);
        out.put_u32(2);
        for (name, value) in [("requests", 17u64), ("cache_hits", 9)] {
            out.put_u16(name.len() as u16);
            out.put(name.as_bytes());
            out.put_u64(value);
        }
        let text = "# HELP pacds nothing\n";
        out.put_u32(text.len() as u32);
        out.put(text.as_bytes());
        end_frame(&mut out);
        let s = decode_stats_result(&payload(&out)[2..]).unwrap();
        assert_eq!(s.counter("requests"), Some(17));
        assert_eq!(s.counter("cache_hits"), Some(9));
        assert_eq!(s.counter("absent"), None);
        assert_eq!(s.text, text);
    }

    #[test]
    fn connection_fatal_codes() {
        for code in [
            ErrorCode::UnsupportedVersion,
            ErrorCode::UnknownKind,
            ErrorCode::Malformed,
            ErrorCode::Oversized,
        ] {
            assert!(code.is_connection_fatal(), "{code:?}");
        }
        for code in [
            ErrorCode::Rejected,
            ErrorCode::DeadlineExceeded,
            ErrorCode::BadInput,
            ErrorCode::Internal,
            ErrorCode::UnknownGraph,
            ErrorCode::GraphExists,
            ErrorCode::MutationRejected,
            ErrorCode::SubscriberLagged,
        ] {
            assert!(!code.is_connection_fatal(), "{code:?}");
        }
    }

    #[test]
    fn subscribe_round_trip() {
        let mut out = Vec::new();
        encode_subscribe(&mut out, SUB_STATS | SUB_FLIPS, 250, Some("fleet-a"));
        let p = payload(&out);
        assert_eq!(RequestKind::from_wire(p[1]), Some(RequestKind::Subscribe));
        let req = decode_subscribe(&p[2..]).unwrap();
        assert_eq!(req.flags, SUB_STATS | SUB_FLIPS);
        assert_eq!(req.interval_ms, 250);
        assert_eq!(req.graph, Some("fleet-a"));

        // Flips-only needs no cadence; empty name = all graphs.
        encode_subscribe(&mut out, SUB_FLIPS, 0, None);
        let req = decode_subscribe(&payload(&out)[2..]).unwrap();
        assert_eq!(req.flags, SUB_FLIPS);
        assert_eq!(req.graph, None);
    }

    #[test]
    fn subscribe_rejects_bad_options() {
        let mut out = Vec::new();
        // No flags at all.
        encode_subscribe(&mut out, 0, 100, None);
        assert!(matches!(
            decode_subscribe(&payload(&out)[2..]).unwrap_err(),
            DecodeError::Bad("subscribe flags")
        ));
        // Unknown flag bits.
        encode_subscribe(&mut out, 0b1000_0000, 100, None);
        assert!(matches!(
            decode_subscribe(&payload(&out)[2..]).unwrap_err(),
            DecodeError::Bad("subscribe flags")
        ));
        // Stats cadence below the floor.
        encode_subscribe(&mut out, SUB_STATS, MIN_SUBSCRIBE_INTERVAL_MS - 1, None);
        assert!(matches!(
            decode_subscribe(&payload(&out)[2..]).unwrap_err(),
            DecodeError::Bad("subscribe interval")
        ));
        // Truncated body.
        assert!(matches!(
            decode_subscribe(&[SUB_STATS]).unwrap_err(),
            DecodeError::Truncated
        ));
    }

    #[test]
    fn subscribe_ack_round_trip() {
        let ack = SubscribeAck {
            subscriber_id: 42,
            flags: SUB_STATS,
            interval_ms: 500,
        };
        let mut out = Vec::new();
        encode_subscribe_ack(&mut out, ack);
        let p = payload(&out);
        assert_eq!(
            ResponseKind::from_wire(p[1]),
            Some(ResponseKind::SubscribeAck)
        );
        assert_eq!(decode_subscribe_ack(&p[2..]).unwrap(), ack);
    }

    #[test]
    fn stats_delta_round_trip() {
        let d = StatsDelta {
            seq: 3,
            dt_us: 250_000,
            requests: 120,
            samples: 118,
            p50_ns: 16_384,
            p99_ns: 524_288,
            gateway_flips: 7,
            tiles_resolved: 12,
            refreshes: 4,
            push_dropped: 1,
        };
        let mut out = Vec::new();
        encode_stats_delta(&mut out, &d);
        let p = payload(&out);
        assert_eq!(
            ResponseKind::from_wire(p[1]),
            Some(ResponseKind::StatsDelta)
        );
        assert_eq!(decode_stats_delta(&p[2..]).unwrap(), d);
        assert!(matches!(
            decode_stats_delta(&p[2..p.len() - 1]).unwrap_err(),
            DecodeError::Truncated
        ));
    }

    #[test]
    fn flip_event_round_trip() {
        let mut out = Vec::new();
        encode_flip_event(&mut out, "fleet-a", 9, 15, 230, &[0, 3, 7]);
        let p = payload(&out);
        assert_eq!(ResponseKind::from_wire(p[1]), Some(ResponseKind::FlipEvent));
        let ev = decode_flip_event(&p[2..]).unwrap();
        assert_eq!(ev.name, "fleet-a");
        assert_eq!(ev.refresh_seq, 9);
        assert_eq!(ev.gateway_flips, 15);
        assert_eq!(ev.gateways, 230);
        assert_eq!(ev.tiles, vec![0, 3, 7]);
        // Trailing garbage is rejected.
        let mut frame = out.clone();
        frame.push(0);
        end_frame(&mut frame);
        assert!(matches!(
            decode_flip_event(&payload(&frame)[2..]).unwrap_err(),
            DecodeError::Trailing
        ));
    }

    #[test]
    fn open_graph_round_trip() {
        let cfg = CdsConfig::policy(Policy::EnergyDegree);
        let points = [(1.0, 2.0), (3.5, 4.25), (90.0, 10.0)];
        let energy = [7u64, 19, 3];
        let mut out = Vec::new();
        encode_open_graph(
            &mut out,
            "fleet-a",
            &cfg,
            9,
            25.0,
            (0.0, 0.0, 100.0, 100.0),
            &points,
            &energy,
        );
        let p = payload(&out);
        assert_eq!(RequestKind::from_wire(p[1]), Some(RequestKind::OpenGraph));
        let req = OpenGraphRequest::decode(&p[2..]).unwrap();
        assert_eq!(req.name, "fleet-a");
        assert_eq!(req.cfg, cfg);
        assert_eq!(req.shards, 9);
        assert_eq!(req.radius, 25.0);
        assert_eq!(req.bounds, (0.0, 0.0, 100.0, 100.0));
        assert_eq!(req.points().collect::<Vec<_>>(), points);
        assert_eq!(req.energies().collect::<Vec<_>>(), energy);
    }

    type BadGeometry = (f64, (f64, f64, f64, f64), &'static [(f64, f64)]);

    #[test]
    fn open_graph_rejects_bad_geometry() {
        let cfg = CdsConfig::policy(Policy::Id);
        let cases: [BadGeometry; 4] = [
            (0.0, (0.0, 0.0, 1.0, 1.0), &[]),                 // zero radius
            (f64::NAN, (0.0, 0.0, 1.0, 1.0), &[]),            // NaN radius
            (1.0, (5.0, 0.0, 1.0, 1.0), &[]),                 // inverted bounds
            (1.0, (0.0, 0.0, 1.0, 1.0), &[(f64::NAN, 0.5)]),  // NaN point
        ];
        for (radius, bounds, pts) in cases {
            let energy = vec![1u64; pts.len()];
            let mut out = Vec::new();
            encode_open_graph(&mut out, "g", &cfg, 4, radius, bounds, pts, &energy);
            assert!(
                OpenGraphRequest::decode(&payload(&out)[2..]).is_err(),
                "radius={radius} bounds={bounds:?}"
            );
        }
    }

    #[test]
    fn mutate_round_trip_all_event_kinds() {
        let events = [
            WireEvent::Add {
                x: 1.5,
                y: -2.5,
                energy: 77,
            },
            WireEvent::Move {
                node: 4,
                x: 0.25,
                y: 0.75,
            },
            WireEvent::Kill { node: 9 },
            WireEvent::Drain {
                node: 2,
                remaining: 13,
            },
        ];
        let mut out = Vec::new();
        encode_mutate(&mut out, "fleet-a", &events);
        let p = payload(&out);
        assert_eq!(RequestKind::from_wire(p[1]), Some(RequestKind::Mutate));
        let (name, decoded) = decode_mutate(&p[2..]).unwrap();
        assert_eq!(name, "fleet-a");
        assert_eq!(decoded, events);
    }

    #[test]
    fn mutate_rejects_bad_events() {
        // Unknown event kind byte.
        let mut out = Vec::new();
        encode_mutate(&mut out, "g", &[WireEvent::Kill { node: 0 }]);
        let body_start = LEN_PREFIX + 2;
        let kind_at = out.len() - 5; // kill body = kind u8 + node u32
        out[kind_at] = 4;
        assert!(matches!(
            decode_mutate(&out[body_start..]).unwrap_err(),
            DecodeError::Bad("event kind")
        ));
        // Non-finite move coordinate.
        let mut out = Vec::new();
        encode_mutate(
            &mut out,
            "g",
            &[WireEvent::Move {
                node: 1,
                x: f64::INFINITY,
                y: 0.0,
            }],
        );
        assert!(decode_mutate(&out[body_start..]).is_err());
        // Truncated mutate bodies are Truncated, never panics.
        let mut out = Vec::new();
        encode_mutate(&mut out, "g", &[WireEvent::Kill { node: 3 }]);
        let body = out[body_start..].to_vec();
        for cut in 0..body.len() {
            assert_eq!(
                decode_mutate(&body[..cut]).unwrap_err(),
                DecodeError::Truncated,
                "cut={cut}"
            );
        }
    }

    #[test]
    fn close_and_query_tile_round_trip() {
        let mut out = Vec::new();
        encode_close_graph(&mut out, "fleet-b");
        let p = payload(&out);
        assert_eq!(RequestKind::from_wire(p[1]), Some(RequestKind::CloseGraph));
        assert_eq!(decode_close_graph(&p[2..]).unwrap(), "fleet-b");

        let mut out = Vec::new();
        encode_query_tile(&mut out, "fleet-b", 12);
        let p = payload(&out);
        assert_eq!(RequestKind::from_wire(p[1]), Some(RequestKind::QueryTile));
        assert_eq!(decode_query_tile(&p[2..]).unwrap(), ("fleet-b", 12));
    }

    #[test]
    fn graph_names_are_validated() {
        // The encoders debug-assert valid names, so the invalid-length
        // bodies are crafted by hand: a zero-length name...
        let mut body = vec![0u8, 0u8];
        assert!(matches!(
            decode_close_graph(&body).unwrap_err(),
            DecodeError::Bad("graph name length")
        ));
        // ...an over-long one...
        let long = (MAX_GRAPH_NAME + 1) as u16;
        body.clear();
        body.extend_from_slice(&long.to_le_bytes());
        body.extend(std::iter::repeat_n(b'x', long as usize));
        assert!(matches!(
            decode_close_graph(&body).unwrap_err(),
            DecodeError::Bad("graph name length")
        ));
        // ...and an invalid-UTF-8 one via byte surgery on a valid frame.
        let mut out = Vec::new();
        encode_close_graph(&mut out, "ok");
        let body_start = LEN_PREFIX + 2;
        out[body_start + 2] = 0xFF;
        assert!(matches!(
            decode_close_graph(&out[body_start..]).unwrap_err(),
            DecodeError::Bad("graph name utf-8")
        ));
    }

    #[test]
    fn churn_response_round_trips_via_manual_encode() {
        // GraphOpened.
        let mut out = Vec::new();
        begin_frame(&mut out, ResponseKind::GraphOpened as u8);
        out.put_u32(16);
        out.put_u32(1000);
        out.put_u32(137);
        end_frame(&mut out);
        let g = decode_graph_opened(&payload(&out)[2..]).unwrap();
        assert_eq!((g.tiles, g.n, g.gateways), (16, 1000, 137));

        // MutateResult.
        let mut out = Vec::new();
        begin_frame(&mut out, ResponseKind::MutateResult as u8);
        out.put_u32(3);
        out.put_u32(2);
        out.put_u32(2);
        out.put_u32(16);
        out.put_u64(5);
        out.put_u32(140);
        out.put_u32(1001);
        end_frame(&mut out);
        let m = decode_mutate_result(&payload(&out)[2..]).unwrap();
        assert_eq!(m.applied, 3);
        assert_eq!(m.dirty_tiles, 2);
        assert_eq!(m.resolved_tiles, 2);
        assert_eq!(m.total_tiles, 16);
        assert_eq!(m.gateway_flips, 5);
        assert_eq!(m.gateways, 140);
        assert_eq!(m.n, 1001);

        // TileResult — note: no cache-hit byte anywhere in the frame.
        let mut out = Vec::new();
        begin_frame(&mut out, ResponseKind::TileResult as u8);
        out.put_u32(7);
        out.put_u32(2);
        out.put_u32(11);
        out.put_u8(0b101);
        out.put_u32(12);
        out.put_u8(0);
        end_frame(&mut out);
        let t = decode_tile_result(&payload(&out)[2..]).unwrap();
        assert_eq!(t.tile, 7);
        assert_eq!(t.entries, vec![(11, 0b101), (12, 0)]);
    }
}
