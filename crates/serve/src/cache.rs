//! Sharded LRU result cache, keyed by 128-bit canonical request digests.
//!
//! Values are fully-encoded response payloads (version, kind, body), so a
//! hit is a hash lookup plus one `memcpy` into the caller's retained buffer
//! — no re-encoding, no allocation on the hot path. Keys are FNV-1a 128
//! digests of the canonical topology + configuration + energy (see
//! `pacds_graph::digest` and the handler's keying), so the key *is* the
//! identity and the map needs no separate equality probe beyond the `u128`.
//!
//! The cache is split into [`SHARDS`] independently-locked shards selected
//! by the key's low bits; each shard runs a classic intrusive doubly-linked
//! LRU over a slot arena. Capacity is budgeted in bytes (value length plus
//! a fixed per-entry overhead), divided evenly across shards; inserting
//! into a full shard evicts from the tail until the new entry fits.
//!
//! Hit/miss/eviction counts are kept in always-on relaxed atomics (they
//! feed the Stats response) and mirrored into `pacds-obs` counters when the
//! `obs` feature is enabled.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of shards (power of two; key low bits select the shard).
pub const SHARDS: usize = 16;

/// Accounting overhead charged per entry on top of the value bytes (slot,
/// map entry, links — an estimate, deliberately on the generous side).
pub const ENTRY_OVERHEAD: usize = 96;

const NIL: u32 = u32::MAX;

/// Aggregated cache statistics (monotone except `entries`/`bytes`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Inserts skipped because the value alone exceeds a shard's budget.
    pub uncacheable: u64,
    /// Live entries.
    pub entries: u64,
    /// Live bytes (values + per-entry overhead).
    pub bytes: u64,
}

#[derive(Debug)]
struct Slot {
    key: u128,
    val: Vec<u8>,
    prev: u32,
    next: u32,
}

#[derive(Debug, Default)]
struct Shard {
    map: HashMap<u128, u32>,
    slots: Vec<Slot>,
    free: Vec<u32>,
    head: u32, // most recently used
    tail: u32, // least recently used
    bytes: usize,
}

impl Shard {
    fn new() -> Self {
        Self {
            head: NIL,
            tail: NIL,
            ..Self::default()
        }
    }

    fn unlink(&mut self, i: u32) {
        let (prev, next) = {
            let s = &self.slots[i as usize];
            (s.prev, s.next)
        };
        match prev {
            NIL => self.head = next,
            p => self.slots[p as usize].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n as usize].prev = prev,
        }
    }

    fn push_front(&mut self, i: u32) {
        let old = self.head;
        {
            let s = &mut self.slots[i as usize];
            s.prev = NIL;
            s.next = old;
        }
        if old != NIL {
            self.slots[old as usize].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Removes the LRU entry; returns its byte cost, or `None` if empty.
    fn evict_tail(&mut self) -> Option<usize> {
        let i = self.tail;
        if i == NIL {
            return None;
        }
        self.unlink(i);
        let slot = &mut self.slots[i as usize];
        let cost = slot.val.len() + ENTRY_OVERHEAD;
        self.map.remove(&slot.key);
        slot.val = Vec::new(); // drop the payload now, keep the slot
        self.free.push(i);
        self.bytes -= cost;
        Some(cost)
    }
}

/// The sharded LRU. See the module docs for the design.
#[derive(Debug)]
pub struct ShardedCache {
    shards: Vec<Mutex<Shard>>,
    max_bytes_per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    uncacheable: AtomicU64,
}

impl ShardedCache {
    /// A cache budgeted at `max_bytes` total (split evenly across
    /// [`SHARDS`]). A zero budget disables storage: every lookup misses
    /// and every insert is dropped, which keeps the serving path uniform.
    pub fn new(max_bytes: usize) -> Self {
        Self {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::new())).collect(),
            max_bytes_per_shard: max_bytes / SHARDS,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            uncacheable: AtomicU64::new(0),
        }
    }

    #[inline]
    fn shard(&self, key: u128) -> &Mutex<Shard> {
        &self.shards[(key as usize) & (SHARDS - 1)]
    }

    /// Looks `key` up; on a hit copies the value into `out` (cleared
    /// first), promotes the entry to most-recently-used, and returns
    /// `true`. Allocation-free once `out`'s capacity covers the value.
    pub fn get_into(&self, key: u128, out: &mut Vec<u8>) -> bool {
        let mut shard = self.shard(key).lock().unwrap_or_else(|e| e.into_inner());
        let Some(&i) = shard.map.get(&key) else {
            drop(shard);
            self.misses.fetch_add(1, Ordering::Relaxed);
            pacds_obs::inc(pacds_obs::Counter::ServeCacheMisses);
            return false;
        };
        if shard.head != i {
            shard.unlink(i);
            shard.push_front(i);
        }
        out.clear();
        out.extend_from_slice(&shard.slots[i as usize].val);
        drop(shard);
        self.hits.fetch_add(1, Ordering::Relaxed);
        pacds_obs::inc(pacds_obs::Counter::ServeCacheHits);
        true
    }

    /// Inserts (or replaces) `key → val`, evicting LRU entries until the
    /// shard's byte budget holds it. Values that cannot fit even an empty
    /// shard are counted and dropped.
    pub fn insert(&self, key: u128, val: &[u8]) {
        let cost = val.len() + ENTRY_OVERHEAD;
        if cost > self.max_bytes_per_shard {
            self.uncacheable.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut evicted = 0u64;
        {
            let mut shard = self.shard(key).lock().unwrap_or_else(|e| e.into_inner());
            if let Some(&i) = shard.map.get(&key) {
                // Replace in place and promote.
                let old_len = self.replace_slot(&mut shard, i, val);
                shard.bytes = shard.bytes - old_len + val.len();
                if shard.head != i {
                    shard.unlink(i);
                    shard.push_front(i);
                }
            } else {
                while shard.bytes + cost > self.max_bytes_per_shard {
                    if shard.evict_tail().is_none() {
                        break;
                    }
                    evicted += 1;
                }
                let i = match shard.free.pop() {
                    Some(i) => {
                        let slot = &mut shard.slots[i as usize];
                        slot.key = key;
                        slot.val = val.to_vec();
                        i
                    }
                    None => {
                        let i = shard.slots.len() as u32;
                        shard.slots.push(Slot {
                            key,
                            val: val.to_vec(),
                            prev: NIL,
                            next: NIL,
                        });
                        i
                    }
                };
                shard.map.insert(key, i);
                shard.push_front(i);
                shard.bytes += cost;
            }
            // Evict down to budget in case a replace grew the entry.
            while shard.bytes > self.max_bytes_per_shard {
                if shard.evict_tail().is_none() {
                    break;
                }
                evicted += 1;
            }
        }
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
            pacds_obs::add(pacds_obs::Counter::ServeCacheEvictions, evicted);
        }
    }

    fn replace_slot(&self, shard: &mut Shard, i: u32, val: &[u8]) -> usize {
        let slot = &mut shard.slots[i as usize];
        let old_len = slot.val.len();
        slot.val.clear();
        slot.val.extend_from_slice(val);
        old_len
    }

    /// Point-in-time statistics across all shards.
    pub fn stats(&self) -> CacheStats {
        let mut entries = 0u64;
        let mut bytes = 0u64;
        for shard in &self.shards {
            let s = shard.lock().unwrap_or_else(|e| e.into_inner());
            entries += s.map.len() as u64;
            bytes += s.bytes as u64;
        }
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            uncacheable: self.uncacheable.load(Ordering::Relaxed),
            entries,
            bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn val(key: u128, len: usize) -> Vec<u8> {
        (0..len).map(|i| (key as u8).wrapping_add(i as u8)).collect()
    }

    #[test]
    fn hit_miss_and_contents() {
        let c = ShardedCache::new(1 << 20);
        let mut out = Vec::new();
        assert!(!c.get_into(7, &mut out));
        c.insert(7, &val(7, 100));
        assert!(c.get_into(7, &mut out));
        assert_eq!(out, val(7, 100));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert_eq!(s.bytes, 100 + ENTRY_OVERHEAD as u64);
    }

    #[test]
    fn replace_updates_value_and_bytes() {
        let c = ShardedCache::new(1 << 20);
        c.insert(3, &val(3, 50));
        c.insert(3, &val(9, 80));
        let mut out = Vec::new();
        assert!(c.get_into(3, &mut out));
        assert_eq!(out, val(9, 80));
        let s = c.stats();
        assert_eq!(s.entries, 1);
        assert_eq!(s.bytes, 80 + ENTRY_OVERHEAD as u64);
    }

    #[test]
    fn lru_eviction_order() {
        // Keys in one shard (same low bits); budget fits exactly 3 entries.
        let entry = 100 + ENTRY_OVERHEAD;
        let c = ShardedCache::new(entry * 3 * SHARDS);
        let k = |i: u128| i * SHARDS as u128; // all map to shard 0
        for i in 0..3 {
            c.insert(k(i), &val(i, 100));
        }
        // Touch k(0) so k(1) becomes LRU.
        let mut out = Vec::new();
        assert!(c.get_into(k(0), &mut out));
        c.insert(k(3), &val(3, 100));
        assert!(!c.get_into(k(1), &mut out), "LRU entry evicted");
        for i in [0u128, 2, 3] {
            assert!(c.get_into(k(i), &mut out), "key {i} retained");
        }
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn oversized_values_are_uncacheable() {
        let c = ShardedCache::new(SHARDS * 256);
        c.insert(1, &val(1, 10_000));
        assert!(!c.get_into(1, &mut Vec::new()));
        let s = c.stats();
        assert_eq!(s.uncacheable, 1);
        assert_eq!(s.entries, 0);
    }

    #[test]
    fn zero_budget_disables_storage() {
        let c = ShardedCache::new(0);
        c.insert(5, &val(5, 8));
        assert!(!c.get_into(5, &mut Vec::new()));
        assert_eq!(c.stats().entries, 0);
    }

    #[test]
    fn get_into_reuses_caller_capacity() {
        let c = ShardedCache::new(1 << 20);
        c.insert(11, &val(11, 64));
        let mut out = Vec::with_capacity(64);
        let ptr = out.as_ptr();
        assert!(c.get_into(11, &mut out));
        assert_eq!(out.as_ptr(), ptr, "no reallocation when capacity suffices");
    }

    #[test]
    fn concurrent_hammer_is_consistent() {
        // 8 threads × mixed get/insert over a small key space with a tight
        // budget: the cache must never serve a value that does not match
        // its key, and the counters must balance exactly.
        let c = Arc::new(ShardedCache::new(SHARDS * (3 * (64 + ENTRY_OVERHEAD))));
        let threads = 8;
        let ops = 4_000u64;
        let keyspace = 64u128;
        let mut handles = Vec::new();
        for t in 0..threads {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                let mut out = Vec::new();
                let mut local_gets = 0u64;
                let mut state = (t as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                for _ in 0..ops {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    let key = u128::from(state >> 32) % keyspace;
                    if state & 1 == 0 {
                        c.insert(key, &val(key, 64));
                    } else {
                        local_gets += 1;
                        if c.get_into(key, &mut out) {
                            assert_eq!(out, val(key, 64), "value matches key");
                        }
                    }
                }
                local_gets
            }));
        }
        let total_gets: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        let s = c.stats();
        assert_eq!(s.hits + s.misses, total_gets, "every lookup counted once");
        assert!(s.evictions > 0, "tight budget must evict under the hammer");
        assert!(s.bytes <= (SHARDS * 3 * (64 + ENTRY_OVERHEAD)) as u64);
        // Post-hammer: every retained entry still reads back correctly.
        let mut out = Vec::new();
        let mut live = 0;
        for key in 0..keyspace {
            if c.get_into(key, &mut out) {
                assert_eq!(out, val(key, 64));
                live += 1;
            }
        }
        assert_eq!(live as u64, s.entries);
    }
}
