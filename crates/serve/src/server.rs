//! The TCP server: bounded accept queue, worker pool, graceful shutdown.
//!
//! ## Threading model
//!
//! One acceptor thread pulls connections off the listener and pushes them
//! into a **bounded** [`std::sync::mpsc::sync_channel`]. Each of the
//! `workers` threads owns a long-lived [`WorkerScratch`] (workspace +
//! retained buffers — the zero-allocation steady state) and pulls whole
//! connections from the queue, serving every frame on a connection before
//! taking the next. Connection-per-worker keeps each client's requests
//! ordered and lets a worker's scratch stay hot across a client's burst.
//!
//! ## Backpressure
//!
//! When the queue is full, `try_send` fails immediately and the acceptor
//! answers with a pre-encoded `Rejected` error frame, then drops the
//! connection — a fast, typed "try later" instead of an unbounded queue
//! or a silent stall. Queue depth is `queue` (default: `4 × workers`).
//!
//! ## Shutdown
//!
//! [`ServerHandle::shutdown`] flips an atomic flag and nudges the acceptor
//! awake with a loopback connection. The acceptor stops accepting and
//! drops the channel sender; workers then **drain**: every connection
//! already queued is still served to completion, in-flight frames finish,
//! and only then do workers observe the closed channel and exit. Worker
//! connection loops poll the flag between frames (via a read timeout), so
//! an idle keep-alive connection cannot hold the server open.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::handler::{handle_payload, HandleOutcome, ServeState, ShardPolicy, WorkerScratch};
use crate::hub::Subscription;
use crate::protocol::{
    self, encode_error, ErrorCode, ErrorCode::Rejected, StatsDelta, LEN_PREFIX, SUB_STATS,
};

/// How often a blocked worker re-checks the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// Socket write timeout on push-mode connections: a stalled subscriber's
/// TCP buffer fills, the write times out, and the subscriber is retired —
/// it can never wedge its push thread.
const PUSH_WRITE_TIMEOUT: Duration = Duration::from_millis(500);

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker thread count (minimum 1).
    pub workers: usize,
    /// Bounded connection-queue depth; 0 = `4 × workers`.
    pub queue: usize,
    /// Result-cache budget in bytes.
    pub cache_bytes: usize,
    /// When compute requests route through the sharded engine (the
    /// responses are bit-identical either way; see [`ShardPolicy`]).
    pub shard: ShardPolicy,
    /// When set, a second listener on this address answers every HTTP GET
    /// with the Prometheus text rendering of the obs snapshot (a minimal
    /// line-based scrape endpoint; `"127.0.0.1:0"` picks a port).
    pub metrics_addr: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism().map_or(4, |p| p.get()),
            queue: 0,
            cache_bytes: 64 << 20,
            shard: ShardPolicy::default(),
            metrics_addr: None,
        }
    }
}

/// A running server; dropping it (or calling [`shutdown`]) stops it.
///
/// [`shutdown`]: ServerHandle::shutdown
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    state: Arc<ServeState>,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    metrics: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound metrics-scrape address, when one was configured.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// Shared server state (stats, cache).
    pub fn state(&self) -> &Arc<ServeState> {
        &self.state
    }

    /// Stops accepting, drains queued and in-flight work, joins all
    /// threads. Idempotent. (Detached push threads observe the flag within
    /// one poll interval and exit on their own.)
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Nudge the blocking accept() awake; it will observe the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(addr) = self.metrics_addr {
            let _ = TcpStream::connect(addr);
        }
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        if let Some(h) = self.metrics.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and starts
/// accepting. Returns once the listener is live.
pub fn serve(addr: &str, cfg: ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let workers = cfg.workers.max(1);
    let queue = if cfg.queue == 0 { workers * 4 } else { cfg.queue };
    let mut st = ServeState::new(cfg.cache_bytes);
    st.shard = cfg.shard;
    st.workers.store(workers as u64, Ordering::Relaxed);
    let state = Arc::new(st);
    let stop = Arc::new(AtomicBool::new(false));

    let (tx, rx) = sync_channel::<TcpStream>(queue);
    let rx = Arc::new(Mutex::new(rx));

    let mut worker_handles = Vec::with_capacity(workers);
    for i in 0..workers {
        let rx = Arc::clone(&rx);
        let state = Arc::clone(&state);
        let stop = Arc::clone(&stop);
        worker_handles.push(
            std::thread::Builder::new()
                .name(format!("pacds-serve-{i}"))
                .spawn(move || worker_loop(&rx, &state, &stop))?,
        );
    }

    // Pre-encode the backpressure reply once; the acceptor only copies it.
    let mut rejected_frame = Vec::new();
    encode_error(&mut rejected_frame, Rejected, "server queue full; retry later");

    let acceptor = {
        let state = Arc::clone(&state);
        let stop = Arc::clone(&stop);
        std::thread::Builder::new()
            .name("pacds-serve-accept".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(conn) = conn else { continue };
                    match tx.try_send(conn) {
                        Ok(()) => {
                            state.queue_depth.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(TrySendError::Full(mut conn)) => {
                            state.stats.rejected.fetch_add(1, Ordering::Relaxed);
                            pacds_obs::inc(pacds_obs::Counter::ServeRejected);
                            let _ = conn.write_all(&rejected_frame);
                            let _ = conn.flush();
                            // Dropped: the client got a typed REJECTED.
                        }
                        Err(TrySendError::Disconnected(_)) => break,
                    }
                }
                // Sender drops here: workers drain the queue, then exit.
            })?
    };

    let (metrics_addr, metrics) = match &cfg.metrics_addr {
        Some(maddr) => {
            let listener = TcpListener::bind(maddr.as_str())?;
            let bound = listener.local_addr()?;
            let stop = Arc::clone(&stop);
            let handle = std::thread::Builder::new()
                .name("pacds-serve-metrics".into())
                .spawn(move || metrics_loop(&listener, &stop))?;
            (Some(bound), Some(handle))
        }
        None => (None, None),
    };

    Ok(ServerHandle {
        addr,
        metrics_addr,
        state,
        stop,
        acceptor: Some(acceptor),
        metrics,
        workers: worker_handles,
    })
}

/// The Prometheus scrape listener: a deliberately minimal HTTP/1.0
/// responder — read whatever request arrived, answer with the text
/// rendering of the current obs snapshot, close. No routing, no
/// keep-alive; exactly what a line-based scraper needs and nothing more.
fn metrics_loop(listener: &TcpListener, stop: &AtomicBool) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut conn) = conn else { continue };
        let _ = conn.set_read_timeout(Some(POLL_INTERVAL));
        let _ = conn.set_write_timeout(Some(PUSH_WRITE_TIMEOUT));
        // Drain the request head (best effort; scrape bodies are empty).
        let mut buf = [0u8; 1024];
        let _ = conn.read(&mut buf);
        let mut body = Vec::new();
        let _ = pacds_obs::write_prometheus(&pacds_obs::Snapshot::capture(), &mut body);
        let head = format!(
            "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        let _ = conn.write_all(head.as_bytes());
        let _ = conn.write_all(&body);
    }
}

fn worker_loop(rx: &Mutex<Receiver<TcpStream>>, state: &Arc<ServeState>, stop: &Arc<AtomicBool>) {
    let mut scratch = WorkerScratch::new();
    let mut payload = Vec::new();
    let mut resp = Vec::new();
    loop {
        // Hold the receiver lock only long enough to take one connection.
        let conn = {
            let rx = rx.lock().unwrap_or_else(|e| e.into_inner());
            rx.recv_timeout(POLL_INTERVAL)
        };
        match conn {
            Ok(conn) => {
                state.queue_depth.fetch_sub(1, Ordering::Relaxed);
                serve_connection(conn, state, &mut scratch, &mut payload, &mut resp, stop)
            }
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                // Idle tick; during shutdown the sender is dropped, so the
                // next recv on the drained queue returns Disconnected.
                continue;
            }
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Serves frames on one connection until the client closes, a fatal
/// protocol error occurs, shutdown is requested while idle, or the
/// connection flips into push mode (a `Subscribe` frame hands it off to a
/// dedicated push thread so it never occupies a pool worker).
fn serve_connection(
    mut conn: TcpStream,
    state: &Arc<ServeState>,
    scratch: &mut WorkerScratch,
    payload: &mut Vec<u8>,
    resp: &mut Vec<u8>,
    stop: &Arc<AtomicBool>,
) {
    let _ = conn.set_nodelay(true);
    let _ = conn.set_read_timeout(Some(POLL_INTERVAL));
    loop {
        match read_frame(&mut conn, state, payload, stop) {
            FrameRead::Frame => {}
            FrameRead::Closed => return,
            FrameRead::TooLarge => {
                // The declared length is unreadable garbage or an attack;
                // answer typed, then drop (framing cannot be recovered).
                state.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                pacds_obs::inc(pacds_obs::Counter::ServeProtocolErrors);
                encode_error(resp, ErrorCode::Oversized, "frame exceeds maximum length");
                let _ = conn.write_all(resp);
                return;
            }
        }
        let received = Instant::now();
        let outcome = handle_payload(state, scratch, payload, resp, received);
        if let HandleOutcome::Subscribe {
            id,
            flags,
            interval_ms,
            graph,
        } = outcome
        {
            // Register with the hub *before* writing the ack: an event
            // published between the ack and registration would otherwise
            // be silently missed, breaking the "every flip after the ack"
            // delivery promise.
            let sub = state.hub.register(id, flags, graph);
            if conn.write_all(resp).is_err() {
                state.hub.unregister(id, false);
                return;
            }
            let push_state = Arc::clone(state);
            let stop = Arc::clone(stop);
            let spawned = std::thread::Builder::new()
                .name(format!("pacds-serve-push-{id}"))
                .spawn(move || push_loop(conn, &push_state, &sub, flags, interval_ms, &stop));
            if spawned.is_err() {
                state.hub.unregister(id, false);
            }
            return;
        }
        if conn.write_all(resp).is_err() {
            return;
        }
        if outcome == HandleOutcome::Close {
            return;
        }
        // Shutdown is observed between frames here too: a peer that
        // streams continuously (a pooled relay, a health prober) never
        // leaves the connection idle, so the idle check in `read_frame`
        // alone would let it pin this worker past `shutdown()`. A
        // connection drained from the queue still gets its pending frame
        // answered above before this closes it.
        if stop.load(Ordering::SeqCst) {
            return;
        }
    }
}

/// Drains one subscriber's push queue onto its socket and emits periodic
/// stats-delta frames. Runs on a dedicated thread (never a pool worker);
/// exits — always unregistering — when the client hangs up, the server
/// stops, or the hub marks the subscriber lagged (answered with a typed
/// [`ErrorCode::SubscriberLagged`] before closing).
fn push_loop(
    mut conn: TcpStream,
    state: &ServeState,
    sub: &Subscription,
    flags: u8,
    interval_ms: u32,
    stop: &AtomicBool,
) {
    let _ = conn.set_write_timeout(Some(PUSH_WRITE_TIMEOUT));
    let mut buf = Vec::new();
    let want_stats = flags & SUB_STATS != 0;
    // Windows are tracked per subscriber, so each receives deltas relative
    // to its own subscription epoch regardless of other subscribers.
    let mut tracker = pacds_obs::SeriesTracker::new(pacds_obs::Phase::ServeCompute);
    let interval = Duration::from_millis(u64::from(interval_ms.max(1)));
    let mut next_stats = Instant::now() + interval;
    let was_lagged = loop {
        if stop.load(Ordering::SeqCst) {
            break false;
        }
        if sub.lagged.load(Ordering::Relaxed) {
            // The publisher overflowed our queue: rather than silently
            // delivering a gappy event stream, retire with a typed NACK.
            buf.clear();
            encode_error(
                &mut buf,
                ErrorCode::SubscriberLagged,
                "subscriber queue overflowed; events were dropped",
            );
            let _ = conn.write_all(&buf);
            break true;
        }
        let wait = if want_stats {
            next_stats
                .saturating_duration_since(Instant::now())
                .min(POLL_INTERVAL)
        } else {
            POLL_INTERVAL
        };
        match sub.rx.recv_timeout(wait) {
            Ok(frame) => {
                if conn.write_all(&frame).is_err() {
                    break false;
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break false,
        }
        if want_stats && Instant::now() >= next_stats {
            let w = tracker.tick();
            let delta = StatsDelta {
                seq: w.seq,
                dt_us: (w.dt_s * 1e6) as u64,
                requests: w.requests,
                samples: w.samples,
                p50_ns: w.p50_ns,
                p99_ns: w.p99_ns,
                gateway_flips: w.gateway_flips,
                tiles_resolved: w.tiles_resolved,
                refreshes: w.refreshes,
                push_dropped: state.hub.dropped(),
            };
            buf.clear();
            protocol::encode_stats_delta(&mut buf, &delta);
            if conn.write_all(&buf).is_err() {
                break false;
            }
            pacds_obs::inc(pacds_obs::Counter::ServePushFrames);
            next_stats += interval;
        }
    };
    state.hub.unregister(sub.id, was_lagged);
}

enum FrameRead {
    /// `payload` holds one complete frame payload.
    Frame,
    /// Clean close, client error, or shutdown while idle between frames.
    Closed,
    /// Declared length exceeds the configured maximum.
    TooLarge,
}

/// Reads one length-prefixed frame, polling the shutdown flag while idle.
/// A shutdown observed **between** frames closes the connection; once a
/// prefix byte has arrived the frame (and its response) completes first —
/// that is the drain guarantee.
fn read_frame(
    conn: &mut TcpStream,
    state: &ServeState,
    payload: &mut Vec<u8>,
    stop: &AtomicBool,
) -> FrameRead {
    let mut prefix = [0u8; LEN_PREFIX];
    let mut got = 0usize;
    while got < LEN_PREFIX {
        match conn.read(&mut prefix[got..]) {
            Ok(0) => return FrameRead::Closed,
            Ok(k) => got += k,
            Err(e) if is_timeout(&e) => {
                if got == 0 && stop.load(Ordering::SeqCst) {
                    return FrameRead::Closed; // idle at shutdown
                }
            }
            Err(_) => return FrameRead::Closed,
        }
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > state.max_frame_len as usize {
        return FrameRead::TooLarge;
    }
    payload.clear();
    payload.resize(len, 0);
    let mut got = 0usize;
    while got < len {
        match conn.read(&mut payload[got..]) {
            Ok(0) => return FrameRead::Closed,
            Ok(k) => got += k,
            // Mid-frame timeouts keep waiting even during shutdown: the
            // frame has begun, so it drains.
            Err(e) if is_timeout(&e) => {}
            Err(_) => return FrameRead::Closed,
        }
    }
    FrameRead::Frame
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}
