//! A small blocking client for the serve protocol.
//!
//! One [`Client`] wraps one TCP connection and reuses its request/response
//! buffers, so a tight request loop (the load generator, the conformance
//! harness) allocates only on mask materialisation. All methods send one
//! frame and block for one response frame; server-side typed errors come
//! back as [`ClientError::Wire`].

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use pacds_core::CdsConfig;

use crate::protocol::{
    self, decode_cds_result, decode_error, decode_graph_opened, decode_mutate_result,
    decode_stats_result, decode_tile_result, CdsResult, DecodeError, FlipEvent, GenComputeRequest,
    GraphOpened, MutateResult, ResponseKind, StatsDelta, StatsFormat, StatsResult, SubscribeAck,
    TileResult, WireError, WireEvent, DEFAULT_MAX_FRAME_LEN, LEN_PREFIX, PROTOCOL_VERSION,
};

/// One frame pushed by the server to a subscribed connection.
#[derive(Debug, Clone, PartialEq)]
pub enum Push {
    /// A periodic stats window ([`crate::protocol::SUB_STATS`]).
    Stats(StatsDelta),
    /// A per-refresh gateway-flip event ([`crate::protocol::SUB_FLIPS`]).
    Flip(FlipEvent),
}

/// Client-side failure.
///
/// The variants split along the axis a caller actually routes on:
/// [`ConnectionLost`](ClientError::ConnectionLost) means *the backend is
/// gone* (retry elsewhere, or just issue the next request — the client
/// reconnects once on its own); `Decode`/`Unexpected` mean *the peer
/// violated the protocol* (retrying the same bytes cannot help); `Wire` is
/// the server speaking — a typed, in-protocol error.
#[derive(Debug)]
pub enum ClientError {
    /// The connection died under the request: the socket failed mid-write
    /// or mid-read (includes the server dropping a connection after a
    /// fatal protocol error, and backpressure REJECTED closes). The client
    /// is now stale; the next request transparently reconnects once.
    ConnectionLost(io::Error),
    /// Other socket-level failure (not tied to a dead connection).
    Io(io::Error),
    /// The server's response bytes failed to parse: a protocol violation,
    /// never cured by reconnecting and resending.
    Decode(DecodeError),
    /// The server answered with a typed error frame.
    Wire(WireError),
    /// The server answered with an unexpected (but valid) response kind.
    Unexpected(u8),
}

impl ClientError {
    /// Whether this failure means "backend gone" (a reconnect — to this
    /// backend or another — may succeed) rather than a protocol violation
    /// or an in-protocol server answer.
    pub fn is_connection_lost(&self) -> bool {
        matches!(self, ClientError::ConnectionLost(_))
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::ConnectionLost(e) => write!(f, "connection lost: {e}"),
            ClientError::Io(e) => write!(f, "i/o: {e}"),
            ClientError::Decode(e) => write!(f, "bad response: {e}"),
            ClientError::Wire(e) => write!(f, "server error: {e}"),
            ClientError::Unexpected(k) => write!(f, "unexpected response kind {k:#04x}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<DecodeError> for ClientError {
    fn from(e: DecodeError) -> Self {
        ClientError::Decode(e)
    }
}

/// A blocking protocol client over one connection.
///
/// The client remembers its resolved address. When a request dies with
/// [`ClientError::ConnectionLost`] the client marks itself **stale**, and
/// the *next* request transparently re-dials once before sending — so a
/// loop that just keeps issuing requests rides out a backend restart with
/// exactly one surfaced error, no connection babysitting. A reconnect
/// failure surfaces as `ConnectionLost` again (and the client stays
/// stale); protocol violations never trigger a resend.
#[derive(Debug)]
pub struct Client {
    addr: SocketAddr,
    conn: TcpStream,
    req: Vec<u8>,
    resp: Vec<u8>,
    stale: bool,
    read_timeout: Option<Duration>,
}

impl Client {
    /// Connects to a server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address"))?;
        let conn = TcpStream::connect(addr)?;
        conn.set_nodelay(true)?;
        Ok(Self {
            addr,
            conn,
            req: Vec::new(),
            resp: Vec::new(),
            stale: false,
            read_timeout: None,
        })
    }

    /// Sets (or clears) the socket read timeout, e.g. for liveness tests.
    /// Reapplied automatically after a reconnect.
    pub fn set_read_timeout(&mut self, dur: Option<Duration>) -> io::Result<()> {
        self.read_timeout = dur;
        self.conn.set_read_timeout(dur)
    }

    /// The resolved server address this client (re)connects to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether the connection is known dead; the next request will re-dial
    /// once before sending.
    pub fn is_stale(&self) -> bool {
        self.stale
    }

    /// Drops the current socket and dials the remembered address again.
    /// Called implicitly by the next request after a
    /// [`ClientError::ConnectionLost`]; public for callers that want to
    /// re-establish eagerly (e.g. a pool health-checking an idle slot).
    pub fn reconnect(&mut self) -> io::Result<()> {
        let conn = TcpStream::connect(self.addr)?;
        conn.set_nodelay(true)?;
        conn.set_read_timeout(self.read_timeout)?;
        self.conn = conn;
        self.stale = false;
        Ok(())
    }

    /// Computes the gateway set of an explicit topology.
    pub fn compute_cds(
        &mut self,
        cfg: &CdsConfig,
        n: u32,
        edges: &[(u32, u32)],
        energy: Option<&[u64]>,
        flags: u8,
        deadline_ms: u32,
    ) -> Result<CdsResult, ClientError> {
        protocol::encode_compute_cds(&mut self.req, flags, deadline_ms, cfg, n, edges, energy);
        let payload = self.round_trip()?;
        expect(payload, ResponseKind::CdsResult)?;
        Ok(decode_cds_result(&payload[2..])?)
    }

    /// Asks the server to generate a topology and compute on it.
    pub fn gen_compute(&mut self, req: &GenComputeRequest) -> Result<CdsResult, ClientError> {
        req.encode(&mut self.req);
        let payload = self.round_trip()?;
        expect(payload, ResponseKind::CdsResult)?;
        Ok(decode_cds_result(&payload[2..])?)
    }

    /// Fetches server statistics.
    pub fn stats(&mut self, format: StatsFormat) -> Result<StatsResult, ClientError> {
        protocol::encode_stats_request(&mut self.req, format);
        let payload = self.round_trip()?;
        expect(payload, ResponseKind::StatsResult)?;
        Ok(decode_stats_result(&payload[2..])?)
    }

    /// The cheap health probe: counters only ([`StatsFormat::Health`]),
    /// no obs snapshot rendering on the server.
    pub fn health(&mut self) -> Result<StatsResult, ClientError> {
        self.stats(StatsFormat::Health)
    }

    /// Opens a persistent named graph for mutation.
    #[allow(clippy::too_many_arguments)]
    pub fn open_graph(
        &mut self,
        name: &str,
        cfg: &CdsConfig,
        shards: u32,
        radius: f64,
        bounds: (f64, f64, f64, f64),
        points: &[(f64, f64)],
        energy: &[u64],
    ) -> Result<GraphOpened, ClientError> {
        protocol::encode_open_graph(&mut self.req, name, cfg, shards, radius, bounds, points, energy);
        let payload = self.round_trip()?;
        expect(payload, ResponseKind::GraphOpened)?;
        Ok(decode_graph_opened(&payload[2..])?)
    }

    /// Applies a batch of mutation events to an open graph.
    pub fn mutate(&mut self, name: &str, events: &[WireEvent]) -> Result<MutateResult, ClientError> {
        protocol::encode_mutate(&mut self.req, name, events);
        let payload = self.round_trip()?;
        expect(payload, ResponseKind::MutateResult)?;
        Ok(decode_mutate_result(&payload[2..])?)
    }

    /// Closes (forgets) an open graph.
    pub fn close_graph(&mut self, name: &str) -> Result<(), ClientError> {
        protocol::encode_close_graph(&mut self.req, name);
        let payload = self.round_trip()?;
        expect(payload, ResponseKind::GraphClosed)?;
        Ok(())
    }

    /// Fetches one tile's per-node verdicts from an open graph.
    pub fn query_tile(&mut self, name: &str, tile: u32) -> Result<TileResult, ClientError> {
        protocol::encode_query_tile(&mut self.req, name, tile);
        let payload = self.round_trip()?;
        expect(payload, ResponseKind::TileResult)?;
        Ok(decode_tile_result(&payload[2..])?)
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        protocol::encode_ping(&mut self.req);
        let payload = self.round_trip()?;
        expect(payload, ResponseKind::Pong)?;
        Ok(())
    }

    /// Flips this connection into push mode: subscribes to periodic stats
    /// windows and/or gateway-flip events (see the `SUB_*` flags). After
    /// the ack, the connection only carries server pushes — drain them
    /// with [`next_push`](Client::next_push).
    pub fn subscribe(
        &mut self,
        flags: u8,
        interval_ms: u32,
        graph: Option<&str>,
    ) -> Result<SubscribeAck, ClientError> {
        protocol::encode_subscribe(&mut self.req, flags, interval_ms, graph);
        let payload = self.round_trip()?;
        expect(payload, ResponseKind::SubscribeAck)?;
        Ok(protocol::decode_subscribe_ack(&payload[2..])?)
    }

    /// Blocks for the next pushed frame on a subscribed connection. A
    /// server-side retirement (e.g. [`ErrorCode::SubscriberLagged`]
    /// (crate::protocol::ErrorCode::SubscriberLagged)) surfaces as
    /// [`ClientError::Wire`]; a clean close as [`ClientError::Io`].
    pub fn next_push(&mut self) -> Result<Push, ClientError> {
        let payload = self.read_frame()?;
        match ResponseKind::from_wire(payload[1]) {
            Some(ResponseKind::StatsDelta) => {
                Ok(Push::Stats(protocol::decode_stats_delta(&payload[2..])?))
            }
            Some(ResponseKind::FlipEvent) => {
                Ok(Push::Flip(protocol::decode_flip_event(&payload[2..])?))
            }
            Some(ResponseKind::Error) => Err(ClientError::Wire(decode_error(&payload[2..])?)),
            _ => Err(ClientError::Unexpected(payload[1])),
        }
    }

    /// Sends `self.req` (a complete frame) and reads one response frame,
    /// returning its payload. Reused buffers; no allocation at steady
    /// state once the buffers reach their high-water marks. If the client
    /// is stale from a previous `ConnectionLost`, re-dials once first.
    fn round_trip(&mut self) -> Result<&[u8], ClientError> {
        if self.stale {
            self.reconnect().map_err(ClientError::ConnectionLost)?;
        }
        if let Err(e) = self.conn.write_all(&self.req) {
            self.stale = true;
            return Err(ClientError::ConnectionLost(e));
        }
        self.read_frame()
    }

    /// Reads one frame into the retained response buffer and returns its
    /// payload (version byte included). Any failure here poisons the
    /// connection (a short read leaves the stream mid-frame; a framing
    /// violation leaves it unsynchronised), so all errors mark the client
    /// stale — but only socket deaths are typed `ConnectionLost`.
    fn read_frame(&mut self) -> Result<&[u8], ClientError> {
        let mut prefix = [0u8; LEN_PREFIX];
        if let Err(e) = self.conn.read_exact(&mut prefix) {
            self.stale = true;
            return Err(ClientError::ConnectionLost(e));
        }
        let len = u32::from_le_bytes(prefix) as usize;
        if len < 2 || len > DEFAULT_MAX_FRAME_LEN as usize {
            self.stale = true;
            return Err(ClientError::Decode(DecodeError::Bad("response length")));
        }
        self.resp.clear();
        self.resp.resize(len, 0);
        if let Err(e) = self.conn.read_exact(&mut self.resp) {
            self.stale = true;
            return Err(ClientError::ConnectionLost(e));
        }
        if self.resp[0] != PROTOCOL_VERSION {
            self.stale = true;
            return Err(ClientError::Decode(DecodeError::Bad("response version")));
        }
        Ok(&self.resp)
    }

    /// Sends raw pre-encoded bytes (tests exercising malformed frames) and
    /// reads one response payload.
    pub fn send_raw(&mut self, frame: &[u8]) -> Result<Vec<u8>, ClientError> {
        self.req.clear();
        self.req.extend_from_slice(frame);
        Ok(self.round_trip()?.to_vec())
    }
}

/// Maps an Error payload to [`ClientError::Wire`], otherwise checks the
/// kind byte.
fn expect(payload: &[u8], want: ResponseKind) -> Result<(), ClientError> {
    match ResponseKind::from_wire(payload[1]) {
        Some(ResponseKind::Error) => Err(ClientError::Wire(decode_error(&payload[2..])?)),
        Some(kind) if kind == want => Ok(()),
        _ => Err(ClientError::Unexpected(payload[1])),
    }
}
