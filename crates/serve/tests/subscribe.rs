//! Live-socket telemetry streaming: Subscribe / StatsDelta / FlipEvent
//! against a running server, plus the Prometheus scrape listener.
//!
//! * A flip subscriber receives, for every Mutate batch, exactly the tiles
//!   the batch dirtied — verified against a local [`ChurnEngine`] replay.
//! * A deliberately stalled subscriber is retired (dropped or NACKed with
//!   `SubscriberLagged`) while concurrent ComputeCds requests keep being
//!   served: slow consumers can never stall the data path.
//! * Stats subscriptions deliver monotonically-sequenced window frames at
//!   the requested cadence.

use std::io::{Read, Write};
use std::time::{Duration, Instant};

use pacds_core::{CdsConfig, Policy};
use pacds_geom::{Point2, Rect};
use pacds_serve::{
    serve, Client, ClientError, ErrorCode, Push, ServerConfig, WireEvent, SUB_FLIPS, SUB_STATS,
};
use pacds_shard::{ChurnEngine, ChurnEvent, ShardSpec, REQUIRED_HALO};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const BOUNDS: (f64, f64, f64, f64) = (0.0, 0.0, 100.0, 100.0);

fn tiny_server() -> pacds_serve::ServerHandle {
    serve(
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            queue: 4,
            cache_bytes: 4 << 20,
            shard: Default::default(),
            metrics_addr: None,
        },
    )
    .expect("bind ephemeral port")
}

fn instance(seed: u64, n: usize) -> (Vec<(f64, f64)>, Vec<u64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let points = (0..n)
        .map(|_| (rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)))
        .collect();
    let energy = (0..n).map(|_| rng.random_range(5u64..100)).collect();
    (points, energy)
}

fn mirror(
    shards: usize,
    radius: f64,
    points: &[(f64, f64)],
    energy: &[u64],
    cfg: &CdsConfig,
) -> ChurnEngine {
    let pts: Vec<Point2> = points.iter().map(|&(x, y)| Point2::new(x, y)).collect();
    ChurnEngine::open(
        ShardSpec {
            shards,
            halo: REQUIRED_HALO,
            threads: 1,
        },
        Rect::new(BOUNDS.0, BOUNDS.1, BOUNDS.2, BOUNDS.3),
        radius,
        &pts,
        energy,
        cfg,
    )
    .expect("mirror engine opens")
}

fn to_local(ev: &WireEvent) -> ChurnEvent {
    match *ev {
        WireEvent::Add { x, y, energy } => ChurnEvent::AddNode {
            pos: Point2::new(x, y),
            energy,
        },
        WireEvent::Move { node, x, y } => ChurnEvent::MoveNode {
            node,
            to: Point2::new(x, y),
        },
        WireEvent::Kill { node } => ChurnEvent::KillNode { node },
        WireEvent::Drain { node, remaining } => ChurnEvent::DrainBattery { node, remaining },
    }
}

#[test]
fn flip_events_deliver_exactly_the_dirtied_tiles() {
    let server = tiny_server();
    let mut owner = Client::connect(server.addr()).unwrap();
    let cfg = CdsConfig::policy(Policy::EnergyDegree);
    let (points, energy) = instance(0xF11B, 80);
    let mut local = mirror(9, 10.0, &points, &energy, &cfg);
    owner
        .open_graph("fleet", &cfg, 9, 10.0, BOUNDS, &points, &energy)
        .unwrap();

    // One subscriber filtered to the graph, one listening to all graphs.
    let mut named = Client::connect(server.addr()).unwrap();
    let ack = named.subscribe(SUB_FLIPS, 0, Some("fleet")).unwrap();
    assert_eq!(ack.flags, SUB_FLIPS);
    let mut all = Client::connect(server.addr()).unwrap();
    let ack2 = all.subscribe(SUB_FLIPS, 0, None).unwrap();
    assert_ne!(ack.subscriber_id, ack2.subscriber_id);
    named
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    all.set_read_timeout(Some(Duration::from_secs(10))).unwrap();

    // Two mutation batches; each must arrive as one flip event whose tile
    // list is exactly the batch's dirty set in the local replay.
    let batches: [&[WireEvent]; 2] = [
        &[
            WireEvent::Kill { node: 3 },
            WireEvent::Move {
                node: 5,
                x: 10.0,
                y: 10.0,
            },
        ],
        &[WireEvent::Add {
            x: 50.0,
            y: 50.0,
            energy: 40,
        }],
    ];
    for (i, batch) in batches.iter().enumerate() {
        for ev in batch.iter() {
            local.apply(&to_local(ev)).unwrap();
        }
        let mut expect_tiles: Vec<u32> = local.dirty_tiles().iter().map(|&t| t as u32).collect();
        expect_tiles.sort_unstable();
        let stats = local.refresh();
        let result = owner.mutate("fleet", batch).unwrap();

        for sub in [&mut named, &mut all] {
            let Push::Flip(ev) = sub.next_push().unwrap() else {
                panic!("expected a flip event");
            };
            assert_eq!(ev.name, "fleet");
            assert_eq!(ev.refresh_seq, i as u64 + 1, "one event per refresh");
            let mut got = ev.tiles.clone();
            got.sort_unstable();
            assert_eq!(got, expect_tiles, "exactly the dirtied tiles");
            assert_eq!(ev.tiles.len() as u32, result.dirty_tiles);
            assert_eq!(ev.gateway_flips, stats.gateway_flips);
            assert_eq!(ev.gateways, result.gateways);
        }
    }
}

#[test]
fn named_subscription_requires_an_open_graph_and_filters_others() {
    let server = tiny_server();
    let mut owner = Client::connect(server.addr()).unwrap();
    let cfg = CdsConfig::policy(Policy::Degree);
    let (points, energy) = instance(7, 40);

    // Subscribing to a graph nobody opened is a typed, recoverable error.
    let mut sub = Client::connect(server.addr()).unwrap();
    let err = sub.subscribe(SUB_FLIPS, 0, Some("ghost")).unwrap_err();
    match err {
        ClientError::Wire(e) => assert_eq!(e.code, ErrorCode::UnknownGraph),
        other => panic!("expected a wire error, got {other:?}"),
    }

    owner
        .open_graph("a", &cfg, 4, 20.0, BOUNDS, &points, &energy)
        .unwrap();
    owner
        .open_graph("b", &cfg, 4, 20.0, BOUNDS, &points, &energy)
        .unwrap();
    // The connection survived the rejected subscribe; use it for real now.
    sub.subscribe(SUB_FLIPS, 0, Some("a")).unwrap();
    sub.set_read_timeout(Some(Duration::from_secs(10))).unwrap();

    // A mutate on the *other* graph must not reach this subscriber; the
    // following mutate on the subscribed graph must be the first frame.
    owner.mutate("b", &[WireEvent::Kill { node: 1 }]).unwrap();
    owner.mutate("a", &[WireEvent::Kill { node: 2 }]).unwrap();
    let Push::Flip(ev) = sub.next_push().unwrap() else {
        panic!("expected a flip event");
    };
    assert_eq!(ev.name, "a", "events for other graphs are filtered out");
    assert_eq!(ev.refresh_seq, 1);
}

#[test]
fn stats_subscription_pushes_sequenced_windows() {
    let server = tiny_server();
    let mut sub = Client::connect(server.addr()).unwrap();
    let ack = sub.subscribe(SUB_STATS, 20, None).unwrap();
    assert_eq!(ack.interval_ms, 20);
    sub.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut last_seq = 0;
    for i in 0..3 {
        let Push::Stats(w) = sub.next_push().unwrap() else {
            panic!("expected a stats window");
        };
        if i > 0 {
            assert_eq!(w.seq, last_seq + 1, "windows are consecutively sequenced");
        }
        assert!(w.dt_us > 0, "a window spans real time");
        last_seq = w.seq;
    }
}

#[test]
fn stalled_subscriber_is_retired_without_stalling_the_data_path() {
    let server = tiny_server();
    let mut sub = Client::connect(server.addr()).unwrap();
    sub.subscribe(SUB_FLIPS, 0, None).unwrap();
    // From here on the subscriber never reads: its socket buffers fill,
    // its hub queue overflows, and the push thread must retire it.

    let state = server.state();
    let deadline = Instant::now() + Duration::from_secs(30);
    while state.hub.is_empty() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(state.hub.len(), 1, "subscriber registered");

    // Flood with oversized flip events (published straight through the
    // hub — the same call the Mutate path makes) while hammering the
    // compute path on a separate connection.
    let big: Vec<u32> = (0..100_000).collect();
    let cfg = CdsConfig::policy(Policy::Degree);
    let edges = [(0, 1), (1, 2)];
    let mut compute = Client::connect(server.addr()).unwrap();
    let deadline = Instant::now() + Duration::from_secs(60);
    while !state.hub.is_empty() && Instant::now() < deadline {
        for seq in 0..8 {
            state.hub.publish_flip("flood", seq, 1, 1, &big);
        }
        // The data path must stay responsive throughout the flood.
        let result = compute.compute_cds(&cfg, 3, &edges, None, 0, 0).unwrap();
        assert!(result.gateways >= 1);
    }
    assert!(state.hub.is_empty(), "stalled subscriber was retired");
    assert!(
        state.hub.dropped() > 0 || state.hub.lagged_total() > 0,
        "the retirement is surfaced in the drop/lag counters"
    );
}

#[test]
fn mixed_loadgen_reports_per_kind_latencies() {
    let server = tiny_server();
    let report = pacds_serve::loadgen::run(&pacds_serve::LoadgenConfig {
        addr: server.addr().to_string(),
        concurrency: 2,
        duration: Duration::from_millis(300),
        mode: pacds_serve::Mode::Closed,
        cds: CdsConfig::policy(Policy::Degree),
        n: 60,
        radius: 15.0,
        side: 100.0,
        seed: 3,
        gen_seeds: 0,
        no_cache: false,
        deadline_ms: 0,
        mutate_every: 5,
        query_every: 3,
    })
    .expect("mixed loadgen run");
    assert!(report.compute.requests > 0, "computes ran");
    assert!(report.mutate.requests > 0, "mutates ran");
    assert!(report.query.requests > 0, "tile queries ran");
    assert_eq!(
        report.requests,
        report.compute.requests + report.mutate.requests + report.query.requests,
        "every successful request is attributed to exactly one kind"
    );
    assert_eq!(report.protocol_errors, 0, "the mixed workload is all-valid");
    let j = report.to_json();
    assert!(j.contains("\"by_kind\":{\"compute_cds\":{"), "json: {j}");
}

#[test]
fn metrics_listener_answers_a_plain_http_scrape() {
    let server = serve(
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            queue: 2,
            cache_bytes: 1 << 20,
            shard: Default::default(),
            metrics_addr: Some("127.0.0.1:0".into()),
        },
    )
    .expect("bind ephemeral ports");
    let maddr = server.metrics_addr().expect("metrics listener bound");
    let mut conn = std::net::TcpStream::connect(maddr).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    conn.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
    let mut resp = String::new();
    let _ = conn.read_to_string(&mut resp);
    assert!(
        resp.starts_with("HTTP/1.0 200 OK\r\n"),
        "got response head: {resp:?}"
    );
    assert!(resp.contains("Content-Type: text/plain"));
    assert!(resp.contains("Content-Length:"));
}
