//! Golden vectors for the canonical 128-bit request digests.
//!
//! The digests in `pacds_serve::keys` are a **compatibility surface**,
//! not an implementation detail: they are the serve cache keys *and* the
//! cluster coordinator's routing keys. If a refactor silently changes
//! them, every deployed cache goes cold at once and — far worse — a
//! mixed-version cluster (old coordinator, new backends, or vice versa)
//! routes to one backend while caching under another. These tests pin
//! the exact values for a small fixed corpus so any change to the digest
//! is a deliberate, reviewed, tagged event (bump the domain-tag version
//! when you mean it).
//!
//! The corpus covers each input axis separately: config (policy, rule
//! variants), energy presence and content, topology (order matters not —
//! edges are canonicalised first), and the gen path's full parameter
//! tuple. A final set of inequality checks guards the *separating* power
//! of the digest — the axes that must never collide.

use pacds_core::{CdsConfig, Policy};
use pacds_serve::keys::{compute_key, gen_key, graph_name_key};
use pacds_serve::protocol::GenComputeRequest;

/// The fixed topology: a 6-vertex graph, listed deliberately unsorted —
/// `compute_key` takes *canonicalised* edges, so the caller sorts first
/// (as both the server handler and the cluster coordinator do).
fn canonical_edges() -> Vec<(u32, u32)> {
    let mut edges = vec![(4u32, 5u32), (0, 1), (2, 3), (1, 2), (3, 4), (1, 3)];
    pacds_graph::canonicalize_edges(&mut edges);
    edges
}

fn gen_req(seed: u64) -> GenComputeRequest {
    GenComputeRequest {
        flags: 0,
        deadline_ms: 0,
        cfg: CdsConfig::policy(Policy::Degree),
        n: 40,
        seed,
        radius: 30.0,
        side: 100.0,
        connected: false,
        energy_seed: None,
    }
}

#[test]
fn compute_digests_are_pinned() {
    let edges = canonical_edges();
    let cases: [(CdsConfig, Option<&[u8]>, u128); 4] = [
        (
            CdsConfig::policy(Policy::Degree),
            None,
            0x76e1f018f6da781e6e5508dae10ba10e,
        ),
        (
            CdsConfig::sequential(Policy::Degree),
            None,
            0xc390c7efed54af380a2960f512e80144,
        ),
        (
            CdsConfig::policy(Policy::Energy),
            None,
            0x9e2419d60b19690aabf40381be3a34f9,
        ),
        (
            CdsConfig::policy(Policy::Energy),
            Some(&[10, 0, 0, 0, 0, 0, 0, 0, 20, 0, 0, 0, 0, 0, 0, 0]),
            0x796a70b90eff0d4b5be3d41abb002b48,
        ),
    ];
    for (i, (cfg, energy, want)) in cases.iter().enumerate() {
        let got = compute_key(cfg, *energy, 6, &edges);
        assert_eq!(
            got, *want,
            "compute digest case {i} drifted: got {got:#034x}, pinned {want:#034x} — \
             changing the canonical digest invalidates every cache and splits \
             mixed-version clusters; if intentional, bump the key domain tag \
             version and re-pin"
        );
    }
}

#[test]
fn gen_digests_are_pinned() {
    let cases: [(u64, u128); 2] = [
        (0, 0x6f5aee61ac1547bde2da51a2dbc12df7),
        (7, 0xd91eb8408896f8eed9a50b6aee717a58),
    ];
    for (seed, want) in cases {
        let got = gen_key(&gen_req(seed));
        assert_eq!(
            got, want,
            "gen digest for seed {seed} drifted: got {got:#034x}"
        );
    }
    // The energy-seed marker separates None from Some.
    let mut with_energy = gen_req(0);
    with_energy.energy_seed = Some(3);
    assert_eq!(
        gen_key(&with_energy),
        0x1ec2efc0e75104f1ceb13c2ae4fea0df,
        "gen digest with energy seed drifted"
    );
}

#[test]
fn graph_name_digests_are_pinned() {
    assert_eq!(graph_name_key("alpha"), 0x62dac691420d9b339aa2260aad05c17b);
    assert_eq!(graph_name_key("beta"), 0x70780418e9b956a38425e6250982a38f);
}

#[test]
fn digests_separate_every_input_axis() {
    let edges = canonical_edges();
    let cfg = CdsConfig::policy(Policy::Degree);
    let base = compute_key(&cfg, None, 6, &edges);

    // Config axis.
    assert_ne!(base, compute_key(&CdsConfig::sequential(Policy::Degree), None, 6, &edges));
    assert_ne!(base, compute_key(&CdsConfig::policy(Policy::Id), None, 6, &edges));
    // Vertex-count axis (same edges, extra isolated vertex).
    assert_ne!(base, compute_key(&cfg, None, 7, &edges));
    // Energy axis: absence, presence, and content are all distinct.
    let e1 = compute_key(&cfg, Some(&[1, 2, 3]), 6, &edges);
    let e2 = compute_key(&cfg, Some(&[1, 2, 4]), 6, &edges);
    assert_ne!(base, e1);
    assert_ne!(e1, e2);
    // Topology axis.
    let mut other = canonical_edges();
    other.pop();
    assert_ne!(base, compute_key(&cfg, None, 6, &other));
    // Domain separation: a gen request never collides with a compute, a
    // graph name never collides with either (different tags).
    assert_ne!(base, gen_key(&gen_req(0)));
    assert_ne!(base, graph_name_key("alpha"));
}

#[test]
fn edge_order_is_canonicalised_away() {
    let cfg = CdsConfig::policy(Policy::Degree);
    let a = canonical_edges();
    // The same topology arriving in reversed order and with endpoints
    // swapped must digest identically after canonicalisation.
    let mut b: Vec<(u32, u32)> = a.iter().rev().map(|&(u, v)| (v, u)).collect();
    pacds_graph::canonicalize_edges(&mut b);
    assert_eq!(
        compute_key(&cfg, None, 6, &a),
        compute_key(&cfg, None, 6, &b)
    );
}
