//! Differential conformance for the serving layer: the full wire round
//! trip (encode → TCP → decode → compute → encode → TCP → decode) must be
//! bit-identical to the oracle — which the rest of the workspace is
//! already pinned against — over the adversarial corpus, both cache-cold
//! and cache-warm.
//!
//! Every instance is requested **twice** on the same live server: the
//! first answer must be computed (cache-cold), the second must come from
//! the cache (cache-warm), and both must carry the same bytes. Mismatches
//! shrink and emit replayable case files via the testkit harness.

use pacds_core::CdsConfig;
use pacds_graph::{Graph, VertexMask};
use pacds_serve::{serve, Client, ServerConfig, ShardMode, ShardPolicy};
use pacds_testkit::harness::{full_config_matrix, ConformanceReport};
use pacds_testkit::{named_families, random_unit_disk_cases};

/// Issues the instance twice against the live server, asserting the
/// cold/warm cache contract, and returns the (shared) mask.
fn served_mask(
    client: &mut Client,
    g: &Graph,
    energy: &[u64],
    cfg: &CdsConfig,
) -> VertexMask {
    let edges: Vec<(u32, u32)> = g.edges().collect();
    let n = g.n() as u32;
    let cold = client
        .compute_cds(cfg, n, &edges, Some(energy), 0, 0)
        .expect("served compute (cold)");
    let warm = client
        .compute_cds(cfg, n, &edges, Some(energy), 0, 0)
        .expect("served compute (warm)");
    assert!(warm.cache_hit, "second identical request must hit the cache");
    assert_eq!(cold.mask, warm.mask, "cache-warm answer must be bit-identical");
    assert_eq!(
        (cold.marked, cold.after_rule1, cold.gateways, cold.rounds),
        (warm.marked, warm.after_rule1, warm.gateways, warm.rounds),
        "cached stage statistics must match the computed ones"
    );
    cold.mask
}

#[test]
fn served_responses_conform_over_the_corpus() {
    let server = serve(
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            queue: 8,
            cache_bytes: 64 << 20,
            // Route every shardable request through the sharded engine so
            // this wire conformance run also pins the served sharded path
            // against the oracle (unshardable configs fall back).
            shard: ShardPolicy {
                mode: ShardMode::Always,
                shards: 4,
                ..ShardPolicy::default()
            },
            metrics_addr: None,
        },
    )
    .expect("bind conformance server");
    let mut client = Client::connect(server.addr()).expect("connect");

    let matrix = full_config_matrix();
    let mut report = ConformanceReport::new();

    // Named adversarial families × the full 40-configuration matrix.
    for case in named_families() {
        for cfg in &matrix {
            report.check_external(&case, cfg, "serve_wire", |g, e, cfg| {
                served_mask(&mut client, g, e, cfg)
            });
        }
    }
    // Random unit-disk corpus × a spread of the matrix (every 5th config,
    // offset by case index so all 40 appear across the corpus).
    for (i, case) in random_unit_disk_cases(0xC0DE, 25).iter().enumerate() {
        for cfg in matrix.iter().skip(i % 5).step_by(5) {
            report.check_external(case, cfg, "serve_wire", |g, e, cfg| {
                served_mask(&mut client, g, e, cfg)
            });
        }
    }

    assert!(report.checked > 500, "corpus coverage floor");
    report.finish();

    // Sanity on the cache contract across the whole run: exactly one miss
    // and at least one hit per checked instance.
    let stats = server.state().cache.stats();
    assert!(stats.hits >= stats.misses, "every instance re-served warm");
    assert_eq!(
        server
            .state()
            .stats
            .protocol_errors
            .load(std::sync::atomic::Ordering::Relaxed),
        0,
        "conformance run must be protocol-error free"
    );
}
