//! Live-socket integration tests: real `TcpListener`, real worker pool.
//!
//! Covers the failure-handling contract end to end — malformed, truncated
//! and oversized frames produce typed errors (never a panic, never a
//! hang), backpressure answers with a fast `REJECTED`, graceful shutdown
//! drains queued work — plus concurrent clients hammering one cache.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use pacds_core::{CdsConfig, Policy};
use pacds_serve::protocol::{
    self, decode_error, encode_ping, ErrorCode, ResponseKind, LEN_PREFIX, PROTOCOL_VERSION,
};
use pacds_serve::{serve, Client, ClientError, ServerConfig, StatsFormat};

fn tiny_server(workers: usize, queue: usize) -> pacds_serve::ServerHandle {
    serve(
        "127.0.0.1:0",
        ServerConfig {
            workers,
            queue,
            cache_bytes: 4 << 20,
            shard: Default::default(),
            metrics_addr: None,
        },
    )
    .expect("bind ephemeral port")
}

/// Reads one `[len][payload]` frame with a timeout already set on `conn`.
fn read_frame(conn: &mut TcpStream) -> std::io::Result<Vec<u8>> {
    let mut prefix = [0u8; LEN_PREFIX];
    conn.read_exact(&mut prefix)?;
    let len = u32::from_le_bytes(prefix) as usize;
    let mut payload = vec![0u8; len];
    conn.read_exact(&mut payload)?;
    Ok(payload)
}

fn raw_conn(addr: std::net::SocketAddr) -> TcpStream {
    let conn = TcpStream::connect(addr).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    conn
}

#[test]
fn ping_compute_and_stats_round_trip() {
    let server = tiny_server(2, 4);
    let mut client = Client::connect(server.addr()).unwrap();
    client.ping().unwrap();
    let cfg = CdsConfig::sequential(Policy::Degree);
    let edges = [(0u32, 1), (1, 2), (2, 3), (1, 3)];
    let a = client.compute_cds(&cfg, 4, &edges, None, 0, 0).unwrap();
    assert!(!a.cache_hit);
    let b = client.compute_cds(&cfg, 4, &edges, None, 0, 0).unwrap();
    assert!(b.cache_hit, "second identical request served from cache");
    assert_eq!(a.mask, b.mask);
    let stats = client.stats(StatsFormat::Table).unwrap();
    assert_eq!(stats.counter("compute"), Some(2));
    assert_eq!(stats.counter("cache_hits"), Some(1));
    assert_eq!(stats.counter("pings"), Some(1));
}

#[test]
fn malformed_truncated_and_oversized_frames_get_typed_errors() {
    let server = tiny_server(2, 4);

    // Unsupported version: typed error, then the server closes.
    let mut conn = raw_conn(server.addr());
    conn.write_all(&[2, 0, 0, 0, 99, 0x01]).unwrap();
    let payload = read_frame(&mut conn).unwrap();
    assert_eq!(ResponseKind::from_wire(payload[1]), Some(ResponseKind::Error));
    let e = decode_error(&payload[2..]).unwrap();
    assert_eq!(e.code, ErrorCode::UnsupportedVersion);
    assert_eq!(conn.read(&mut [0u8; 1]).unwrap(), 0, "connection closed");

    // Unknown request kind.
    let mut conn = raw_conn(server.addr());
    conn.write_all(&[2, 0, 0, 0, PROTOCOL_VERSION, 0x6E]).unwrap();
    let e = decode_error(&read_frame(&mut conn).unwrap()[2..]).unwrap();
    assert_eq!(e.code, ErrorCode::UnknownKind);

    // Truncated body: a ComputeCds header whose body stops mid-field.
    let mut conn = raw_conn(server.addr());
    conn.write_all(&[5, 0, 0, 0, PROTOCOL_VERSION, 0x01, 1, 2, 3]).unwrap();
    let e = decode_error(&read_frame(&mut conn).unwrap()[2..]).unwrap();
    assert_eq!(e.code, ErrorCode::Malformed);

    // Oversized declared length: typed error before reading the payload.
    let mut conn = raw_conn(server.addr());
    let huge = (protocol::DEFAULT_MAX_FRAME_LEN + 1).to_le_bytes();
    conn.write_all(&huge).unwrap();
    let e = decode_error(&read_frame(&mut conn).unwrap()[2..]).unwrap();
    assert_eq!(e.code, ErrorCode::Oversized);
    assert_eq!(conn.read(&mut [0u8; 1]).unwrap(), 0, "connection closed");

    // A half-written frame followed by a client hangup must not wedge a
    // worker: the server stays fully responsive afterwards.
    let mut conn = raw_conn(server.addr());
    conn.write_all(&[9, 0]).unwrap();
    drop(conn);
    let mut client = Client::connect(server.addr()).unwrap();
    client.ping().unwrap();

    let stats = Client::connect(server.addr())
        .unwrap()
        .stats(StatsFormat::Table)
        .unwrap();
    assert_eq!(stats.counter("protocol_errors"), Some(4));
}

#[test]
fn bad_input_keeps_the_connection_usable() {
    let server = tiny_server(1, 4);
    let mut client = Client::connect(server.addr()).unwrap();
    let cfg = CdsConfig::policy(Policy::Id);
    let err = client
        .compute_cds(&cfg, 3, &[(0, 7)], None, 0, 0)
        .unwrap_err();
    match err {
        ClientError::Wire(e) => assert_eq!(e.code, ErrorCode::BadInput),
        other => panic!("expected BadInput, got {other}"),
    }
    // Same connection still serves valid requests.
    let ok = client.compute_cds(&cfg, 3, &[(0, 1), (1, 2)], None, 0, 0).unwrap();
    assert_eq!(ok.mask.len(), 3);
}

#[test]
fn backpressure_rejects_with_a_typed_frame() {
    // One worker, queue depth one. The worker is pinned by connection A;
    // B fills the queue; C must be REJECTED immediately.
    let server = tiny_server(1, 1);
    let mut a = Client::connect(server.addr()).unwrap();
    a.ping().unwrap(); // guarantees the worker owns connection A

    let b = raw_conn(server.addr());
    std::thread::sleep(Duration::from_millis(200)); // let B enter the queue

    let mut c = raw_conn(server.addr());
    let payload = read_frame(&mut c).expect("REJECTED arrives without any request");
    assert_eq!(ResponseKind::from_wire(payload[1]), Some(ResponseKind::Error));
    let e = decode_error(&payload[2..]).unwrap();
    assert_eq!(e.code, ErrorCode::Rejected);
    assert!(!e.code.is_connection_fatal(), "REJECTED is retryable");
    assert_eq!(c.read(&mut [0u8; 1]).unwrap(), 0, "rejected conn closed");

    // Releasing A lets the worker drain B: the queued connection is
    // served, not dropped.
    drop(a);
    let mut b = b;
    encode_frame_ping(&mut b);
    let payload = read_frame(&mut b).unwrap();
    assert_eq!(ResponseKind::from_wire(payload[1]), Some(ResponseKind::Pong));

    assert_eq!(
        server.state().stats.rejected.load(std::sync::atomic::Ordering::Relaxed),
        1
    );
}

fn encode_frame_ping(conn: &mut TcpStream) {
    let mut frame = Vec::new();
    encode_ping(&mut frame);
    conn.write_all(&frame).unwrap();
}

#[test]
fn graceful_shutdown_drains_queued_work() {
    let mut server = tiny_server(1, 2);
    let addr = server.addr();

    // Pin the worker with connection A, queue B with a request already
    // written, then shut down. B's request must still be answered.
    let mut a = Client::connect(addr).unwrap();
    a.ping().unwrap();
    let mut b = raw_conn(addr);
    encode_frame_ping(&mut b);
    std::thread::sleep(Duration::from_millis(200)); // B reaches the queue

    let closer = std::thread::spawn(move || {
        server.shutdown();
        server
    });
    // The idle connection A is released by the shutdown poll; the worker
    // then drains B.
    let payload = read_frame(&mut b).expect("queued request served during drain");
    assert_eq!(ResponseKind::from_wire(payload[1]), Some(ResponseKind::Pong));
    let server = closer.join().unwrap();

    // Fully stopped: new connections are refused (or reset immediately).
    assert!(
        TcpStream::connect(addr).is_err()
            || TcpStream::connect(addr)
                .and_then(|mut c| {
                    c.set_read_timeout(Some(Duration::from_secs(2)))?;
                    let mut frame = Vec::new();
                    encode_ping(&mut frame);
                    c.write_all(&frame)?;
                    match c.read(&mut [0u8; 8])? {
                        0 => Ok(()),
                        _ => Err(std::io::Error::other("served after shutdown")),
                    }
                })
                .is_ok(),
        "no service after shutdown"
    );
    drop(server);
}

#[test]
fn shutdown_with_idle_workers_is_prompt_and_idempotent() {
    let mut server = tiny_server(4, 8);
    let t0 = std::time::Instant::now();
    server.shutdown();
    server.shutdown(); // second call is a no-op
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "idle shutdown must not hang"
    );
}

#[test]
fn concurrent_clients_share_the_cache_consistently() {
    // Eight client threads, two distinct topologies, a cache big enough
    // for both: every response for a topology must be bit-identical, and
    // hits + misses must equal total compute requests.
    let server = tiny_server(4, 16);
    let addr = server.addr();
    let cfg = CdsConfig::sequential(Policy::Degree);
    let topo_a: Vec<(u32, u32)> = (0..41u32).map(|i| (i, (i + 1) % 41)).collect(); // cycle
    let topo_b: Vec<(u32, u32)> = (0..40u32).map(|i| (i, i + 1)).collect(); // path

    let mut handles = Vec::new();
    for t in 0..8 {
        let topo = if t % 2 == 0 { topo_a.clone() } else { topo_b.clone() };
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            let mut first_mask = None;
            for _ in 0..50 {
                let r = client.compute_cds(&cfg, 41, &topo, None, 0, 0).unwrap();
                match &first_mask {
                    None => first_mask = Some(r.mask.clone()),
                    Some(m) => assert_eq!(&r.mask, m, "cached result must be bit-identical"),
                }
            }
            first_mask.unwrap()
        }));
    }
    let masks: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    // Same topology → same mask across threads.
    assert_eq!(masks[0], masks[2]);
    assert_eq!(masks[1], masks[3]);

    let cache = server.state().cache.stats();
    assert_eq!(cache.hits + cache.misses, 400, "every request hit the cache path");
    assert!(cache.hits >= 398, "at most one miss per distinct topology");
    assert_eq!(cache.entries, 2);
}

#[test]
fn eviction_races_stay_consistent_on_a_live_server() {
    // A cache too small for the working set: concurrent hits, misses and
    // evictions must still produce correct (recomputable) results.
    let server = serve(
        "127.0.0.1:0",
        ServerConfig {
            workers: 4,
            queue: 16,
            // Roughly two result frames' worth per shard: constant churn.
            cache_bytes: 16 * 400,
            shard: Default::default(),
            metrics_addr: None,
        },
    )
    .unwrap();
    let addr = server.addr();
    let cfg = CdsConfig::policy(Policy::Degree);
    let mut handles = Vec::new();
    for t in 0..4u32 {
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            for round in 0..40u32 {
                // 64 distinct topologies across ~16 shards: more keys per
                // shard than the byte budget holds, so eviction is certain.
                let k = (t * 31 + round * 7) % 64;
                // Path graphs of varying length: distinct digests.
                let n = 10 + k;
                let edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
                let r = client.compute_cds(&cfg, n, &edges, None, 0, 0).unwrap();
                // A path's pruned backbone is its interior: n - 2 hosts
                // for NR-free policies — independently checkable.
                assert_eq!(r.mask.len(), n as usize);
                assert!(r.gateways > 0);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let stats = server.state().cache.stats();
    assert!(stats.evictions > 0, "undersized cache must evict under load");
    assert_eq!(
        server
            .state()
            .stats
            .protocol_errors
            .load(std::sync::atomic::Ordering::Relaxed),
        0
    );
}

#[test]
fn deadline_exceeded_over_the_wire() {
    let server = tiny_server(1, 4);
    let mut client = Client::connect(server.addr()).unwrap();
    let cfg = CdsConfig::policy(Policy::Degree);
    // A 1 ms deadline with a cold large-ish topology: the deadline check
    // after compute fires (and on very fast machines the request may
    // still make it — accept either, but a typed error must be Deadline).
    let edges: Vec<(u32, u32)> = (0..1999u32).map(|i| (i, i + 1)).collect();
    match client.compute_cds(&cfg, 2000, &edges, None, protocol::FLAG_NO_CACHE, 1) {
        Ok(r) => assert_eq!(r.mask.len(), 2000),
        Err(ClientError::Wire(e)) => assert_eq!(e.code, ErrorCode::DeadlineExceeded),
        Err(other) => panic!("unexpected error: {other}"),
    }
    // The connection survives a deadline miss.
    client.ping().unwrap();
}
