//! Persistent named graphs over the wire: OpenGraph / Mutate /
//! CloseGraph / QueryTile against a live server.
//!
//! * Mutation results and tile verdicts are compared bit-for-bit against
//!   a local [`ChurnEngine`] replaying the same events.
//! * Tile responses carry no cache flag, so cache-cold and cache-warm
//!   round trips are asserted **byte-identical**; cache behaviour is
//!   observed through the stats counters instead.
//! * A mutation invalidates exactly its dirty tiles' cached responses:
//!   clean tiles keep cache-hitting, dirty tiles are recomputed.
//! * Protocol abuse (unknown graphs, double kills, out-of-domain moves,
//!   reopens, bad event kinds, truncated bodies) produces typed errors —
//!   recoverable ones keep the connection; framing damage closes it.

use std::io::{Read, Write};

use pacds_core::{CdsConfig, Policy};
use pacds_geom::{Point2, Rect};
use pacds_serve::protocol::{self, decode_error, ErrorCode, LEN_PREFIX};
use pacds_serve::{
    serve, Client, ClientError, ServerConfig, StatsFormat, WireEvent, MAX_OPEN_GRAPHS,
};
use pacds_shard::{ChurnEngine, ChurnEvent, ShardSpec, REQUIRED_HALO};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn tiny_server() -> pacds_serve::ServerHandle {
    serve(
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            queue: 4,
            cache_bytes: 4 << 20,
            shard: Default::default(),
            metrics_addr: None,
        },
    )
    .expect("bind ephemeral port")
}

const BOUNDS: (f64, f64, f64, f64) = (0.0, 0.0, 100.0, 100.0);

/// Deterministic random instance shared by the client and the local
/// mirror engine.
fn instance(seed: u64, n: usize) -> (Vec<(f64, f64)>, Vec<u64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let points = (0..n)
        .map(|_| (rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)))
        .collect();
    let energy = (0..n).map(|_| rng.random_range(5u64..100)).collect();
    (points, energy)
}

/// A local engine mirroring what the server holds for the same open.
fn mirror(
    shards: usize,
    radius: f64,
    points: &[(f64, f64)],
    energy: &[u64],
    cfg: &CdsConfig,
) -> ChurnEngine {
    let pts: Vec<Point2> = points.iter().map(|&(x, y)| Point2::new(x, y)).collect();
    ChurnEngine::open(
        ShardSpec {
            shards,
            halo: REQUIRED_HALO,
            threads: 1,
        },
        Rect::new(BOUNDS.0, BOUNDS.1, BOUNDS.2, BOUNDS.3),
        radius,
        &pts,
        energy,
        cfg,
    )
    .expect("mirror engine opens")
}

fn to_local(ev: &WireEvent) -> ChurnEvent {
    match *ev {
        WireEvent::Add { x, y, energy } => ChurnEvent::AddNode {
            pos: Point2::new(x, y),
            energy,
        },
        WireEvent::Move { node, x, y } => ChurnEvent::MoveNode {
            node,
            to: Point2::new(x, y),
        },
        WireEvent::Kill { node } => ChurnEvent::KillNode { node },
        WireEvent::Drain { node, remaining } => ChurnEvent::DrainBattery { node, remaining },
    }
}

fn wire_code(err: ClientError) -> ErrorCode {
    match err {
        ClientError::Wire(e) => e.code,
        other => panic!("expected a typed wire error, got {other:?}"),
    }
}

#[test]
fn mutate_and_query_match_a_local_engine_replay() {
    let server = tiny_server();
    let mut client = Client::connect(server.addr()).unwrap();
    let cfg = CdsConfig::policy(Policy::EnergyDegree);
    let (points, energy) = instance(0xA11CE, 60);
    let mut local = mirror(9, 25.0, &points, &energy, &cfg);

    let opened = client
        .open_graph("fleet", &cfg, 9, 25.0, BOUNDS, &points, &energy)
        .unwrap();
    assert_eq!(opened.tiles as usize, local.tiles());
    assert_eq!(opened.n as usize, local.n());
    assert_eq!(opened.gateways as usize, local.gateway_count());

    let events = [
        WireEvent::Kill { node: 3 },
        WireEvent::Move {
            node: 5,
            x: 10.0,
            y: 10.0,
        },
        WireEvent::Drain {
            node: 7,
            remaining: 2,
        },
        WireEvent::Add {
            x: 50.0,
            y: 50.0,
            energy: 33,
        },
    ];
    for ev in &events {
        local.apply(&to_local(ev)).unwrap();
    }
    let stats = local.refresh();

    let result = client.mutate("fleet", &events).unwrap();
    assert_eq!(result.applied, 4);
    assert_eq!(result.dirty_tiles as usize, stats.dirty_tiles);
    assert_eq!(result.resolved_tiles as usize, stats.resolved_tiles);
    assert_eq!(result.total_tiles as usize, stats.total_tiles);
    assert_eq!(result.gateway_flips, stats.gateway_flips);
    assert_eq!(result.gateways as usize, local.gateway_count());
    assert_eq!(result.n as usize, local.n());

    for t in 0..local.tiles() {
        let tile = client.query_tile("fleet", t as u32).unwrap();
        assert_eq!(tile.tile as usize, t);
        assert_eq!(tile.entries, local.tile_result(t), "tile {t} diverged");
    }
    client.close_graph("fleet").unwrap();
}

#[test]
fn tile_responses_are_byte_identical_cold_and_warm() {
    let server = tiny_server();
    let mut client = Client::connect(server.addr()).unwrap();
    let cfg = CdsConfig::policy(Policy::Degree);
    let (points, energy) = instance(7, 40);
    client
        .open_graph("bytes", &cfg, 4, 20.0, BOUNDS, &points, &energy)
        .unwrap();

    let mut frame = Vec::new();
    protocol::encode_query_tile(&mut frame, "bytes", 1);
    let cold = client.send_raw(&frame).unwrap();
    let warm = client.send_raw(&frame).unwrap();
    assert_eq!(cold, warm, "cache state must be invisible in the bytes");

    let stats = client.stats(StatsFormat::Table).unwrap();
    assert_eq!(stats.counter("tile_queries"), Some(2));
    assert_eq!(stats.counter("cache_hits"), Some(1), "second query hit");
}

#[test]
fn mutation_invalidates_exactly_the_dirty_tiles() {
    let server = tiny_server();
    let mut client = Client::connect(server.addr()).unwrap();
    let cfg = CdsConfig::policy(Policy::EnergyDegree);
    let (points, energy) = instance(0xD1A7, 80);
    let mut local = mirror(9, 10.0, &points, &energy, &cfg);
    let opened = client
        .open_graph("inv", &cfg, 9, 10.0, BOUNDS, &points, &energy)
        .unwrap();
    let tiles = opened.tiles;

    // Warm the whole cache, then verify it is warm.
    for t in 0..tiles {
        client.query_tile("inv", t).unwrap();
    }
    let cold = client.stats(StatsFormat::Table).unwrap();
    for t in 0..tiles {
        client.query_tile("inv", t).unwrap();
    }
    let warm = client.stats(StatsFormat::Table).unwrap();
    assert_eq!(
        warm.counter("cache_hits").unwrap() - cold.counter("cache_hits").unwrap(),
        u64::from(tiles),
        "second sweep must be all hits"
    );

    // Kill the host nearest the origin corner: its 2-hop dirty margin
    // cannot reach the far tiles, so the dirty set is a strict subset.
    let victim = (0..points.len())
        .min_by(|&a, &b| {
            let d = |i: usize| points[i].0 + points[i].1;
            d(a).partial_cmp(&d(b)).unwrap()
        })
        .unwrap() as u32;
    let kill = [WireEvent::Kill { node: victim }];
    local.apply(&to_local(&kill[0])).unwrap();
    local.refresh();
    let result = client.mutate("inv", &kill).unwrap();
    assert!(result.dirty_tiles >= 1, "a kill must dirty its own tile");
    assert!(
        result.dirty_tiles < tiles,
        "a corner kill must not dirty the whole grid"
    );

    // Third sweep: clean tiles still hit, dirty tiles recompute — and
    // every tile (recomputed or retained) matches the local replay.
    for t in 0..tiles {
        let tile = client.query_tile("inv", t).unwrap();
        assert_eq!(tile.entries, local.tile_result(t as usize), "tile {t}");
    }
    let after = client.stats(StatsFormat::Table).unwrap();
    assert_eq!(
        after.counter("cache_hits").unwrap() - warm.counter("cache_hits").unwrap(),
        u64::from(tiles - result.dirty_tiles),
        "exactly the non-dirty tiles keep their cached frames"
    );
}

#[test]
fn rejected_batches_keep_the_applied_prefix() {
    let server = tiny_server();
    let mut client = Client::connect(server.addr()).unwrap();
    let cfg = CdsConfig::policy(Policy::Degree);
    let (points, energy) = instance(0xBAD, 30);
    let mut local = mirror(4, 20.0, &points, &energy, &cfg);
    client
        .open_graph("prefix", &cfg, 4, 20.0, BOUNDS, &points, &energy)
        .unwrap();

    // The second kill targets an already-dead host: the batch is rejected
    // at event index 1, but event 0 stays applied — exactly the engine's
    // validate-then-mutate contract, surfaced over the wire.
    let batch = [WireEvent::Kill { node: 2 }, WireEvent::Kill { node: 2 }];
    let err = client.mutate("prefix", &batch).unwrap_err();
    assert_eq!(wire_code(err), ErrorCode::MutationRejected);

    local.apply(&ChurnEvent::KillNode { node: 2 }).unwrap();
    local.refresh();
    for t in 0..local.tiles() {
        let tile = client.query_tile("prefix", t as u32).unwrap();
        assert_eq!(tile.entries, local.tile_result(t), "tile {t}");
    }

    // An out-of-domain move is likewise rejected without poisoning the
    // graph.
    let oob = [WireEvent::Move {
        node: 1,
        x: BOUNDS.2 + 500.0,
        y: 0.0,
    }];
    let err = client.mutate("prefix", &oob).unwrap_err();
    assert_eq!(wire_code(err), ErrorCode::MutationRejected);
    let tile = client.query_tile("prefix", 0).unwrap();
    assert_eq!(tile.entries, local.tile_result(0));
}

#[test]
fn protocol_abuse_gets_typed_recoverable_errors() {
    let server = tiny_server();
    let mut client = Client::connect(server.addr()).unwrap();
    let cfg = CdsConfig::policy(Policy::Degree);
    let (points, energy) = instance(1, 10);

    // Unknown graph, for every request family.
    let err = client.mutate("ghost", &[WireEvent::Kill { node: 0 }]);
    assert_eq!(wire_code(err.unwrap_err()), ErrorCode::UnknownGraph);
    let err = client.close_graph("ghost");
    assert_eq!(wire_code(err.unwrap_err()), ErrorCode::UnknownGraph);
    let err = client.query_tile("ghost", 0);
    assert_eq!(wire_code(err.unwrap_err()), ErrorCode::UnknownGraph);

    // Reopening an open name.
    client
        .open_graph("dup", &cfg, 4, 20.0, BOUNDS, &points, &energy)
        .unwrap();
    let err = client.open_graph("dup", &cfg, 4, 20.0, BOUNDS, &points, &energy);
    assert_eq!(wire_code(err.unwrap_err()), ErrorCode::GraphExists);

    // Tile index past the grid.
    let err = client.query_tile("dup", 4);
    assert_eq!(wire_code(err.unwrap_err()), ErrorCode::BadInput);

    // Unshardable configuration: typed rejection mirroring the batch
    // engine, not a panic.
    let seq = CdsConfig::sequential(Policy::Degree);
    let err = client.open_graph("seq", &seq, 4, 20.0, BOUNDS, &points, &energy);
    assert_eq!(wire_code(err.unwrap_err()), ErrorCode::BadInput);

    // Bad event kind byte (surgery on a valid frame): recoverable
    // BadInput, connection stays usable.
    let mut frame = Vec::new();
    protocol::encode_mutate(&mut frame, "dup", &[WireEvent::Kill { node: 0 }]);
    let kind_at = frame.len() - 5;
    frame[kind_at] = 9;
    let payload = client.send_raw(&frame).unwrap();
    let e = decode_error(&payload[2..]).unwrap();
    assert_eq!(e.code, ErrorCode::BadInput);
    client.ping().expect("connection survived the bad event kind");

    // All of the above left the server consistent.
    let stats = client.stats(StatsFormat::Table).unwrap();
    assert_eq!(stats.counter("graphs_opened"), Some(1));
    assert_eq!(stats.counter("graphs_closed"), Some(0));
}

#[test]
fn truncated_mutate_bodies_close_the_connection() {
    let server = tiny_server();
    let mut conn = std::net::TcpStream::connect(server.addr()).unwrap();
    conn.set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .unwrap();

    // A structurally valid frame whose body is one byte short of its
    // mutate payload: consistent framing, inconsistent body → Malformed,
    // and the server drops the connection.
    let mut frame = Vec::new();
    protocol::encode_mutate(&mut frame, "g", &[WireEvent::Kill { node: 3 }]);
    frame.pop();
    let len = u32::from_le_bytes(frame[..4].try_into().unwrap()) - 1;
    frame[..4].copy_from_slice(&len.to_le_bytes());
    conn.write_all(&frame).unwrap();

    let mut prefix = [0u8; LEN_PREFIX];
    conn.read_exact(&mut prefix).unwrap();
    let mut payload = vec![0u8; u32::from_le_bytes(prefix) as usize];
    conn.read_exact(&mut payload).unwrap();
    let e = decode_error(&payload[2..]).unwrap();
    assert_eq!(e.code, ErrorCode::Malformed);
    assert_eq!(conn.read(&mut [0u8; 1]).unwrap(), 0, "connection closed");
}

#[test]
fn close_and_reopen_never_serves_stale_tiles() {
    let server = tiny_server();
    let mut client = Client::connect(server.addr()).unwrap();
    let cfg = CdsConfig::policy(Policy::Degree);
    let (old_points, old_energy) = instance(100, 30);
    client
        .open_graph("swap", &cfg, 4, 20.0, BOUNDS, &old_points, &old_energy)
        .unwrap();
    let before = client.query_tile("swap", 0).unwrap();
    client.close_graph("swap").unwrap();

    // Reopen under the same name with a different instance: the fresh
    // uid keys fresh cache slots, so the old cached tile 0 is unreachable.
    let (new_points, new_energy) = instance(200, 30);
    let local = mirror(4, 20.0, &new_points, &new_energy, &cfg);
    client
        .open_graph("swap", &cfg, 4, 20.0, BOUNDS, &new_points, &new_energy)
        .unwrap();
    let after = client.query_tile("swap", 0).unwrap();
    assert_eq!(after.entries, local.tile_result(0));
    assert_ne!(before.entries, after.entries, "instances must differ");
}

#[test]
fn registry_capacity_is_bounded_with_typed_rejection() {
    let server = tiny_server();
    let mut client = Client::connect(server.addr()).unwrap();
    let cfg = CdsConfig::policy(Policy::Id);
    let points = [(0.2, 0.2), (0.8, 0.8)];
    let energy = [5u64, 5];
    let bounds = (0.0, 0.0, 1.0, 1.0);
    for i in 0..MAX_OPEN_GRAPHS {
        client
            .open_graph(&format!("g{i}"), &cfg, 1, 1.0, bounds, &points, &energy)
            .unwrap();
    }
    let err = client.open_graph("overflow", &cfg, 1, 1.0, bounds, &points, &energy);
    assert_eq!(wire_code(err.unwrap_err()), ErrorCode::Rejected);
    // Closing one graph frees a slot.
    client.close_graph("g0").unwrap();
    client
        .open_graph("overflow", &cfg, 1, 1.0, bounds, &points, &energy)
        .unwrap();
}
