//! Backward/forward compatibility of the Stats response across the
//! health-field extension (PR 10).
//!
//! The StatsResult body is a counted list of named entries plus a text
//! block, so appending entries is wire-compatible *by construction* —
//! but "by construction" claims rot silently when someone reshapes the
//! frame. These tests pin the contract from both directions:
//!
//! * **new decoder, old frame** — a frame from a pre-health backend
//!   (no `uptime_s` &c.) decodes cleanly; the missing fields read as
//!   `None`, which is exactly what the cluster prober's
//!   `ProbeHealth::from_stats` maps to zeros.
//! * **old decoder, new frame** — a verbatim copy of the pre-extension
//!   decoder (frozen below) decodes a live server's answer, extra
//!   entries included, proving an unupgraded client survives an
//!   upgraded backend.
//! * **Health format** — the cheap probe form carries the counters and
//!   the health fields with an *empty* text block (no obs snapshot
//!   render on the probe path), at a fraction of the Table answer size.

use pacds_serve::protocol::{
    decode_stats_result, encode_stats_request, ResponseKind, StatsFormat, LEN_PREFIX,
    PROTOCOL_VERSION,
};
use pacds_serve::{serve, Client, ServerConfig};
use std::io::{Read, Write};

fn tiny_server() -> pacds_serve::ServerHandle {
    serve(
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            queue: 4,
            cache_bytes: 1 << 20,
            shard: Default::default(),
            metrics_addr: None,
        },
    )
    .expect("bind ephemeral port")
}

/// Builds a StatsResult *frame payload* the way a pre-health backend did:
/// the same entry encoding, just without the appended health fields.
fn old_style_stats_body(entries: &[(&str, u64)], text: &str) -> Vec<u8> {
    let mut body = Vec::new();
    body.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for (name, value) in entries {
        body.extend_from_slice(&(name.len() as u16).to_le_bytes());
        body.extend_from_slice(name.as_bytes());
        body.extend_from_slice(&value.to_le_bytes());
    }
    body.extend_from_slice(&(text.len() as u32).to_le_bytes());
    body.extend_from_slice(text.as_bytes());
    body
}

#[test]
fn current_decoder_accepts_pre_health_frames() {
    // A pre-extension backend answered only the classic counters.
    let body = old_style_stats_body(&[("compute", 3), ("cache_hits", 1)], "compute 3\n");
    let result = decode_stats_result(&body).expect("old frame decodes");
    assert_eq!(result.counter("compute"), Some(3));
    // The health fields simply aren't there — `None`, not an error; the
    // cluster prober maps this to zeros and the probe still counts as
    // alive.
    assert_eq!(result.counter("uptime_s"), None);
    assert_eq!(result.counter("queue_depth"), None);
    assert_eq!(result.counter("workers"), None);
}

/// Verbatim copy of the decoder as it stood before the health extension.
/// Frozen here on purpose: if the *current* encoder ever produces frames
/// this decoder rejects, the extension broke old clients.
mod frozen_v1 {
    pub struct OldStatsResult {
        pub counters: Vec<(String, u64)>,
        pub text: String,
    }

    pub fn decode(body: &[u8]) -> Result<OldStatsResult, &'static str> {
        let mut at = 0usize;
        let mut take = |n: usize| -> Result<&[u8], &'static str> {
            let s = body.get(at..at + n).ok_or("truncated")?;
            at += n;
            Ok(s)
        };
        let k = u32::from_le_bytes(take(4)?.try_into().unwrap());
        let mut counters = Vec::new();
        for _ in 0..k {
            let name_len = u16::from_le_bytes(take(2)?.try_into().unwrap()) as usize;
            let name = std::str::from_utf8(take(name_len)?)
                .map_err(|_| "utf8")?
                .to_string();
            let value = u64::from_le_bytes(take(8)?.try_into().unwrap());
            counters.push((name, value));
        }
        let text_len = u32::from_le_bytes(take(4)?.try_into().unwrap()) as usize;
        let text = std::str::from_utf8(take(text_len)?)
            .map_err(|_| "utf8")?
            .to_string();
        if at != body.len() {
            return Err("trailing");
        }
        Ok(OldStatsResult { counters, text })
    }
}

/// Raw round trip returning the response payload (version byte included).
fn raw_stats(addr: std::net::SocketAddr, format: StatsFormat) -> Vec<u8> {
    let mut req = Vec::new();
    encode_stats_request(&mut req, format);
    let mut conn = std::net::TcpStream::connect(addr).unwrap();
    conn.set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .unwrap();
    conn.write_all(&req).unwrap();
    let mut prefix = [0u8; LEN_PREFIX];
    conn.read_exact(&mut prefix).unwrap();
    let mut payload = vec![0u8; u32::from_le_bytes(prefix) as usize];
    conn.read_exact(&mut payload).unwrap();
    payload
}

#[test]
fn frozen_old_decoder_accepts_current_frames() {
    let server = tiny_server();
    for format in [StatsFormat::Table, StatsFormat::Health] {
        let payload = raw_stats(server.addr(), format);
        assert_eq!(payload[0], PROTOCOL_VERSION);
        assert_eq!(payload[1], ResponseKind::StatsResult as u8);
        let old = frozen_v1::decode(&payload[2..]).expect("old decoder survives new frame");
        // The old client sees the classic counters where it expects them…
        assert!(old.counters.iter().any(|(n, _)| n == "compute"));
        // …and the appended health fields are just more entries to it.
        assert!(old.counters.iter().any(|(n, _)| n == "workers"));
        // The text block still lands where the old client looks for it
        // (rendered for Table, empty on the probe form).
        assert_eq!(old.text.is_empty(), format == StatsFormat::Health);
    }
}

#[test]
fn health_format_reports_health_fields_without_text() {
    let server = tiny_server();
    let mut client = Client::connect(server.addr()).unwrap();
    client.ping().unwrap();

    let health = client.health().unwrap();
    assert!(health.counter("uptime_s").is_some());
    assert!(health.counter("queue_depth").is_some());
    assert!(health.counter("open_graphs").is_some());
    assert_eq!(health.counter("workers"), Some(2));
    assert!(
        health.text.is_empty(),
        "the probe path must not render an obs snapshot"
    );

    // The classic formats carry the same health entries plus the text
    // render — and are strictly larger on the wire.
    let table = raw_stats(server.addr(), StatsFormat::Table);
    let probe = raw_stats(server.addr(), StatsFormat::Health);
    let decoded = decode_stats_result(&table[2..]).unwrap();
    assert!(decoded.counter("uptime_s").is_some());
    assert!(!decoded.text.is_empty());
    assert!(probe.len() < table.len());
}
