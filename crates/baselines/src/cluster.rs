//! Lowest-ID clustering (cluster-based routing).
//!
//! Gerla-style clustering: a host becomes a *clusterhead* iff it has the
//! lowest id in its closed neighbourhood after all lower-id hosts have
//! decided; every other host joins the lowest-id clusterhead it hears.
//! *Border* hosts (members adjacent to a host of another cluster) plus the
//! clusterheads form the routing overlay the intro's cluster-based schemes
//! use — a dominating set, though not necessarily connected as an induced
//! subgraph (packets cross cluster boundaries via border pairs).

use pacds_graph::{Graph, NodeId, VertexMask};

/// Result of the clustering pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clustering {
    /// Clusterhead of each host (heads point to themselves).
    pub head_of: Vec<NodeId>,
    /// Whether each host is a clusterhead.
    pub is_head: Vec<bool>,
}

impl Clustering {
    /// Number of clusters.
    pub fn cluster_count(&self) -> usize {
        self.is_head.iter().filter(|&&h| h).count()
    }

    /// Hosts belonging to the cluster headed by `head`.
    pub fn members_of(&self, head: NodeId) -> Vec<NodeId> {
        self.head_of
            .iter()
            .enumerate()
            .filter_map(|(v, &h)| (h == head).then_some(v as NodeId))
            .collect()
    }
}

/// Runs lowest-ID clustering on `g`.
///
/// Hosts decide in id order: an undecided host whose id is smaller than
/// every undecided neighbour becomes a head; hosts adjacent to a head join
/// the smallest-id head among their neighbours.
pub fn lowest_id_clusters(g: &Graph) -> Clustering {
    let n = g.n();
    let mut head_of = vec![NodeId::MAX; n];
    let mut is_head = vec![false; n];
    // Processing in increasing id order implements the distributed
    // "lowest id wins" rule deterministically.
    for v in 0..n as NodeId {
        if head_of[v as usize] != NodeId::MAX {
            continue;
        }
        // v has the lowest id among undecided hosts in its neighbourhood
        // (all lower ids are already decided), so it checks whether any
        // neighbouring head already claims it.
        let joined = g
            .neighbors(v)
            .iter()
            .copied()
            .filter(|&u| is_head[u as usize])
            .min();
        match joined {
            Some(h) => head_of[v as usize] = h,
            None => {
                is_head[v as usize] = true;
                head_of[v as usize] = v;
            }
        }
    }
    Clustering { head_of, is_head }
}

/// Extracts the overlay (clusterheads + border hosts) as a vertex mask.
///
/// A border host is a non-head adjacent to a host of a different cluster.
pub fn cluster_gateways(g: &Graph, clustering: &Clustering) -> VertexMask {
    let n = g.n();
    let mut mask = clustering.is_head.clone();
    for v in 0..n as NodeId {
        if mask[v as usize] {
            continue;
        }
        let my = clustering.head_of[v as usize];
        if g.neighbors(v)
            .iter()
            .any(|&u| clustering.head_of[u as usize] != my)
        {
            mask[v as usize] = true;
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacds_core::verify::is_dominating_set;
    use pacds_graph::gen;
    use rand::SeedableRng;

    #[test]
    fn single_cluster_on_a_star() {
        let g = gen::star(6);
        let c = lowest_id_clusters(&g);
        assert_eq!(c.cluster_count(), 1);
        assert!(c.is_head[0]);
        assert_eq!(c.members_of(0).len(), 6);
    }

    #[test]
    fn path_clusters_alternate() {
        // Path 0-1-2-3-4-5: 0 heads {0,1}; 2 heads {2,3}; 4 heads {4,5}.
        let g = gen::path(6);
        let c = lowest_id_clusters(&g);
        assert_eq!(c.head_of, vec![0, 0, 2, 2, 4, 4]);
        assert_eq!(c.cluster_count(), 3);
    }

    #[test]
    fn heads_form_an_independent_set() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        for _ in 0..20 {
            let g = gen::connected_gnp(&mut rng, 30, 0.1, 8);
            let c = lowest_id_clusters(&g);
            for (u, v) in g.edges() {
                assert!(
                    !(c.is_head[u as usize] && c.is_head[v as usize]),
                    "adjacent heads {u}, {v}"
                );
            }
        }
    }

    #[test]
    fn every_host_has_a_head_in_closed_neighborhood() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        for _ in 0..20 {
            let g = gen::connected_gnp(&mut rng, 25, 0.15, 8);
            let c = lowest_id_clusters(&g);
            for v in 0..g.n() as NodeId {
                let h = c.head_of[v as usize];
                assert!(c.is_head[h as usize]);
                assert!(h == v || g.has_edge(v, h));
            }
            // Heads dominate the graph.
            assert!(is_dominating_set(&g, &c.is_head));
        }
    }

    #[test]
    fn gateways_include_heads_and_borders() {
        let g = gen::path(6);
        let c = lowest_id_clusters(&g);
        let gw = cluster_gateways(&g, &c);
        // Heads 0, 2, 4; borders 1 (adj 2's cluster), 3 (adj 4's cluster);
        // 5's neighbours are all in its own cluster.
        assert_eq!(gw, vec![true, true, true, true, true, false]);
        assert!(is_dominating_set(&g, &gw));
    }

    #[test]
    fn isolated_vertices_head_themselves() {
        let g = Graph::new(3);
        let c = lowest_id_clusters(&g);
        assert_eq!(c.cluster_count(), 3);
        assert!(c.is_head.iter().all(|&h| h));
    }
}
