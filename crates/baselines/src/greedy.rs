//! Centralized greedy heuristics.

use pacds_graph::{Graph, NodeId, VertexMask};

/// Classical greedy dominating set: repeatedly pick the vertex covering the
/// most currently-uncovered vertices (its closed neighbourhood), ties to the
/// smaller id. The result dominates `g` but need not be connected.
pub fn greedy_dominating_set(g: &Graph) -> VertexMask {
    let n = g.n();
    let mut chosen = vec![false; n];
    let mut covered = vec![false; n];
    let mut uncovered = n;
    while uncovered > 0 {
        let mut best: Option<(usize, NodeId)> = None;
        for v in g.vertices() {
            if chosen[v as usize] {
                continue;
            }
            let gain = g
                .closed_neighbors(v)
                .iter()
                .filter(|&&u| !covered[u as usize])
                .count();
            if gain > 0 {
                let cand = (gain, v);
                best = Some(match best {
                    None => cand,
                    Some((bg, bv)) => {
                        if gain > bg || (gain == bg && v < bv) {
                            cand
                        } else {
                            (bg, bv)
                        }
                    }
                });
            }
        }
        let (gain, v) = best.expect("some vertex must cover an uncovered vertex");
        chosen[v as usize] = true;
        for u in g.closed_neighbors(v) {
            if !covered[u as usize] {
                covered[u as usize] = true;
            }
        }
        uncovered -= gain;
    }
    chosen
}

/// Guha–Khuller-style greedy *connected* dominating set.
///
/// Vertices are coloured white (uncovered), gray (covered) or black
/// (in the CDS). Start from the maximum-degree vertex, then repeatedly
/// blacken the gray vertex that covers the most white vertices, keeping the
/// black set connected by construction (only gray vertices — neighbours of
/// black ones — are eligible). For `K_n` the single start vertex suffices;
/// for a singleton graph the result is that vertex.
///
/// # Panics
/// Panics if `g` is disconnected (no CDS exists) or empty.
pub fn greedy_mcds(g: &Graph) -> VertexMask {
    let n = g.n();
    assert!(n > 0, "empty graph has no CDS");
    assert!(
        pacds_graph::algo::is_connected(g),
        "greedy_mcds requires a connected graph"
    );
    if n == 1 {
        return vec![true];
    }

    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let mut color = vec![Color::White; n];
    let mut white = n;

    let start = (0..n as NodeId)
        .max_by_key(|&v| (g.degree(v), std::cmp::Reverse(v)))
        .unwrap();
    let blacken = |v: NodeId, color: &mut Vec<Color>, white: &mut usize| {
        if color[v as usize] == Color::White {
            *white -= 1;
        }
        color[v as usize] = Color::Black;
        for &u in g.neighbors(v) {
            if color[u as usize] == Color::White {
                color[u as usize] = Color::Gray;
                *white -= 1;
            }
        }
    };
    blacken(start, &mut color, &mut white);

    while white > 0 {
        // Choose the gray vertex with the most white neighbours.
        let mut best: Option<(usize, NodeId)> = None;
        for v in 0..n as NodeId {
            if color[v as usize] != Color::Gray {
                continue;
            }
            let gain = g
                .neighbors(v)
                .iter()
                .filter(|&&u| color[u as usize] == Color::White)
                .count();
            if gain > 0 {
                best = Some(match best {
                    None => (gain, v),
                    Some((bg, bv)) => {
                        if gain > bg || (gain == bg && v < bv) {
                            (gain, v)
                        } else {
                            (bg, bv)
                        }
                    }
                });
            }
        }
        let (_, v) = best.expect("connected graph: some gray vertex borders white");
        blacken(v, &mut color, &mut white);
    }

    color.iter().map(|&c| c == Color::Black).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacds_core::verify::{is_dominating_set, verify_cds};
    use pacds_graph::{gen, mask_to_vec};
    use rand::SeedableRng;

    #[test]
    fn greedy_ds_dominates_classic_families() {
        for g in [gen::path(9), gen::cycle(7), gen::star(6), gen::grid(4, 4)] {
            let ds = greedy_dominating_set(&g);
            assert!(is_dominating_set(&g, &ds));
        }
    }

    #[test]
    fn greedy_ds_on_star_picks_center_only() {
        let g = gen::star(8);
        assert_eq!(mask_to_vec(&greedy_dominating_set(&g)), vec![0]);
    }

    #[test]
    fn greedy_ds_covers_isolated_vertices() {
        let g = Graph::new(3); // no edges: every vertex must choose itself
        let ds = greedy_dominating_set(&g);
        assert_eq!(ds, vec![true, true, true]);
    }

    #[test]
    fn greedy_mcds_is_a_cds_on_random_connected_graphs() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        for n in [2usize, 3, 10, 40, 90] {
            let g = gen::connected_gnp(&mut rng, n, 0.1, 8);
            let cds = greedy_mcds(&g);
            assert!(verify_cds(&g, &cds).is_ok(), "n = {n}");
        }
    }

    #[test]
    fn greedy_mcds_on_path_selects_interior() {
        let g = gen::path(6);
        let cds = greedy_mcds(&g);
        assert!(verify_cds(&g, &cds).is_ok());
        let members = mask_to_vec(&cds);
        assert!(members.len() <= 4, "path interior suffices: {members:?}");
    }

    #[test]
    fn greedy_mcds_on_complete_graph_is_a_single_vertex() {
        let g = gen::complete(6);
        let cds = greedy_mcds(&g);
        assert_eq!(cds.iter().filter(|&&b| b).count(), 1);
    }

    #[test]
    fn greedy_mcds_singleton() {
        assert_eq!(greedy_mcds(&Graph::new(1)), vec![true]);
    }

    #[test]
    #[should_panic]
    fn greedy_mcds_rejects_disconnected() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        greedy_mcds(&g);
    }

    #[test]
    fn greedy_mcds_usually_beats_marking_alone() {
        // Sanity: the centralized heuristic should generally produce no more
        // gateways than the unpruned marking on dense random graphs.
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let mut wins = 0;
        for _ in 0..10 {
            let g = gen::connected_gnp(&mut rng, 40, 0.2, 8);
            let mcds = greedy_mcds(&g).iter().filter(|&&b| b).count();
            let marked = pacds_core::marking(&g).iter().filter(|&&b| b).count();
            if mcds <= marked {
                wins += 1;
            }
        }
        assert!(wins >= 8, "greedy MCDS should be smaller in most trials");
    }
}
