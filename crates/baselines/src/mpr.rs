//! Multipoint-relay (MPR) based CDS — the OLSR-style baseline.
//!
//! Each host greedily selects a minimal set of neighbours (its *multipoint
//! relays*) that covers its 2-hop neighbourhood. The Adjih–Jacquet–Viennot
//! rule then extracts a connected dominating set:
//!
//! a host `v` joins the CDS iff
//! 1. `v` has the smallest id in its closed neighbourhood, **or**
//! 2. `v` is a multipoint relay of its smallest-id neighbour.
//!
//! Like the marking process this uses only 2-hop information, making it a
//! natural contemporary baseline for the paper's rules.

use pacds_graph::{Graph, NodeId, VertexMask};

/// Greedy multipoint-relay selection for `v`: the smallest (greedy) subset
/// of `N(v)` covering every strict 2-hop neighbour of `v`.
///
/// Classic heuristic: first take neighbours that are the *only* cover of
/// some 2-hop host, then repeatedly take the neighbour covering the most
/// uncovered 2-hop hosts (ties to the higher degree, then smaller id).
pub fn mpr_set(g: &Graph, v: NodeId) -> Vec<NodeId> {
    let n1 = g.neighbors(v);
    // Strict 2-hop neighbourhood: reachable via a neighbour, not v itself,
    // not a direct neighbour.
    let mut in_n1 = vec![false; g.n()];
    for &u in n1 {
        in_n1[u as usize] = true;
    }
    let mut two_hop: Vec<NodeId> = Vec::new();
    let mut seen = vec![false; g.n()];
    for &u in n1 {
        for &w in g.neighbors(u) {
            if w != v && !in_n1[w as usize] && !seen[w as usize] {
                seen[w as usize] = true;
                two_hop.push(w);
            }
        }
    }
    if two_hop.is_empty() {
        return Vec::new();
    }

    let mut covered = vec![false; g.n()];
    let mut uncovered = two_hop.len();
    let mut relays: Vec<NodeId> = Vec::new();
    let mut chosen = vec![false; g.n()];

    let cover_with = |u: NodeId,
                          covered: &mut Vec<bool>,
                          uncovered: &mut usize,
                          relays: &mut Vec<NodeId>,
                          chosen: &mut Vec<bool>| {
        if chosen[u as usize] {
            return;
        }
        chosen[u as usize] = true;
        relays.push(u);
        for &w in g.neighbors(u) {
            if seen[w as usize] && !covered[w as usize] {
                covered[w as usize] = true;
                *uncovered -= 1;
            }
        }
    };

    // Mandatory relays: sole covers of some 2-hop host.
    for &w in &two_hop {
        let mut covers = n1.iter().copied().filter(|&u| g.has_edge(u, w));
        if let (Some(only), None) = (covers.next(), covers.next()) {
            cover_with(only, &mut covered, &mut uncovered, &mut relays, &mut chosen);
        }
    }

    // Greedy completion.
    while uncovered > 0 {
        let best = n1
            .iter()
            .copied()
            .filter(|&u| !chosen[u as usize])
            .max_by_key(|&u| {
                let gain = g
                    .neighbors(u)
                    .iter()
                    .filter(|&&w| seen[w as usize] && !covered[w as usize])
                    .count();
                (gain, g.degree(u), std::cmp::Reverse(u))
            })
            .expect("two-hop hosts are reachable through some neighbour");
        cover_with(best, &mut covered, &mut uncovered, &mut relays, &mut chosen);
    }
    relays.sort_unstable();
    relays
}

/// The Adjih–Jacquet–Viennot MPR-based CDS.
pub fn mpr_cds(g: &Graph) -> VertexMask {
    let n = g.n();
    let mut cds = vec![false; n];
    // Precompute each host's MPR set.
    let mprs: Vec<Vec<NodeId>> = (0..n as NodeId).map(|v| mpr_set(g, v)).collect();
    for v in 0..n as NodeId {
        let min_nbr = g.neighbors(v).iter().copied().min();
        // Rule 1: smallest id in the closed neighbourhood.
        let smallest = min_nbr.is_none_or(|m| v < m);
        if smallest {
            cds[v as usize] = true;
            continue;
        }
        // Rule 2: MPR of its smallest-id neighbour.
        let smallest_nbr = min_nbr.expect("non-smallest host has a neighbour");
        if mprs[smallest_nbr as usize].contains(&v) {
            cds[v as usize] = true;
        }
    }
    cds
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacds_core::verify_cds;
    use pacds_graph::{gen, mask_to_vec};
    use rand::SeedableRng;

    #[test]
    fn mpr_set_covers_two_hop_neighbors() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        for _ in 0..20 {
            let g = gen::connected_gnp(&mut rng, 25, 0.12, 8);
            for v in 0..g.n() as NodeId {
                let relays = mpr_set(&g, v);
                // Every strict 2-hop host must be adjacent to some relay.
                let n1: Vec<NodeId> = g.neighbors(v).to_vec();
                for w in 0..g.n() as NodeId {
                    if w == v || n1.contains(&w) {
                        continue;
                    }
                    let two_hop = n1.iter().any(|&u| g.has_edge(u, w));
                    if two_hop {
                        assert!(
                            relays.iter().any(|&r| g.has_edge(r, w)),
                            "v={v} w={w} uncovered by {relays:?}"
                        );
                    }
                }
                // Relays are neighbours of v.
                assert!(relays.iter().all(|&r| g.has_edge(v, r)));
            }
        }
    }

    #[test]
    fn mpr_set_of_a_path_interior() {
        let g = gen::path(5);
        // Node 2's 2-hop hosts are 0 and 4; both neighbours are mandatory.
        assert_eq!(mpr_set(&g, 2), vec![1, 3]);
        // Endpoints have a single 2-hop host via their only neighbour.
        assert_eq!(mpr_set(&g, 0), vec![1]);
    }

    #[test]
    fn star_center_needs_no_relays() {
        let g = gen::star(6);
        assert!(mpr_set(&g, 0).is_empty());
        // Leaves relay through the centre.
        assert_eq!(mpr_set(&g, 3), vec![0]);
    }

    #[test]
    fn mpr_cds_is_a_cds_on_random_connected_graphs() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        for trial in 0..30 {
            let n = 5 + trial % 35;
            let g = gen::connected_gnp(&mut rng, n, 0.15, 8);
            let cds = mpr_cds(&g);
            assert!(verify_cds(&g, &cds).is_ok(), "trial {trial}: {g:?}");
        }
    }

    #[test]
    fn mpr_cds_on_unit_disks() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let bounds = pacds_geom::Rect::paper_arena();
        for _ in 0..10 {
            let pts = pacds_geom::placement::uniform_points(&mut rng, bounds, 50);
            let full = gen::unit_disk(bounds, 25.0, &pts);
            let keep = pacds_graph::algo::largest_component(&full);
            let (g, _) = full.induced(&keep);
            if g.n() < 3 {
                continue;
            }
            let cds = mpr_cds(&g);
            assert!(verify_cds(&g, &cds).is_ok());
        }
    }

    #[test]
    fn mpr_cds_of_complete_graph_is_the_smallest_id() {
        let g = gen::complete(5);
        assert_eq!(mask_to_vec(&mpr_cds(&g)), vec![0]);
    }

    #[test]
    fn isolated_vertices_join_the_set() {
        let g = pacds_graph::Graph::new(3);
        // Each isolated vertex is trivially smallest in its neighbourhood.
        assert_eq!(mpr_cds(&g), vec![true, true, true]);
    }
}
