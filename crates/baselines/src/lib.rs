//! Classical CDS and clustering baselines.
//!
//! The paper's introduction positions the marking process against several
//! earlier approaches; these implementations make those comparisons
//! runnable:
//!
//! * [`greedy_dominating_set`] — the classical greedy set-cover heuristic
//!   for plain (possibly disconnected-induced) dominating sets.
//! * [`greedy_mcds`] — a Guha–Khuller-style growth heuristic that produces
//!   a *connected* dominating set by repeatedly expanding from the highest
//!   white-degree vertex (the style of centralized algorithm used by
//!   backbone/spine routing, e.g. Das et al.).
//! * [`lowest_id_clusters`] — Gerla-style lowest-ID clustering
//!   (cluster-based routing); [`cluster_gateways`] extracts the
//!   clusterhead + border-node overlay it induces.
//! * [`mpr_cds`] — the OLSR-style multipoint-relay CDS
//!   (Adjih–Jacquet–Viennot), another 2-hop-local contemporary.

pub mod cluster;
pub mod greedy;
pub mod mpr;

pub use cluster::{cluster_gateways, lowest_id_clusters, Clustering};
pub use greedy::{greedy_dominating_set, greedy_mcds};
pub use mpr::{mpr_cds, mpr_set};
