//! Human-readable explanations of gateway decisions.
//!
//! Debugging a CDS policy usually starts with "why is host 17 (not) a
//! gateway?". [`explain`] answers that for the simultaneous single-pass
//! pipeline, naming the witnesses: the unconnected neighbour pair that
//! marked the host, the covering host of Rule 1, or the covering pair of
//! Rule 2.

use crate::pipeline::{Application, CdsConfig, CdsInput, PruneSchedule};
use crate::priority::PriorityKey;
use crate::rules::{rule1_pass, Rule2Semantics};
use pacds_graph::{Graph, NeighborBitmap, NodeId};
use serde::Serialize;

/// Why a host ended up with its gateway/non-gateway status.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum Explanation {
    /// Never marked: every pair of neighbours is directly connected
    /// (shown: the neighbour list).
    NotMarked {
        /// The host's neighbours.
        neighbors: Vec<NodeId>,
    },
    /// Marked and survived all rules; `witness` is an unconnected
    /// neighbour pair that justified the marking.
    Gateway {
        /// Two neighbours of the host with no direct link.
        witness: (NodeId, NodeId),
    },
    /// Unmarked by Rule 1: `by`'s closed neighbourhood covers the host's
    /// and `by` has higher priority.
    RemovedByRule1 {
        /// The covering, higher-priority marked neighbour.
        by: NodeId,
    },
    /// Unmarked by Rule 2: the pair's open neighbourhoods cover the
    /// host's.
    RemovedByRule2 {
        /// The covering marked neighbour pair.
        by: (NodeId, NodeId),
    },
}

/// Explains host `v`'s status under `cfg`.
///
/// # Panics
/// Panics for sequential or fixpoint configurations (their decisions are
/// order-dependent and have no single-witness explanation) and for
/// out-of-range `v`.
pub fn explain(input: &CdsInput<'_>, cfg: &CdsConfig, v: NodeId) -> Explanation {
    assert_eq!(cfg.application, Application::Simultaneous);
    assert_eq!(cfg.schedule, PruneSchedule::SinglePass);
    let g = input.graph;
    assert!((v as usize) < g.n(), "host {v} out of range");

    // Stage 0: marking witness.
    let witness = marking_witness(g, v);
    let Some(witness) = witness else {
        return Explanation::NotMarked {
            neighbors: g.neighbors(v).to_vec(),
        };
    };
    if !cfg.policy.prunes() {
        return Explanation::Gateway { witness };
    }

    let marked = crate::marking(g);
    let bm = NeighborBitmap::build(g);
    let key = PriorityKey::build(cfg.policy, g, input.energy);

    // Stage 1: Rule 1 witness against the marking snapshot.
    if let Some(&by) = g
        .neighbors(v)
        .iter()
        .find(|&&u| marked[u as usize] && key.lt(v, u) && bm.closed_subset(v, u))
    {
        return Explanation::RemovedByRule1 { by };
    }

    // Stage 2: Rule 2 witness against the post-Rule-1 snapshot.
    let semantics = match cfg.policy {
        crate::Policy::Id => Rule2Semantics::MinOfThree,
        _ => cfg.rule2,
    };
    let after1 = rule1_pass(g, &bm, &marked, &key, None);
    if after1[v as usize] {
        let marked_nbrs: Vec<NodeId> = g
            .neighbors(v)
            .iter()
            .copied()
            .filter(|&u| after1[u as usize])
            .collect();
        for (i, &u) in marked_nbrs.iter().enumerate() {
            for &w in &marked_nbrs[i + 1..] {
                if !bm.open_subset_pair(v, u, w) {
                    continue;
                }
                let fires = match semantics {
                    Rule2Semantics::MinOfThree => key.lt(v, u) && key.lt(v, w),
                    Rule2Semantics::CaseAnalysis => {
                        let cu = bm.open_subset_pair(u, v, w);
                        let cw = bm.open_subset_pair(w, v, u);
                        match (cu, cw) {
                            (false, false) => true,
                            (true, false) => key.lt(v, u),
                            (false, true) => key.lt(v, w),
                            (true, true) => key.lt(v, u) && key.lt(v, w),
                        }
                    }
                };
                if fires {
                    return Explanation::RemovedByRule2 { by: (u, w) };
                }
            }
        }
        return Explanation::Gateway { witness };
    }

    // v was removed in Rule 1 — but we found no witness above; impossible
    // because the witness search mirrors rule1_pass exactly.
    unreachable!("rule1_pass removed {v} but no witness was found");
}

/// An unconnected neighbour pair of `v`, if any (the marking witness).
fn marking_witness(g: &Graph, v: NodeId) -> Option<(NodeId, NodeId)> {
    let nbrs = g.neighbors(v);
    for (i, &x) in nbrs.iter().enumerate() {
        for &y in &nbrs[i + 1..] {
            if !g.has_edge(x, y) {
                return Some((x, y));
            }
        }
    }
    None
}

impl std::fmt::Display for Explanation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Explanation::NotMarked { neighbors } => write!(
                f,
                "not marked: all neighbour pairs of {neighbors:?} are directly connected"
            ),
            Explanation::Gateway { witness: (x, y) } => write!(
                f,
                "gateway: neighbours {x} and {y} have no direct link, and no rule removed it"
            ),
            Explanation::RemovedByRule1 { by } => write!(
                f,
                "removed by Rule 1: host {by} covers its closed neighbourhood with higher priority"
            ),
            Explanation::RemovedByRule2 { by: (u, w) } => write!(
                f,
                "removed by Rule 2: hosts {u} and {w} jointly cover its neighbourhood"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compute_cds, Policy};
    use pacds_graph::gen;
    use rand::SeedableRng;

    #[test]
    fn explanations_agree_with_the_computed_set() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for trial in 0..20 {
            let n = 8 + trial;
            let g = gen::connected_gnp(&mut rng, n, 0.2, 8);
            let energy: Vec<u64> = (0..n as u64).map(|i| i % 6).collect();
            for policy in Policy::ALL {
                for cfg in [CdsConfig::policy(policy), CdsConfig::paper(policy)] {
                    let input = CdsInput::with_energy(&g, &energy);
                    let cds = compute_cds(&input, &cfg);
                    for v in 0..n as NodeId {
                        let e = explain(&input, &cfg, v);
                        let is_gateway = matches!(e, Explanation::Gateway { .. });
                        assert_eq!(
                            is_gateway, cds[v as usize],
                            "trial {trial} {policy:?} v={v}: {e:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn witnesses_are_faithful() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let g = gen::connected_gnp(&mut rng, 20, 0.25, 8);
        let input = CdsInput::new(&g);
        let cfg = CdsConfig::policy(Policy::Id);
        for v in 0..20 as NodeId {
            match explain(&input, &cfg, v) {
                Explanation::NotMarked { neighbors } => {
                    for (i, &x) in neighbors.iter().enumerate() {
                        for &y in &neighbors[i + 1..] {
                            assert!(g.has_edge(x, y));
                        }
                    }
                }
                Explanation::Gateway { witness: (x, y) } => {
                    assert!(g.has_edge(v, x) && g.has_edge(v, y));
                    assert!(!g.has_edge(x, y));
                }
                Explanation::RemovedByRule1 { by } => {
                    assert!(g.closed_covered_by(v, by));
                    assert!(v < by, "ID priority: the cover has the larger id");
                }
                Explanation::RemovedByRule2 { by: (u, w) } => {
                    assert!(g.open_covered_by_pair(v, u, w));
                }
            }
        }
    }

    #[test]
    fn path_endpoints_are_not_marked() {
        let g = gen::path(4);
        let input = CdsInput::new(&g);
        let cfg = CdsConfig::policy(Policy::Id);
        assert!(matches!(
            explain(&input, &cfg, 0),
            Explanation::NotMarked { .. }
        ));
        assert!(matches!(
            explain(&input, &cfg, 1),
            Explanation::Gateway { witness: (0, 2) }
        ));
    }

    #[test]
    #[should_panic]
    fn sequential_configs_are_rejected() {
        let g = gen::path(4);
        explain(
            &CdsInput::new(&g),
            &CdsConfig::sequential(Policy::Id),
            1,
        );
    }
}
