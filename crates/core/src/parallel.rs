//! Data-parallel variants of the marking process and rule passes.
//!
//! Every per-vertex decision in the simultaneous semantics reads only the
//! input snapshot, so the sweeps are embarrassingly parallel. These
//! variants (rayon `par_iter` over vertices) return bit-identical results
//! to their sequential counterparts — property-tested — and run on any
//! [`Neighbors`] representation, CSR included. Rule 1 needs no scratch at
//! all; Rule 2's per-vertex scratch (the candidate list and row-support
//! buffer of a [`crate::RuleScratch`]) comes from per-thread scratch
//! pools (`thread_local!` state that lives as long as the rayon worker),
//! and
//! [`compute_cds_par_with`] drains its masks into a caller-owned
//! [`CdsWorkspace`] via `collect_into_vec`, so the steady state of a
//! parallel sweep allocates nothing either. Whether parallelism pays off
//! depends on the machine: the per-vertex work is small, so on few-core
//! hosts the fork-join overhead dominates even at thousands of hosts (see
//! the `parallel` criterion group in `pacds-bench`, which measures exactly
//! this). At the paper's N ≤ 100 the sequential passes are always faster;
//! treat the parallel path as an opt-in for wide machines and very dense
//! sweeps, and benchmark before switching.
//!
//! The sequential in-place sweep ([`crate::Application::Sequential`]) has
//! no parallel form: its loop carries a dependency.

use crate::marking::has_unconnected_neighbors;
use crate::priority::{EnergyLevel, PriorityKey};
use crate::rules::{
    fill_rule2_candidates, rule2_decides_removal, Rule2Semantics, Rule2Tally, RuleScratch,
};
use crate::workspace::CdsWorkspace;
use crate::CdsConfig;
use pacds_graph::{NeighborBitmap, Neighbors, NodeId, VertexMask};
use rayon::prelude::*;
use std::cell::RefCell;

thread_local! {
    /// Per-thread rule scratch (candidate list + row-support buffer) for
    /// the parallel Rule 2 pass. Rayon worker threads are long-lived, so
    /// each pool warms up once and is reused by every vertex that thread
    /// processes.
    static RULE_SCRATCH: RefCell<RuleScratch> = RefCell::new(RuleScratch::new());
}

/// Parallel marking process; equals [`crate::marking`].
pub fn marking_par<G: Neighbors + Sync + ?Sized>(g: &G) -> VertexMask {
    let mut out = Vec::new();
    marking_par_into(g, &mut out);
    out
}

/// [`marking_par`] writing into a caller-provided mask (reused storage).
pub fn marking_par_into<G: Neighbors + Sync + ?Sized>(g: &G, out: &mut VertexMask) {
    (0..g.n() as NodeId)
        .into_par_iter()
        .map(|v| {
            pacds_obs::par_tick(1);
            has_unconnected_neighbors(g, v)
        })
        .collect_into_vec(out);
}

/// Parallel simultaneous Rule 1 pass; equals [`crate::rule1_pass`] modulo
/// the removal log.
pub fn rule1_pass_par<G: Neighbors + Sync + ?Sized>(
    g: &G,
    bm: &NeighborBitmap,
    marked: &[bool],
    key: &PriorityKey,
) -> VertexMask {
    let mut out = Vec::new();
    rule1_pass_par_into(g, bm, marked, key, &mut out);
    out
}

/// [`rule1_pass_par`] writing into a caller-provided mask.
pub fn rule1_pass_par_into<G: Neighbors + Sync + ?Sized>(
    g: &G,
    bm: &NeighborBitmap,
    marked: &[bool],
    key: &PriorityKey,
    out: &mut VertexMask,
) {
    (0..g.n() as NodeId)
        .into_par_iter()
        .map(|v| {
            pacds_obs::par_tick(1);
            if !marked[v as usize] {
                return false;
            }
            let dv = g.neighbors(v).len();
            let witness = g.neighbors(v).iter().copied().min().unwrap_or(v);
            !g.neighbors(v).iter().any(|&u| {
                marked[u as usize]
                    && g.neighbors(u).len() >= dv
                    && key.lt(v, u)
                    && (witness == u || bm.contains(witness, u))
                    && bm.closed_subset(v, u)
            })
        })
        .collect_into_vec(out);
}

/// Parallel simultaneous Rule 2 pass; equals [`crate::rule2_pass`] modulo
/// the removal log.
pub fn rule2_pass_par<G: Neighbors + Sync + ?Sized>(
    g: &G,
    bm: &NeighborBitmap,
    marked: &[bool],
    key: &PriorityKey,
    semantics: Rule2Semantics,
) -> VertexMask {
    let mut out = Vec::new();
    rule2_pass_par_into(g, bm, marked, key, semantics, &mut out);
    out
}

/// [`rule2_pass_par`] writing into a caller-provided mask. The
/// marked-neighbour list each vertex needs comes from the thread-local
/// scratch pool, not a fresh allocation per vertex.
pub fn rule2_pass_par_into<G: Neighbors + Sync + ?Sized>(
    g: &G,
    bm: &NeighborBitmap,
    marked: &[bool],
    key: &PriorityKey,
    semantics: Rule2Semantics,
    out: &mut VertexMask,
) {
    (0..g.n() as NodeId)
        .into_par_iter()
        .map(|v| {
            pacds_obs::par_tick(1);
            if !marked[v as usize] {
                return false;
            }
            RULE_SCRATCH.with(|cell| {
                let scratch = &mut *cell.borrow_mut();
                if !fill_rule2_candidates(g, marked, key, semantics, v, &mut scratch.nbrs) {
                    return true;
                }
                let mut tally = Rule2Tally::default();
                let keep = !rule2_decides_removal(bm, key, semantics, v, scratch, &mut tally);
                tally.flush();
                keep
            })
        })
        .collect_into_vec(out);
}

/// End-to-end parallel pipeline (marking → Rule 1 → Rule 2), equal to
/// [`crate::compute_cds`] for simultaneous single-pass configurations.
pub fn compute_cds_par<G: Neighbors + Sync + ?Sized>(
    g: &G,
    energy: Option<&[EnergyLevel]>,
    cfg: &CdsConfig,
) -> VertexMask {
    let mut ws = CdsWorkspace::new();
    compute_cds_par_with(g, energy, cfg, &mut ws);
    std::mem::take(&mut ws.after2)
}

/// [`compute_cds_par`] against a caller-owned [`CdsWorkspace`]: the bitmap,
/// priority table, and all masks come from (and stay in) the workspace, so
/// repeated parallel sweeps at a fixed size allocate nothing. The result is
/// also readable via [`CdsWorkspace::gateways`] afterwards.
///
/// # Panics
/// Panics unless `cfg` uses simultaneous application with the single-pass
/// schedule (the only configuration with a data-parallel form).
pub fn compute_cds_par_with<'ws, G: Neighbors + Sync + ?Sized>(
    g: &G,
    energy: Option<&[EnergyLevel]>,
    cfg: &CdsConfig,
    ws: &'ws mut CdsWorkspace,
) -> &'ws VertexMask {
    assert_eq!(cfg.application, crate::Application::Simultaneous);
    assert_eq!(cfg.schedule, crate::PruneSchedule::SinglePass);
    marking_par_into(g, &mut ws.marked);
    ws.removed1.clear();
    ws.removed2.clear();
    ws.rounds = 0;
    if !cfg.policy.prunes() {
        ws.after1.clone_from(&ws.marked);
        ws.after2.clone_from(&ws.marked);
        return &ws.after2;
    }
    ws.bm.rebuild_into(g);
    ws.key.rebuild(cfg.policy, g, energy);
    let semantics = cfg.rule2_semantics();
    rule1_pass_par_into(g, &ws.bm, &ws.marked, &ws.key, &mut ws.after1);
    rule2_pass_par_into(g, &ws.bm, &ws.after1, &ws.key, semantics, &mut ws.after2);
    ws.rounds = 1;
    &ws.after2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compute_cds, CdsConfig, CdsInput, Policy};
    use pacds_graph::{gen, CsrGraph};
    use rand::SeedableRng;

    #[test]
    fn parallel_marking_equals_sequential() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for n in [0usize, 1, 10, 100, 500] {
            let g = gen::gnp(&mut rng, n, 0.1);
            assert_eq!(marking_par(&g), crate::marking(&g), "n={n}");
        }
    }

    #[test]
    fn parallel_pipeline_equals_sequential_for_every_policy() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for trial in 0..15 {
            let n = 20 + trial * 10;
            let g = gen::connected_gnp(&mut rng, n, 0.08, 8);
            let energy: Vec<u64> = (0..n as u64).map(|i| (i * 31) % 10).collect();
            for policy in Policy::ALL {
                for cfg in [CdsConfig::policy(policy), CdsConfig::paper(policy)] {
                    let seq = compute_cds(&CdsInput::with_energy(&g, &energy), &cfg);
                    let par = compute_cds_par(&g, Some(&energy), &cfg);
                    assert_eq!(seq, par, "trial {trial} {policy:?} {cfg:?}");
                }
            }
        }
    }

    #[test]
    fn parallel_pipeline_on_unit_disks() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let bounds = pacds_geom::Rect::square(300.0);
        let pts = pacds_geom::placement::uniform_points(&mut rng, bounds, 800);
        let g = gen::unit_disk(bounds, 25.0, &pts);
        let energy: Vec<u64> = (0..800u64).map(|i| i % 10).collect();
        let cfg = CdsConfig::policy(Policy::EnergyDegree);
        assert_eq!(
            compute_cds(&CdsInput::with_energy(&g, &energy), &cfg),
            compute_cds_par(&g, Some(&energy), &cfg)
        );
    }

    #[test]
    fn workspace_variant_reuses_buffers_and_matches() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let mut ws = CdsWorkspace::new();
        for n in [30usize, 120, 60] {
            let g = gen::gnp(&mut rng, n, 0.1);
            let csr = CsrGraph::from(&g);
            let cfg = CdsConfig::policy(Policy::Degree);
            let seq = compute_cds(&CdsInput::new(&g), &cfg);
            let par = compute_cds_par_with(&csr, None, &cfg, &mut ws).clone();
            assert_eq!(seq, par, "n={n}");
            assert_eq!(ws.gateways(), &seq);
        }
    }

    #[test]
    #[should_panic]
    fn sequential_application_rejected() {
        let g = gen::path(4);
        compute_cds_par(&g, None, &CdsConfig::sequential(Policy::Id));
    }
}
