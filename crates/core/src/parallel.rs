//! Data-parallel variants of the marking process and rule passes.
//!
//! Every per-vertex decision in the simultaneous semantics reads only the
//! input snapshot, so the sweeps are embarrassingly parallel. These
//! variants (rayon `par_iter` over vertices) return bit-identical results
//! to their sequential counterparts — property-tested. Whether they pay
//! off depends on the machine: the per-vertex work is small, so on
//! few-core hosts the fork-join overhead dominates even at thousands of
//! hosts (see the `parallel` criterion group in `pacds-bench`, which
//! measures exactly this). At the paper's N ≤ 100 the sequential passes
//! are always faster; treat the parallel path as an opt-in for wide
//! machines and very dense sweeps, and benchmark before switching.
//!
//! The sequential in-place sweep ([`crate::Application::Sequential`]) has
//! no parallel form: its loop carries a dependency.

use crate::marking::has_unconnected_neighbors;
use crate::priority::PriorityKey;
use crate::rules::{rule2_decides_removal, Rule2Semantics};
use pacds_graph::{Graph, NeighborBitmap, NodeId, VertexMask};
use rayon::prelude::*;

/// Parallel marking process; equals [`crate::marking`].
pub fn marking_par(g: &Graph) -> VertexMask {
    (0..g.n() as NodeId)
        .into_par_iter()
        .map(|v| has_unconnected_neighbors(g, v))
        .collect()
}

/// Parallel simultaneous Rule 1 pass; equals [`crate::rule1_pass`] modulo
/// the removal log.
pub fn rule1_pass_par(
    g: &Graph,
    bm: &NeighborBitmap,
    marked: &[bool],
    key: &PriorityKey,
) -> VertexMask {
    (0..g.n() as NodeId)
        .into_par_iter()
        .map(|v| {
            marked[v as usize]
                && !g
                    .neighbors(v)
                    .iter()
                    .any(|&u| marked[u as usize] && key.lt(v, u) && bm.closed_subset(v, u))
        })
        .collect()
}

/// Parallel simultaneous Rule 2 pass; equals [`crate::rule2_pass`] modulo
/// the removal log.
pub fn rule2_pass_par(
    g: &Graph,
    bm: &NeighborBitmap,
    marked: &[bool],
    key: &PriorityKey,
    semantics: Rule2Semantics,
) -> VertexMask {
    (0..g.n() as NodeId)
        .into_par_iter()
        .map(|v| {
            if !marked[v as usize] {
                return false;
            }
            let marked_nbrs: Vec<NodeId> = g
                .neighbors(v)
                .iter()
                .copied()
                .filter(|&u| marked[u as usize])
                .collect();
            if marked_nbrs.len() < 2 {
                return true;
            }
            !rule2_decides_removal(bm, key, semantics, v, &marked_nbrs)
        })
        .collect()
}

/// End-to-end parallel pipeline (marking → Rule 1 → Rule 2), equal to
/// [`crate::compute_cds`] for simultaneous single-pass configurations.
pub fn compute_cds_par(
    g: &Graph,
    energy: Option<&[crate::EnergyLevel]>,
    cfg: &crate::CdsConfig,
) -> VertexMask {
    assert_eq!(cfg.application, crate::Application::Simultaneous);
    assert_eq!(cfg.schedule, crate::PruneSchedule::SinglePass);
    let marked = marking_par(g);
    if !cfg.policy.prunes() {
        return marked;
    }
    let bm = NeighborBitmap::build(g);
    let key = PriorityKey::build(cfg.policy, g, energy);
    let semantics = match cfg.policy {
        crate::Policy::Id => Rule2Semantics::MinOfThree,
        _ => cfg.rule2,
    };
    let after1 = rule1_pass_par(g, &bm, &marked, &key);
    rule2_pass_par(g, &bm, &after1, &key, semantics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compute_cds, CdsConfig, CdsInput, Policy};
    use pacds_graph::gen;
    use rand::SeedableRng;

    #[test]
    fn parallel_marking_equals_sequential() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for n in [0usize, 1, 10, 100, 500] {
            let g = gen::gnp(&mut rng, n, 0.1);
            assert_eq!(marking_par(&g), crate::marking(&g), "n={n}");
        }
    }

    #[test]
    fn parallel_pipeline_equals_sequential_for_every_policy() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for trial in 0..15 {
            let n = 20 + trial * 10;
            let g = gen::connected_gnp(&mut rng, n, 0.08, 8);
            let energy: Vec<u64> = (0..n as u64).map(|i| (i * 31) % 10).collect();
            for policy in Policy::ALL {
                for cfg in [CdsConfig::policy(policy), CdsConfig::paper(policy)] {
                    let seq = compute_cds(&CdsInput::with_energy(&g, &energy), &cfg);
                    let par = compute_cds_par(&g, Some(&energy), &cfg);
                    assert_eq!(seq, par, "trial {trial} {policy:?} {cfg:?}");
                }
            }
        }
    }

    #[test]
    fn parallel_pipeline_on_unit_disks() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let bounds = pacds_geom::Rect::square(300.0);
        let pts = pacds_geom::placement::uniform_points(&mut rng, bounds, 800);
        let g = gen::unit_disk(bounds, 25.0, &pts);
        let energy: Vec<u64> = (0..800u64).map(|i| i % 10).collect();
        let cfg = CdsConfig::policy(Policy::EnergyDegree);
        assert_eq!(
            compute_cds(&CdsInput::with_energy(&g, &energy), &cfg),
            compute_cds_par(&g, Some(&energy), &cfg)
        );
    }

    #[test]
    #[should_panic]
    fn sequential_application_rejected() {
        let g = gen::path(4);
        compute_cds_par(&g, None, &CdsConfig::sequential(Policy::Id));
    }
}
