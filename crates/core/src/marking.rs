//! The Wu-Li marking process.

use pacds_graph::{Neighbors, NodeId, VertexMask};

/// Runs the marking process on `g` and returns the marker mask.
///
/// ```
/// use pacds_graph::gen;
/// // On a path, every interior host has two unconnected neighbours.
/// let g = gen::path(5);
/// assert_eq!(pacds_core::marking(&g), vec![false, true, true, true, false]);
/// ```
///
/// A vertex `v` is marked (`true`) iff it has two neighbours `x, y` that are
/// not directly connected. This is the distributed Step 3 of the process;
/// Steps 1–2 (initialising markers and exchanging open neighbour sets) are
/// implicit here because a centralised caller already has the whole graph —
/// the faithful message-passing version lives in `pacds-distributed`.
///
/// The paper's Property 1 guarantees the marked set dominates any connected
/// graph that is not complete; Property 2 guarantees the induced subgraph is
/// connected. (On a complete graph nothing is marked: every pair of
/// neighbours is connected.)
pub fn marking<G: Neighbors + ?Sized>(g: &G) -> VertexMask {
    let mut marked = Vec::new();
    marking_into(g, &mut marked);
    marked
}

/// [`marking`] writing into a caller-provided mask (cleared and refilled),
/// so the hot path can reuse the allocation across update intervals.
pub fn marking_into<G: Neighbors + ?Sized>(g: &G, marked: &mut VertexMask) {
    let _t = pacds_obs::phase_timer(pacds_obs::Phase::Marking);
    marked.clear();
    marked.extend(g.vertices().map(|v| has_unconnected_neighbors(g, v)));
    if pacds_obs::enabled() {
        pacds_obs::add(pacds_obs::Counter::MarkingScanned, marked.len() as u64);
        let hits = marked.iter().filter(|&&m| m).count() as u64;
        pacds_obs::add(pacds_obs::Counter::MarkingMarked, hits);
    }
}

/// Whether `v` has two neighbours that are not adjacent to each other.
///
/// Scans neighbour pairs but bails out on the first witness; for unit-disk
/// graphs the first few pairs almost always decide, so the quadratic worst
/// case is rarely reached.
pub fn has_unconnected_neighbors<G: Neighbors + ?Sized>(g: &G, v: NodeId) -> bool {
    let nbrs = g.neighbors(v);
    for (i, &x) in nbrs.iter().enumerate() {
        for &y in &nbrs[i + 1..] {
            if !g.has_edge(x, y) {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacds_graph::{gen, mask_to_vec, Graph};

    #[test]
    fn figure1_marks_v_and_w() {
        // u=0, v=1, w=2, x=3, y=4; edges u-v, u-y, v-w, v-y, w-x.
        let g = Graph::from_edges(5, &[(0, 1), (0, 4), (1, 2), (1, 4), (2, 3)]);
        assert_eq!(mask_to_vec(&marking(&g)), vec![1, 2]);
    }

    #[test]
    fn complete_graph_marks_nothing() {
        for n in [1usize, 2, 3, 6] {
            let g = gen::complete(n);
            assert!(marking(&g).iter().all(|&m| !m), "K_{n}");
        }
    }

    #[test]
    fn path_marks_interior_vertices() {
        let g = gen::path(6);
        assert_eq!(mask_to_vec(&marking(&g)), vec![1, 2, 3, 4]);
    }

    #[test]
    fn cycle_marks_everything() {
        let g = gen::cycle(5);
        assert!(marking(&g).iter().all(|&m| m));
    }

    #[test]
    fn square_cycle_marks_everything() {
        // C4: each vertex's two neighbours are opposite, non-adjacent.
        let g = gen::cycle(4);
        assert!(marking(&g).iter().all(|&m| m));
    }

    #[test]
    fn star_marks_only_the_center() {
        let g = gen::star(7);
        assert_eq!(mask_to_vec(&marking(&g)), vec![0]);
    }

    #[test]
    fn isolated_and_degree_one_vertices_are_never_marked() {
        let g = Graph::from_edges(4, &[(0, 1)]);
        assert!(marking(&g).iter().all(|&m| !m));
    }

    #[test]
    fn witness_detection() {
        let g = gen::path(3);
        assert!(has_unconnected_neighbors(&g, 1));
        assert!(!has_unconnected_neighbors(&g, 0));
        let k3 = gen::complete(3);
        for v in 0..3 {
            assert!(!has_unconnected_neighbors(&k3, v));
        }
    }
}
