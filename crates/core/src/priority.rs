//! Node priorities for the selective-removal rules.
//!
//! Every rule variant in the paper removes the node with the *lower*
//! priority under a lexicographic key:
//!
//! * `Id`            — `(id)`                      (original Rules 1/2)
//! * `Degree` (ND)   — `(degree, id)`              (Rules 1a/2a)
//! * `Energy` (EL1)  — `(energy, id)`              (Rules 1b/2b)
//! * `EnergyDegree`  — `(energy, degree, id)`      (Rules 1b'/2b')
//!
//! Because node ids are distinct, every policy induces a strict total
//! order; this is what makes simultaneous rule application safe (exactly
//! one node of a coverage-equivalent pair removes itself).

use pacds_graph::{Neighbors, NodeId};
use serde::{Deserialize, Serialize};

/// Discrete energy level, as the rules compare it.
///
/// The paper keeps host energy on "multiple discrete levels"; the energy
/// crate quantises the continuous battery into this integer before the rules
/// run, so priority comparisons are exact and platform-independent.
pub type EnergyLevel = u64;

/// Which rule family (equivalently, which priority order) to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Policy {
    /// Marking process only — no selective removal ("NR" in the figures).
    NoPruning,
    /// Original Rules 1 and 2, node-id priority ("ID").
    Id,
    /// Rules 1a and 2a, node-degree priority with id tie-break ("ND").
    Degree,
    /// Rules 1b and 2b, energy-level priority with id tie-break ("EL1").
    Energy,
    /// Rules 1b' and 2b', energy-level priority with degree then id
    /// tie-breaks ("EL2").
    EnergyDegree,
}

impl Policy {
    /// All policies, in the order the paper's figures list them.
    pub const ALL: [Policy; 5] = [
        Policy::NoPruning,
        Policy::Id,
        Policy::Degree,
        Policy::Energy,
        Policy::EnergyDegree,
    ];

    /// The figure legend label used in the paper ("NR", "ID", "ND", "EL1",
    /// "EL2").
    pub fn label(&self) -> &'static str {
        match self {
            Policy::NoPruning => "NR",
            Policy::Id => "ID",
            Policy::Degree => "ND",
            Policy::Energy => "EL1",
            Policy::EnergyDegree => "EL2",
        }
    }

    /// Whether this policy's priority consults the hosts' energy levels.
    pub fn needs_energy(&self) -> bool {
        matches!(self, Policy::Energy | Policy::EnergyDegree)
    }

    /// Whether any pruning rules run at all.
    pub fn prunes(&self) -> bool {
        !matches!(self, Policy::NoPruning)
    }
}

impl std::fmt::Display for Policy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A materialised priority table: `key(v)` compares lexicographically, and
/// smaller keys are removed first.
#[derive(Debug, Clone, Default)]
pub struct PriorityKey {
    keys: Vec<[u64; 3]>,
}

impl PriorityKey {
    /// An empty table; a reusable slot for [`PriorityKey::rebuild`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the key table for `policy` over graph `g`.
    ///
    /// `energy[v]` must be provided (same length as `g.n()`) for the
    /// energy-aware policies and is ignored otherwise.
    ///
    /// # Panics
    /// Panics if `policy.needs_energy()` and `energy` is `None` or of the
    /// wrong length.
    pub fn build<G: Neighbors + ?Sized>(
        policy: Policy,
        g: &G,
        energy: Option<&[EnergyLevel]>,
    ) -> Self {
        let mut key = Self::new();
        key.rebuild(policy, g, energy);
        key
    }

    /// Recomputes the table in place, reusing the key storage (allocation
    /// free once warm). Same contract as [`PriorityKey::build`].
    pub fn rebuild<G: Neighbors + ?Sized>(
        &mut self,
        policy: Policy,
        g: &G,
        energy: Option<&[EnergyLevel]>,
    ) {
        let n = g.n();
        if policy.needs_energy() {
            let e = energy.expect("energy-aware policy requires energy levels");
            assert_eq!(e.len(), n, "energy table length must equal n");
        }
        self.keys.clear();
        self.keys.extend((0..n as NodeId).map(|v| {
            let id = v as u64;
            let nd = g.degree(v) as u64;
            let el = energy.map_or(0, |e| e[v as usize]);
            match policy {
                Policy::NoPruning | Policy::Id => [id, 0, 0],
                Policy::Degree => [nd, id, 0],
                Policy::Energy => [el, id, 0],
                Policy::EnergyDegree => [el, nd, id],
            }
        }));
    }

    /// The lexicographic key of `v`.
    #[inline]
    pub fn key(&self, v: NodeId) -> [u64; 3] {
        self.keys[v as usize]
    }

    /// Whether `a` has strictly lower priority than `b`.
    #[inline]
    pub fn lt(&self, a: NodeId, b: NodeId) -> bool {
        self.keys[a as usize] < self.keys[b as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacds_graph::gen;

    #[test]
    fn labels_match_the_figures() {
        let labels: Vec<_> = Policy::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(labels, vec!["NR", "ID", "ND", "EL1", "EL2"]);
    }

    #[test]
    fn id_priority_orders_by_id() {
        let g = gen::star(4);
        let k = PriorityKey::build(Policy::Id, &g, None);
        assert!(k.lt(0, 1));
        assert!(k.lt(1, 3));
        assert!(!k.lt(3, 3));
    }

    #[test]
    fn degree_priority_orders_by_degree_then_id() {
        // star: center 0 has degree 3, leaves degree 1.
        let g = gen::star(4);
        let k = PriorityKey::build(Policy::Degree, &g, None);
        assert!(k.lt(1, 0)); // leaf < center
        assert!(k.lt(1, 2)); // same degree, id tie-break
    }

    #[test]
    fn energy_priority_orders_by_energy_then_id() {
        let g = gen::path(3);
        let k = PriorityKey::build(Policy::Energy, &g, Some(&[5, 9, 5]));
        assert!(k.lt(0, 1));
        assert!(k.lt(0, 2)); // tie on energy, id 0 < 2
        assert!(k.lt(2, 1));
    }

    #[test]
    fn energy_degree_priority_uses_all_three_levels() {
        // path 0-1-2-3: degrees 1,2,2,1
        let g = gen::path(4);
        let k = PriorityKey::build(Policy::EnergyDegree, &g, Some(&[7, 7, 7, 7]));
        assert!(k.lt(0, 1)); // same el, deg 1 < 2
        assert!(k.lt(1, 2)); // same el, same deg, id 1 < 2
        assert!(k.lt(3, 1)); // deg 1 < 2 despite id 3 > 1
    }

    #[test]
    fn priority_is_a_strict_total_order() {
        let g = gen::cycle(6);
        for policy in Policy::ALL {
            let energy = [3u64, 3, 1, 4, 1, 5];
            let k = PriorityKey::build(policy, &g, Some(&energy));
            for a in 0..6u32 {
                for b in 0..6u32 {
                    if a == b {
                        assert!(!k.lt(a, b));
                    } else {
                        assert!(k.lt(a, b) ^ k.lt(b, a), "{policy:?} {a} {b}");
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "energy-aware policy requires energy levels")]
    fn energy_policy_without_energy_panics() {
        let g = gen::path(3);
        PriorityKey::build(Policy::Energy, &g, None);
    }

    #[test]
    #[should_panic]
    fn wrong_energy_length_panics() {
        let g = gen::path(3);
        PriorityKey::build(Policy::Energy, &g, Some(&[1, 2]));
    }
}
