//! The selective-removal rules (Rule 1 and Rule 2 and all their variants).
//!
//! Both rules run *simultaneously* over a snapshot of the marked set: every
//! node evaluates its removal condition against the same input marking, and
//! all removals are applied at once. This mirrors the distributed reality —
//! each host decides from its local 2-hop view, with no global sequencing —
//! and it is safe because priorities form a strict total order (the
//! lower-priority node of any coverage-equivalent pair is uniquely
//! determined).

use crate::priority::PriorityKey;
use pacds_graph::{NeighborBitmap, Neighbors, NodeId, VertexMask};
use pacds_obs::{Counter, Phase, Tally};

/// How Rule 2 combines the coverage tests with the priority order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Rule2Semantics {
    /// The original Rule 2, generalised to any priority order: `v` unmarks
    /// iff `N(v) ⊆ N(u) ∪ N(w)` and `v` has the minimum priority among the
    /// triple.
    ///
    /// This is *provably safe* under simultaneous application for any strict
    /// total priority order (it is the pair-coverage special case of the
    /// Dai-Wu restricted rule: coverage composes — if `v` relies on a
    /// removed `u`, substituting `u`'s own higher-priority coverers yields a
    /// retained, connected cover of `v`).
    MinOfThree,
    /// The extended Rules 2a/2b/2b' exactly as the paper states them: the
    /// triple is first classified by which of `v, u, w` are covered by the
    /// other two, and the priority comparison only arbitrates among the
    /// covered ones (paper §3.1–3.2):
    ///
    /// 1. only `v` covered → `v` unmarks unconditionally;
    /// 2. `v` and one of `u, w` covered → `v` unmarks iff it has lower
    ///    priority than that one;
    /// 3. all three covered → `v` unmarks iff it has the minimum priority.
    ///
    /// **Fidelity warning:** this literal reading is *not* safe under
    /// simultaneous application. Two nodes can each justify their removal
    /// through a pair containing the other (cases 1–2 skip the priority
    /// comparison against the "uncovered" pair member), and their common
    /// neighbour loses all its dominators. See
    /// `rules::tests::paper_literal_rule2_counterexample` for a concrete
    /// 7-node graph. Violations are rare on random topologies (the paper's
    /// simulation would not have noticed); `pacds-sim` quantifies the rate.
    CaseAnalysis,
}

/// Reusable scratch for the rule passes: the candidate-neighbour list plus
/// the row-support word buffer that keeps the coverage predicates O(degree)
/// instead of O(n/64) per check (see
/// [`NeighborBitmap::row_support_into`]).
///
/// One instance serves any sequence of passes; every buffer is cleared and
/// refilled per vertex, so hot loops perform no allocation once the scratch
/// has grown to the topology's high-water mark.
#[derive(Debug, Clone, Default)]
pub struct RuleScratch {
    pub(crate) nbrs: Vec<NodeId>,
    pub(crate) support: Vec<(u32, u64)>,
}

/// Stack-local counters for one Rule 1 sweep (zero-sized when the `obs`
/// feature is off). Hot loops bump these plain `u64`s and flush into the
/// global atomics once per pass.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct Rule1Tally {
    pub(crate) candidates: Tally,
    pub(crate) prefilter_rejects: Tally,
    pub(crate) witness_probes: Tally,
    pub(crate) witness_rejects: Tally,
    pub(crate) subset_scans: Tally,
    pub(crate) unmarked: Tally,
}

impl Rule1Tally {
    pub(crate) fn flush(&mut self) {
        self.candidates.flush(Counter::Rule1Candidates);
        self.prefilter_rejects.flush(Counter::Rule1PrefilterRejects);
        self.witness_probes.flush(Counter::Rule1WitnessProbes);
        self.witness_rejects.flush(Counter::Rule1WitnessRejects);
        self.subset_scans.flush(Counter::Rule1SubsetScans);
        self.unmarked.flush(Counter::Rule1Unmarked);
    }
}

/// Stack-local counters for one Rule 2 sweep; see [`Rule1Tally`].
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct Rule2Tally {
    pub(crate) vertices: Tally,
    pub(crate) candidates: Tally,
    pub(crate) pairs: Tally,
    pub(crate) witness_rejects: Tally,
    pub(crate) coverage_scans: Tally,
    pub(crate) unmarked: Tally,
}

impl Rule2Tally {
    pub(crate) fn flush(&mut self) {
        self.vertices.flush(Counter::Rule2Vertices);
        self.candidates.flush(Counter::Rule2Candidates);
        self.pairs.flush(Counter::Rule2PairsProbed);
        self.witness_rejects.flush(Counter::Rule2WitnessRejects);
        self.coverage_scans.flush(Counter::Rule2CoverageScans);
        self.unmarked.flush(Counter::Rule2Unmarked);
    }
}

impl RuleScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-sizes every buffer for graphs of `n` vertices.
    pub fn reserve(&mut self, n: usize) {
        self.nbrs.reserve(n);
        self.support.reserve(n.div_ceil(64));
    }
}

/// One simultaneous Rule 1 pass.
///
/// A marked `v` unmarks itself when some marked `u` has `N[v] ⊆ N[u]` and
/// `v` has lower priority than `u`. Since the coverage condition implies
/// `u ∈ N(v)`, only neighbours need to be examined.
///
/// Returns the new marked mask; `removed` (if provided) collects the
/// unmarked vertices.
pub fn rule1_pass<G: Neighbors + ?Sized>(
    g: &G,
    bm: &NeighborBitmap,
    marked: &[bool],
    key: &PriorityKey,
    removed: Option<&mut Vec<NodeId>>,
) -> VertexMask {
    let mut next = Vec::new();
    rule1_pass_into(g, bm, marked, key, &mut next, removed);
    next
}

/// [`rule1_pass`] writing the result into a caller-provided mask (cleared
/// and refilled), so hot loops allocate nothing.
pub fn rule1_pass_into<G: Neighbors + ?Sized>(
    g: &G,
    bm: &NeighborBitmap,
    marked: &[bool],
    key: &PriorityKey,
    next: &mut VertexMask,
    mut removed: Option<&mut Vec<NodeId>>,
) {
    let _t = pacds_obs::phase_timer(Phase::Rule1);
    let mut tally = Rule1Tally::default();
    next.clear();
    next.extend_from_slice(marked);
    for v in g.vertices() {
        if !marked[v as usize] {
            continue;
        }
        // Two exact pre-filters keep the word scan off the common path:
        // `N[v] ⊆ N[u]` forces `deg(v) ≤ deg(u)`, and it forces `u` to
        // contain v's lowest-id neighbour (the witness) — a single bit
        // probe that rejects almost every surviving candidate.
        let dv = g.neighbors(v).len();
        let witness = g.neighbors(v).iter().copied().min().unwrap_or(v);
        for &u in g.neighbors(v) {
            tally.candidates.bump();
            if !(marked[u as usize] && g.neighbors(u).len() >= dv && key.lt(v, u)) {
                tally.prefilter_rejects.bump();
                continue;
            }
            tally.witness_probes.bump();
            if !(witness == u || bm.contains(witness, u)) {
                tally.witness_rejects.bump();
                continue;
            }
            tally.subset_scans.bump();
            if bm.closed_subset(v, u) {
                tally.unmarked.bump();
                next[v as usize] = false;
                if let Some(r) = removed.as_deref_mut() {
                    r.push(v);
                }
                break;
            }
        }
    }
    tally.flush();
}

/// One simultaneous Rule 2 pass.
///
/// A marked `v` with two marked neighbours `u, w` unmarks itself when
/// `N(v) ⊆ N(u) ∪ N(w)` and the chosen [`Rule2Semantics`] approves. The
/// coverage condition implies `u` and `w` are adjacent (every neighbour of
/// `v`, in particular `u`, lies in `N(u) ∪ N(w)`; `u ∉ N(u)`, so `u ∈ N(w)`),
/// so the surviving pair keeps the pruned set connected.
pub fn rule2_pass<G: Neighbors + ?Sized>(
    g: &G,
    bm: &NeighborBitmap,
    marked: &[bool],
    key: &PriorityKey,
    semantics: Rule2Semantics,
    removed: Option<&mut Vec<NodeId>>,
) -> VertexMask {
    let mut next = Vec::new();
    rule2_pass_into(g, bm, marked, key, semantics, &mut RuleScratch::new(), &mut next, removed);
    next
}

/// [`rule2_pass`] writing into caller-provided buffers: `scratch` holds the
/// marked-neighbour list and coverage word buffers, `next` receives the
/// result (cleared and refilled).
#[allow(clippy::too_many_arguments)]
pub fn rule2_pass_into<G: Neighbors + ?Sized>(
    g: &G,
    bm: &NeighborBitmap,
    marked: &[bool],
    key: &PriorityKey,
    semantics: Rule2Semantics,
    scratch: &mut RuleScratch,
    next: &mut VertexMask,
    mut removed: Option<&mut Vec<NodeId>>,
) {
    let _t = pacds_obs::phase_timer(Phase::Rule2);
    let mut tally = Rule2Tally::default();
    next.clear();
    next.extend_from_slice(marked);
    for v in g.vertices() {
        if !marked[v as usize] {
            continue;
        }
        tally.vertices.bump();
        if !fill_rule2_candidates(g, marked, key, semantics, v, &mut scratch.nbrs) {
            continue;
        }
        tally.candidates.add(scratch.nbrs.len() as u64);
        if rule2_decides_removal(bm, key, semantics, v, scratch, &mut tally) {
            tally.unmarked.bump();
            next[v as usize] = false;
            if let Some(r) = removed.as_deref_mut() {
                r.push(v);
            }
        }
    }
    tally.flush();
}

/// Sequential (in-place) Rule 1 sweep: vertices are visited in ascending
/// id order and markers are updated immediately, so later decisions see
/// earlier removals.
///
/// Every single removal preserves the CDS invariant (the covering `u` is
/// marked *at that moment* and `N[v] ⊆ N[u]`), so the sweep is sound for
/// any priority order — this is the natural way a sequential simulation
/// loop implements the rules, and the variant whose behaviour best matches
/// the paper's reported Figure 10 set sizes (see EXPERIMENTS.md).
pub fn rule1_pass_sequential<G: Neighbors + ?Sized>(
    g: &G,
    bm: &NeighborBitmap,
    marked: &[bool],
    key: &PriorityKey,
    removed: Option<&mut Vec<NodeId>>,
) -> VertexMask {
    let mut cur = Vec::new();
    rule1_pass_sequential_into(g, bm, marked, key, &mut cur, removed);
    cur
}

/// [`rule1_pass_sequential`] writing into a caller-provided mask.
pub fn rule1_pass_sequential_into<G: Neighbors + ?Sized>(
    g: &G,
    bm: &NeighborBitmap,
    marked: &[bool],
    key: &PriorityKey,
    cur: &mut VertexMask,
    mut removed: Option<&mut Vec<NodeId>>,
) {
    let _t = pacds_obs::phase_timer(Phase::Rule1);
    let mut tally = Rule1Tally::default();
    cur.clear();
    cur.extend_from_slice(marked);
    for v in g.vertices() {
        if !cur[v as usize] {
            continue;
        }
        let dv = g.neighbors(v).len();
        let witness = g.neighbors(v).iter().copied().min().unwrap_or(v);
        let mut kill = false;
        for &u in g.neighbors(v) {
            tally.candidates.bump();
            if !(cur[u as usize] && g.neighbors(u).len() >= dv && key.lt(v, u)) {
                tally.prefilter_rejects.bump();
                continue;
            }
            tally.witness_probes.bump();
            if !(witness == u || bm.contains(witness, u)) {
                tally.witness_rejects.bump();
                continue;
            }
            tally.subset_scans.bump();
            if bm.closed_subset(v, u) {
                kill = true;
                break;
            }
        }
        if kill {
            tally.unmarked.bump();
            cur[v as usize] = false;
            if let Some(r) = removed.as_deref_mut() {
                r.push(v);
            }
        }
    }
    tally.flush();
}

/// Sequential (in-place) Rule 2 sweep; see [`rule1_pass_sequential`].
pub fn rule2_pass_sequential<G: Neighbors + ?Sized>(
    g: &G,
    bm: &NeighborBitmap,
    marked: &[bool],
    key: &PriorityKey,
    semantics: Rule2Semantics,
    removed: Option<&mut Vec<NodeId>>,
) -> VertexMask {
    let mut cur = Vec::new();
    rule2_pass_sequential_into(
        g,
        bm,
        marked,
        key,
        semantics,
        &mut RuleScratch::new(),
        &mut cur,
        removed,
    );
    cur
}

/// [`rule2_pass_sequential`] writing into caller-provided buffers; see
/// [`rule2_pass_into`].
#[allow(clippy::too_many_arguments)]
pub fn rule2_pass_sequential_into<G: Neighbors + ?Sized>(
    g: &G,
    bm: &NeighborBitmap,
    marked: &[bool],
    key: &PriorityKey,
    semantics: Rule2Semantics,
    scratch: &mut RuleScratch,
    cur: &mut VertexMask,
    mut removed: Option<&mut Vec<NodeId>>,
) {
    let _t = pacds_obs::phase_timer(Phase::Rule2);
    let mut tally = Rule2Tally::default();
    cur.clear();
    cur.extend_from_slice(marked);
    for v in g.vertices() {
        if !cur[v as usize] {
            continue;
        }
        tally.vertices.bump();
        if !fill_rule2_candidates(g, cur, key, semantics, v, &mut scratch.nbrs) {
            continue;
        }
        tally.candidates.add(scratch.nbrs.len() as u64);
        if rule2_decides_removal(bm, key, semantics, v, scratch, &mut tally) {
            tally.unmarked.bump();
            cur[v as usize] = false;
            if let Some(r) = removed.as_deref_mut() {
                r.push(v);
            }
        }
    }
    tally.flush();
}

/// Fills `scratch.nbrs` with the neighbours of `v` that can participate in
/// a Rule 2 pair under `semantics`: every marked neighbour for the
/// case-analysis form, but only the *higher-priority* marked neighbours for
/// min-of-three — there, coverage and priority are a pure conjunction, so a
/// lower-priority neighbour can never be half of a removing pair. Returns
/// `false` when fewer than two remain (no pair is possible).
pub(crate) fn fill_rule2_candidates<G: Neighbors + ?Sized>(
    g: &G,
    marked: &[bool],
    key: &PriorityKey,
    semantics: Rule2Semantics,
    v: NodeId,
    nbrs: &mut Vec<NodeId>,
) -> bool {
    nbrs.clear();
    let eligible = g.neighbors(v).iter().copied().filter(|&u| marked[u as usize]);
    match semantics {
        Rule2Semantics::MinOfThree => nbrs.extend(eligible.filter(|&u| key.lt(v, u))),
        Rule2Semantics::CaseAnalysis => nbrs.extend(eligible),
    }
    nbrs.len() >= 2
}

/// Whether some pair of the neighbours in `scratch.nbrs` justifies
/// unmarking `v` (the caller fills `scratch.nbrs` via
/// [`fill_rule2_candidates`]; the word buffers are internal).
///
/// Coverage is decided per candidate `u` on the residual `N(v) \ N(u)`: its
/// lowest vertex is a *witness* every viable partner `w` must contain, so
/// most pairs die on a single [`NeighborBitmap::contains`] probe, and the
/// residual word list is only materialised once some `w` survives the
/// witness test. Bit-identical to testing
/// [`NeighborBitmap::open_subset_pair`] on every pair, at a fraction of the
/// word traffic. The removal outcome is an OR over pairs, so the evaluation
/// order cannot change the result.
pub(crate) fn rule2_decides_removal(
    bm: &NeighborBitmap,
    key: &PriorityKey,
    semantics: Rule2Semantics,
    v: NodeId,
    scratch: &mut RuleScratch,
    tally: &mut Rule2Tally,
) -> bool {
    let RuleScratch { nbrs, support } = scratch;
    bm.row_support_into(v, support);
    match semantics {
        Rule2Semantics::MinOfThree => {
            // `nbrs` holds only higher-priority neighbours, so coverage
            // alone decides.
            //
            // The pair loop is the hottest loop in the pipeline, so the
            // tallies stay in registers: pairs-probed comes from index
            // arithmetic at each loop exit, and every probed pair either
            // fails the witness test or reaches a coverage scan, so the
            // reject count is the difference of the two.
            fn settle(t: &mut Rule2Tally, pairs: Tally, cov: Tally) {
                t.pairs.add(pairs.get());
                t.coverage_scans.add(cov.get());
                t.witness_rejects.add(pairs.get() - cov.get());
            }
            let mut pairs = Tally::new();
            let mut cov = Tally::new();
            for (i, &u) in nbrs.iter().enumerate() {
                match bm.first_residual_bit(support, u) {
                    // N(v) ⊆ N(u): the pair (u, w) covers for *any* other
                    // candidate w, and the caller guarantees one exists.
                    None => {
                        settle(tally, pairs, cov);
                        return true;
                    }
                    Some(b) => {
                        let rest = &nbrs[i + 1..];
                        for (j, &w) in rest.iter().enumerate() {
                            if !bm.contains(w, b) {
                                continue;
                            }
                            cov.bump();
                            if bm.open_subset_pair_with(support, u, w) {
                                pairs.add(j as u64 + 1);
                                settle(tally, pairs, cov);
                                return true;
                            }
                        }
                        pairs.add(rest.len() as u64);
                    }
                }
            }
            settle(tally, pairs, cov);
            false
        }
        Rule2Semantics::CaseAnalysis => {
            for (i, &u) in nbrs.iter().enumerate() {
                let witness = bm.first_residual_bit(support, u);
                for &w in &nbrs[i + 1..] {
                    tally.pairs.bump();
                    if let Some(b) = witness {
                        if !bm.contains(w, b) {
                            tally.witness_rejects.bump();
                            continue;
                        }
                        tally.coverage_scans.bump();
                        if !bm.open_subset_pair_with(support, u, w) {
                            continue;
                        }
                    }
                    tally.coverage_scans.add(2);
                    let cu = bm.open_subset_pair(u, v, w);
                    let cw = bm.open_subset_pair(w, v, u);
                    let ok = match (cu, cw) {
                        (false, false) => true,
                        (true, false) => key.lt(v, u),
                        (false, true) => key.lt(v, w),
                        (true, true) => key.lt(v, u) && key.lt(v, w),
                    };
                    if ok {
                        return true;
                    }
                }
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::marking::marking;
    use crate::priority::Policy;
    use pacds_graph::{mask_to_vec, Graph};

    fn prio(policy: Policy, g: &Graph, energy: Option<&[u64]>) -> PriorityKey {
        PriorityKey::build(policy, g, energy)
    }

    /// Figure 3(a): N[v] ⊆ N[u]. v=0, u=1, a=2, b=3.
    /// Edges: v-u, v-a, u-a, u-b.
    fn fig3a() -> Graph {
        Graph::from_edges(4, &[(0, 1), (0, 2), (1, 2), (1, 3)])
    }

    #[test]
    fn rule1_unmarks_covered_lower_id() {
        let g = fig3a();
        let bm = NeighborBitmap::build(&g);
        let marked = marking(&g);
        // Initially both 0 and 1 are marked (0 has unconnected nbrs? N(0)={1,2},
        // 1-2 edge exists -> 0 NOT marked). Let's check directly.
        assert_eq!(mask_to_vec(&marked), vec![1]); // only u=1 is marked
        // Force-mark 0 to exercise the rule in isolation.
        let mut m = marked.clone();
        m[0] = true;
        let key = prio(Policy::Id, &g, None);
        let mut removed = Vec::new();
        let out = rule1_pass(&g, &bm, &m, &key, Some(&mut removed));
        assert_eq!(removed, vec![0]);
        assert_eq!(mask_to_vec(&out), vec![1]);
    }

    #[test]
    fn rule1_equal_neighborhoods_removes_exactly_one() {
        // Figure 3(b): N[v] = N[u]; v=0, u=1 both adjacent to 2 and each other.
        let g = Graph::from_edges(3, &[(0, 1), (0, 2), (1, 2)]);
        let bm = NeighborBitmap::build(&g);
        let m = vec![true, true, false];
        let key = prio(Policy::Id, &g, None);
        let out = rule1_pass(&g, &bm, &m, &key, None);
        assert_eq!(mask_to_vec(&out), vec![1]); // id 0 < id 1 -> 0 removed
    }

    #[test]
    fn rule1_higher_id_survives_even_when_strictly_covered() {
        // N[v] ⊂ N[u] but id(v) > id(u): v must stay (literal paper reading).
        // v=3 covered by u=1: edges 3-1, 3-2, 1-2, 1-0.
        let g = Graph::from_edges(4, &[(3, 1), (3, 2), (1, 2), (1, 0)]);
        let bm = NeighborBitmap::build(&g);
        let m = vec![false, true, false, true];
        let key = prio(Policy::Id, &g, None);
        let out = rule1_pass(&g, &bm, &m, &key, None);
        assert_eq!(mask_to_vec(&out), vec![1, 3]);
    }

    #[test]
    fn rule1_degree_priority_removes_low_degree_node() {
        // v=3 has degree 2, u=1 has degree 3; N[3] ⊆ N[1].
        let g = Graph::from_edges(4, &[(3, 1), (3, 2), (1, 2), (1, 0)]);
        let bm = NeighborBitmap::build(&g);
        let m = vec![false, true, false, true];
        let key = prio(Policy::Degree, &g, None);
        let out = rule1_pass(&g, &bm, &m, &key, None);
        assert_eq!(mask_to_vec(&out), vec![1]); // 3 removed despite higher id
    }

    #[test]
    fn rule1_energy_priority_keeps_the_energetic_node() {
        // Same coverage both ways (triangle with shared neighbourhood).
        let g = Graph::from_edges(3, &[(0, 1), (0, 2), (1, 2)]);
        let bm = NeighborBitmap::build(&g);
        let m = vec![true, true, false];
        // Node 0 has more energy: node 1 should be removed.
        let key = prio(Policy::Energy, &g, Some(&[50, 10, 30]));
        let out = rule1_pass(&g, &bm, &m, &key, None);
        assert_eq!(mask_to_vec(&out), vec![0]);
    }

    #[test]
    fn rule2_min_of_three_unmarks_minimum_id() {
        // v=0 adjacent to u=1, w=2 and x=3; u-w edge; x-u edge; pendant 4 on w
        // keeps w marked. N(0) = {1,2,3} ⊆ N(1) ∪ N(2).
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 4)]);
        let bm = NeighborBitmap::build(&g);
        let marked = marking(&g);
        assert_eq!(mask_to_vec(&marked), vec![0, 1, 2]);
        let key = prio(Policy::Id, &g, None);
        let out = rule2_pass(&g, &bm, &marked, &key, Rule2Semantics::MinOfThree, None);
        assert_eq!(mask_to_vec(&out), vec![1, 2]); // v=0 has min id
    }

    #[test]
    fn rule2_min_of_three_keeps_non_minimum() {
        // v=4 covered by u=1, w=2, but u and w have private pendants (3 and
        // 5), so only v is covered — and v has the *max* id, so the original
        // Rule 2 keeps everything.
        let g = Graph::from_edges(
            6,
            &[(4, 1), (4, 2), (4, 0), (1, 2), (1, 0), (1, 3), (2, 5)],
        );
        let bm = NeighborBitmap::build(&g);
        let marked = marking(&g);
        assert_eq!(mask_to_vec(&marked), vec![1, 2, 4]);
        let key = prio(Policy::Id, &g, None);
        let out = rule2_pass(&g, &bm, &marked, &key, Rule2Semantics::MinOfThree, None);
        assert_eq!(mask_to_vec(&out), vec![1, 2, 4]);
    }

    #[test]
    fn rule2_case_analysis_case1_removes_unconditionally() {
        // Same topology as above: v=4 covered, u=1 and w=2 not covered
        // (case 1) — the extended rules remove v despite its max id.
        let g = Graph::from_edges(
            6,
            &[(4, 1), (4, 2), (4, 0), (1, 2), (1, 0), (1, 3), (2, 5)],
        );
        let bm = NeighborBitmap::build(&g);
        let marked = marking(&g);
        let key = prio(Policy::Degree, &g, None);
        let out = rule2_pass(&g, &bm, &marked, &key, Rule2Semantics::CaseAnalysis, None);
        assert_eq!(mask_to_vec(&out), vec![1, 2]);
    }

    #[test]
    fn rule2_case_analysis_case2_compares_only_with_covered_peer() {
        // v and u cover each other; w has a pendant so it is not covered.
        // v=1, u=2 (twins adjacent to w=0 and each other); w=0 also has pendant 3.
        // N(1) = {0, 2}; N(2) = {0, 1}; N(0) = {1, 2, 3}.
        // c_v: N(1) ⊆ N(2) ∪ N(0)? {0,2}: 0 ∈ N(2)? yes. 2 ∈ N(0)? yes -> covered.
        // c_u(2): {0,1}: 0 ∈ N(1)? yes; 1 ∈ N(0)? yes -> covered.
        // c_w(0): {1,2,3}: 3 ∈ N(1) ∪ N(2)? no -> not covered.
        let g = Graph::from_edges(4, &[(1, 2), (1, 0), (2, 0), (0, 3)]);
        let bm = NeighborBitmap::build(&g);
        let m = vec![true, true, true, false];
        let key = prio(Policy::Id, &g, None);
        let out = rule2_pass(&g, &bm, &m, &key, Rule2Semantics::CaseAnalysis, None);
        // Triple (v=1; 0, 2): case 2 with covered peer 2; id(1) < id(2) -> remove 1.
        // Triple (v=2; 0, 1): case 2 with covered peer 1; id(2) > id(1) -> keep 2.
        // v=0 is not covered -> kept.
        assert_eq!(mask_to_vec(&out), vec![0, 2]);
    }

    #[test]
    fn rule2_case_analysis_case3_min_priority_among_triangle() {
        // Triangle 0-1-2 with no pendants: all three cover each other.
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let bm = NeighborBitmap::build(&g);
        let m = vec![true, true, true];
        let key = prio(Policy::Energy, &g, Some(&[30, 10, 20]));
        let out = rule2_pass(&g, &bm, &m, &key, Rule2Semantics::CaseAnalysis, None);
        // Node 1 has minimum energy -> removed; exactly one removal.
        assert_eq!(mask_to_vec(&out), vec![0, 2]);
    }

    #[test]
    fn rule2_requires_two_marked_neighbors() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let bm = NeighborBitmap::build(&g);
        let m = vec![true, false, true]; // only one marked neighbour each
        let key = prio(Policy::Id, &g, None);
        let out = rule2_pass(&g, &bm, &m, &key, Rule2Semantics::MinOfThree, None);
        assert_eq!(mask_to_vec(&out), vec![0, 2]);
    }

    /// Documents the soundness gap in the paper's literal Rules 2a/2b/2b':
    /// under simultaneous application, nodes 1 and 6 both unmark via case 2
    /// (each through a pair containing the other), and node 2 — whose only
    /// neighbours are 1 and 6 — ends up undominated. The safe
    /// [`Rule2Semantics::MinOfThree`] keeps the set dominating.
    #[test]
    fn paper_literal_rule2_counterexample() {
        let g = Graph::from_edges(
            7,
            &[
                (0, 3),
                (0, 5),
                (0, 6),
                (1, 2),
                (1, 3),
                (1, 4),
                (1, 5),
                (1, 6),
                (2, 6),
                (3, 4),
                (4, 5),
                (4, 6),
                (5, 6),
            ],
        );
        let energy = [5u64, 1, 8, 4, 9, 7, 2];
        let bm = NeighborBitmap::build(&g);
        let marked = marking(&g);
        let key = prio(Policy::Energy, &g, Some(&energy));

        let literal = rule2_pass(&g, &bm, &marked, &key, Rule2Semantics::CaseAnalysis, None);
        assert!(
            !crate::verify::is_dominating_set(&g, &literal),
            "the literal extended Rule 2 loses domination on this graph"
        );

        let safe = rule2_pass(&g, &bm, &marked, &key, Rule2Semantics::MinOfThree, None);
        assert!(crate::verify::is_connected_dominating_set(&g, &safe));
    }

    #[test]
    fn rule2_energy_tie_breaks_by_id() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let bm = NeighborBitmap::build(&g);
        let m = vec![true, true, true];
        let key = prio(Policy::Energy, &g, Some(&[7, 7, 7]));
        let out = rule2_pass(&g, &bm, &m, &key, Rule2Semantics::CaseAnalysis, None);
        assert_eq!(mask_to_vec(&out), vec![1, 2]); // id 0 is the tie-break loser
    }
}
