//! End-to-end CDS computation: marking followed by the selected rule pair.

use crate::priority::{EnergyLevel, Policy};
use crate::rules::Rule2Semantics;
use pacds_graph::{Graph, NodeId, VertexMask};
use serde::{Deserialize, Serialize};

/// Inputs to a CDS computation.
#[derive(Debug, Clone, Copy)]
pub struct CdsInput<'a> {
    /// The network graph.
    pub graph: &'a Graph,
    /// Discrete energy level of each host (required by the EL policies).
    pub energy: Option<&'a [EnergyLevel]>,
}

impl<'a> CdsInput<'a> {
    /// Input without energy information (sufficient for NR/ID/ND).
    pub fn new(graph: &'a Graph) -> Self {
        Self {
            graph,
            energy: None,
        }
    }

    /// Input with per-host energy levels.
    pub fn with_energy(graph: &'a Graph, energy: &'a [EnergyLevel]) -> Self {
        Self {
            graph,
            energy: Some(energy),
        }
    }
}

/// How each rule pass visits the marked vertices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Application {
    /// All removal decisions are evaluated against a snapshot of the
    /// marked set and applied at once — the distributed reality, where
    /// every host decides from the same exchanged markers.
    #[default]
    Simultaneous,
    /// Vertices are visited in ascending id order and markers update in
    /// place, so later decisions see earlier removals — how a sequential
    /// simulation loop naturally implements the rules. Sound for any
    /// priority order and any Rule 2 semantics.
    Sequential,
}

/// How many times the rule pair is applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PruneSchedule {
    /// One Rule 1 pass over the marking result, then one Rule 2 pass over
    /// Rule 1's output — the paper's procedure.
    #[default]
    SinglePass,
    /// Repeat (Rule 1; Rule 2) until a fixpoint. An ablation: the extra
    /// rounds occasionally shave off a few more gateways at extra cost.
    Fixpoint,
}

/// Full configuration of a CDS computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CdsConfig {
    /// The rule family / priority order.
    pub policy: Policy,
    /// Rule application schedule.
    pub schedule: PruneSchedule,
    /// Rule 2 semantics. [`Rule2Semantics::MinOfThree`] is provably safe
    /// for every policy; [`Rule2Semantics::CaseAnalysis`] is the paper's
    /// literal extended rule (see its fidelity warning). For
    /// [`Policy::Id`] the paper's Rule 2 *is* min-of-three, so this field
    /// is forced to `MinOfThree` for that policy.
    pub rule2: Rule2Semantics,
    /// Simultaneous (snapshot) or sequential (in-place) rule application.
    pub application: Application,
}

impl CdsConfig {
    /// Safe single-pass configuration for `policy` (min-of-three Rule 2,
    /// simultaneous application).
    pub fn policy(policy: Policy) -> Self {
        Self {
            policy,
            schedule: PruneSchedule::SinglePass,
            rule2: Rule2Semantics::MinOfThree,
            application: Application::Simultaneous,
        }
    }

    /// The paper's literal configuration for `policy`: case-analysis
    /// Rule 2 for the extended rule families (min-of-three for `Id`),
    /// applied simultaneously. **Unsound** on a sizable fraction of
    /// paper-scale topologies — see the crate docs and EXPERIMENTS.md.
    pub fn paper(policy: Policy) -> Self {
        Self {
            policy,
            schedule: PruneSchedule::SinglePass,
            rule2: Rule2Semantics::CaseAnalysis,
            application: Application::Simultaneous,
        }
    }

    /// The paper's rules applied as a sequential in-place sweep — sound
    /// for every policy, and the variant that best matches the paper's
    /// reported behaviour (a sequential simulator updates markers in
    /// place as it loops over hosts).
    pub fn sequential(policy: Policy) -> Self {
        Self {
            policy,
            schedule: PruneSchedule::SinglePass,
            rule2: Rule2Semantics::CaseAnalysis,
            application: Application::Sequential,
        }
    }

    /// Fixpoint-schedule (safe) configuration for `policy`.
    pub fn fixpoint(policy: Policy) -> Self {
        Self {
            policy,
            schedule: PruneSchedule::Fixpoint,
            rule2: Rule2Semantics::MinOfThree,
            application: Application::Simultaneous,
        }
    }

    /// The Rule 2 semantics this configuration actually runs: for
    /// [`Policy::Id`] the original Rule 2 is already the min-of-three form,
    /// so the `rule2` field is overridden.
    pub fn rule2_semantics(&self) -> Rule2Semantics {
        match self.policy {
            // The original Rule 2 is already the min-of-three form.
            Policy::Id => Rule2Semantics::MinOfThree,
            _ => self.rule2,
        }
    }
}

/// Intermediate states of a CDS computation, for inspection and tests.
#[derive(Debug, Clone)]
pub struct CdsTrace {
    /// Output of the bare marking process.
    pub marked: VertexMask,
    /// After the Rule 1 pass(es).
    pub after_rule1: VertexMask,
    /// Final gateway set (after Rule 2).
    pub after_rule2: VertexMask,
    /// Vertices removed by Rule 1 (first round only, in id order).
    pub removed_by_rule1: Vec<NodeId>,
    /// Vertices removed by Rule 2 (first round only, in id order).
    pub removed_by_rule2: Vec<NodeId>,
    /// Number of (Rule 1; Rule 2) rounds executed.
    pub rounds: usize,
}

impl CdsTrace {
    /// The final gateway mask.
    pub fn gateways(&self) -> &VertexMask {
        &self.after_rule2
    }

    /// Number of gateways in the final set.
    pub fn gateway_count(&self) -> usize {
        self.after_rule2.iter().filter(|&&b| b).count()
    }
}

/// Computes the gateway set of `input.graph` under `cfg`.
///
/// Equivalent to [`compute_cds_trace`] but returns only the final mask.
pub fn compute_cds(input: &CdsInput<'_>, cfg: &CdsConfig) -> VertexMask {
    compute_cds_trace(input, cfg).after_rule2
}

/// Computes the gateway set, returning every intermediate state.
///
/// This is the convenient allocating entry point: it runs a fresh
/// [`CdsWorkspace`](crate::CdsWorkspace) — the single canonical
/// implementation of the marking + pruning pipeline, which builds the
/// priority key exactly once per call regardless of how many Fixpoint
/// rounds run — and moves its buffers out as the trace. Hot loops that
/// recompute on every update interval should hold a workspace themselves
/// and call [`CdsWorkspace::compute`](crate::CdsWorkspace::compute).
pub fn compute_cds_trace(input: &CdsInput<'_>, cfg: &CdsConfig) -> CdsTrace {
    let mut ws = crate::workspace::CdsWorkspace::new();
    ws.compute(input.graph, input.energy, cfg);
    ws.into_trace()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacds_graph::{gen, mask_to_vec};

    #[test]
    fn figure1_id_policy() {
        // u=0, v=1, w=2, x=3, y=4.
        let g = Graph::from_edges(5, &[(0, 1), (0, 4), (1, 2), (1, 4), (2, 3)]);
        let cds = compute_cds(&CdsInput::new(&g), &CdsConfig::policy(Policy::Id));
        assert_eq!(mask_to_vec(&cds), vec![1, 2]);
    }

    #[test]
    fn no_pruning_returns_bare_marking() {
        let g = gen::cycle(6);
        let trace = compute_cds_trace(&CdsInput::new(&g), &CdsConfig::policy(Policy::NoPruning));
        assert_eq!(trace.marked, trace.after_rule2);
        assert_eq!(trace.gateway_count(), 6);
        assert_eq!(trace.rounds, 0);
    }

    #[test]
    fn pruning_never_grows_the_set() {
        let g = gen::grid(4, 5);
        let nr = compute_cds(&CdsInput::new(&g), &CdsConfig::policy(Policy::NoPruning));
        for policy in [Policy::Id, Policy::Degree] {
            let pruned = compute_cds(&CdsInput::new(&g), &CdsConfig::policy(policy));
            for v in 0..g.n() {
                assert!(!pruned[v] || nr[v], "{policy:?} added vertex {v}");
            }
        }
    }

    #[test]
    fn energy_policies_respond_to_energy() {
        // Twin hubs 0 and 1 with identical closed neighbourhoods {0,1,2,3}:
        // Rule 1b keeps whichever has more energy.
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3)]);
        let hi_first: Vec<u64> = vec![90, 10, 90, 90];
        let hi_second: Vec<u64> = vec![10, 90, 90, 90];
        let a = compute_cds(
            &CdsInput::with_energy(&g, &hi_first),
            &CdsConfig::policy(Policy::Energy),
        );
        let b = compute_cds(
            &CdsInput::with_energy(&g, &hi_second),
            &CdsConfig::policy(Policy::Energy),
        );
        assert_ne!(a, b, "different energy assignments must steer selection");
    }

    #[test]
    fn trace_reports_removals() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 4)]);
        let trace = compute_cds_trace(&CdsInput::new(&g), &CdsConfig::policy(Policy::Id));
        assert_eq!(mask_to_vec(&trace.marked), vec![0, 1, 2]);
        assert!(trace.rounds >= 1);
        // Every vertex is accounted for: marked = gateways + removed.
        let total_removed = trace.removed_by_rule1.len() + trace.removed_by_rule2.len();
        assert_eq!(
            trace.gateway_count() + total_removed,
            mask_to_vec(&trace.marked).len()
        );
        assert!(total_removed >= 1, "this topology is prunable");
    }

    #[test]
    fn fixpoint_never_ends_larger_than_single_pass() {
        let g = gen::grid(5, 5);
        let single = compute_cds(&CdsInput::new(&g), &CdsConfig::policy(Policy::Degree));
        let fix = compute_cds(&CdsInput::new(&g), &CdsConfig::fixpoint(Policy::Degree));
        let count = |m: &[bool]| m.iter().filter(|&&b| b).count();
        assert!(count(&fix) <= count(&single));
    }

    #[test]
    fn complete_graph_yields_empty_cds() {
        let g = gen::complete(5);
        for policy in [Policy::NoPruning, Policy::Id, Policy::Degree] {
            let cds = compute_cds(&CdsInput::new(&g), &CdsConfig::policy(policy));
            assert!(cds.iter().all(|&b| !b), "{policy:?}");
        }
    }
}
