//! The reusable CDS scratch arena — the zero-allocation hot path.
//!
//! Monte-Carlo sweeps recompute the gateway set thousands of times on
//! topologies of identical size. [`compute_cds`](crate::compute_cds) is
//! convenient but heap-allocates a fresh [`NeighborBitmap`], priority table,
//! and half a dozen masks per call. [`CdsWorkspace`] owns all of that scratch
//! once: every buffer is cleared and refilled in place, so after the first
//! call at a given size (the warm-up that establishes each buffer's
//! high-water capacity) a recomputation performs **zero heap allocations**.
//! `tests/zero_alloc.rs` at the workspace root pins this with a counting
//! global allocator.
//!
//! The workspace is generic over [`Neighbors`], so it runs identically on the
//! adjacency-list [`pacds_graph::Graph`] and the flat [`pacds_graph::CsrGraph`]
//! — `crates/core/tests/csr_equiv.rs` pins both to bit-identical outputs of
//! the allocating pipeline across all policies, semantics, and schedules.

use crate::pipeline::{Application, CdsConfig, CdsTrace, PruneSchedule};
use crate::priority::{EnergyLevel, PriorityKey};
use crate::rules::{
    rule1_pass_into, rule1_pass_sequential_into, rule2_pass_into, rule2_pass_sequential_into,
    RuleScratch,
};
use crate::verify::{verify_cds_scratch, CdsViolation};
use pacds_graph::{NeighborBitmap, Neighbors, NodeId, VertexMask};
use std::collections::VecDeque;

/// Owned scratch for repeated CDS computations (and verifications).
///
/// One instance serves any sequence of graphs; buffers grow to the largest
/// size seen and are reused thereafter. The result of the latest
/// [`CdsWorkspace::compute`] stays readable through the accessor methods
/// until the next call.
#[derive(Debug, Clone, Default)]
pub struct CdsWorkspace {
    pub(crate) bm: NeighborBitmap,
    pub(crate) key: PriorityKey,
    pub(crate) marked: VertexMask,
    pub(crate) after1: VertexMask,
    pub(crate) after2: VertexMask,
    tmp1: VertexMask,
    tmp2: VertexMask,
    scratch: RuleScratch,
    pub(crate) removed1: Vec<NodeId>,
    pub(crate) removed2: Vec<NodeId>,
    pub(crate) rounds: usize,
    seen: Vec<bool>,
    queue: VecDeque<NodeId>,
}

impl CdsWorkspace {
    /// An empty workspace. Buffers are allocated lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// A workspace pre-sized for graphs of `n` vertices, so even the first
    /// [`CdsWorkspace::compute`] at that size stays allocation-free for the
    /// mask and BFS buffers (the bitmap and edge-dependent scratch still
    /// warm up on first contact with a topology).
    pub fn with_capacity(n: usize) -> Self {
        let mut ws = Self::new();
        ws.marked.reserve(n);
        ws.after1.reserve(n);
        ws.after2.reserve(n);
        ws.tmp1.reserve(n);
        ws.tmp2.reserve(n);
        ws.removed1.reserve(n);
        ws.removed2.reserve(n);
        ws.seen.reserve(n);
        ws.queue.reserve(n);
        ws.scratch.reserve(n);
        ws
    }

    /// Computes the gateway set of `g` under `cfg`, reusing every internal
    /// buffer. Returns the final mask; the intermediate states remain
    /// readable via [`CdsWorkspace::marked`], [`CdsWorkspace::after_rule1`],
    /// [`CdsWorkspace::removed_by_rule1`] / [`removed_by_rule2`]
    /// (first-round removals, id order) and [`CdsWorkspace::rounds`].
    ///
    /// Bit-identical to [`crate::compute_cds`] on the same graph and
    /// configuration (in fact the allocating pipeline now runs through a
    /// fresh workspace internally).
    ///
    /// # Panics
    /// Panics if `cfg.policy.needs_energy()` and `energy` is `None` or of
    /// the wrong length (same contract as [`PriorityKey::build`]).
    pub fn compute<G: Neighbors + ?Sized>(
        &mut self,
        g: &G,
        energy: Option<&[EnergyLevel]>,
        cfg: &CdsConfig,
    ) -> &VertexMask {
        pacds_obs::inc(pacds_obs::Counter::WorkspaceComputes);
        crate::marking::marking_into(g, &mut self.marked);
        self.removed1.clear();
        self.removed2.clear();
        self.rounds = 0;
        if !cfg.policy.prunes() {
            self.after1.clone_from(&self.marked);
            self.after2.clone_from(&self.marked);
            return &self.after2;
        }

        {
            let _t = pacds_obs::phase_timer(pacds_obs::Phase::BitmapRebuild);
            self.bm.rebuild_into(g);
            pacds_obs::inc(pacds_obs::Counter::WorkspaceBitmapRebuilds);
        }
        {
            let _t = pacds_obs::phase_timer(pacds_obs::Phase::KeyRebuild);
            self.key.rebuild(cfg.policy, g, energy);
            pacds_obs::inc(pacds_obs::Counter::WorkspaceKeyRebuilds);
        }
        let semantics = cfg.rule2_semantics();

        match cfg.application {
            Application::Simultaneous => {
                rule1_pass_into(
                    g,
                    &self.bm,
                    &self.marked,
                    &self.key,
                    &mut self.after1,
                    Some(&mut self.removed1),
                );
                rule2_pass_into(
                    g,
                    &self.bm,
                    &self.after1,
                    &self.key,
                    semantics,
                    &mut self.scratch,
                    &mut self.after2,
                    Some(&mut self.removed2),
                );
            }
            Application::Sequential => {
                rule1_pass_sequential_into(
                    g,
                    &self.bm,
                    &self.marked,
                    &self.key,
                    &mut self.after1,
                    Some(&mut self.removed1),
                );
                rule2_pass_sequential_into(
                    g,
                    &self.bm,
                    &self.after1,
                    &self.key,
                    semantics,
                    &mut self.scratch,
                    &mut self.after2,
                    Some(&mut self.removed2),
                );
            }
        }
        self.rounds = 1;

        if cfg.schedule == PruneSchedule::Fixpoint {
            loop {
                match cfg.application {
                    Application::Simultaneous => {
                        rule1_pass_into(
                            g,
                            &self.bm,
                            &self.after2,
                            &self.key,
                            &mut self.tmp1,
                            None,
                        );
                        rule2_pass_into(
                            g,
                            &self.bm,
                            &self.tmp1,
                            &self.key,
                            semantics,
                            &mut self.scratch,
                            &mut self.tmp2,
                            None,
                        );
                    }
                    Application::Sequential => {
                        rule1_pass_sequential_into(
                            g,
                            &self.bm,
                            &self.after2,
                            &self.key,
                            &mut self.tmp1,
                            None,
                        );
                        rule2_pass_sequential_into(
                            g,
                            &self.bm,
                            &self.tmp1,
                            &self.key,
                            semantics,
                            &mut self.scratch,
                            &mut self.tmp2,
                            None,
                        );
                    }
                }
                self.rounds += 1;
                let changed = self.tmp2 != self.after2;
                std::mem::swap(&mut self.after1, &mut self.tmp1);
                if !changed {
                    break;
                }
                std::mem::swap(&mut self.after2, &mut self.tmp2);
            }
        }

        pacds_obs::add(pacds_obs::Counter::WorkspaceRounds, self.rounds as u64);
        &self.after2
    }

    /// The final gateway mask of the latest [`CdsWorkspace::compute`].
    #[inline]
    pub fn gateways(&self) -> &VertexMask {
        &self.after2
    }

    /// Number of gateways in the latest result.
    pub fn gateway_count(&self) -> usize {
        self.after2.iter().filter(|&&b| b).count()
    }

    /// Output of the bare marking process in the latest computation.
    #[inline]
    pub fn marked(&self) -> &VertexMask {
        &self.marked
    }

    /// Mask after the Rule 1 pass(es) of the latest computation.
    #[inline]
    pub fn after_rule1(&self) -> &VertexMask {
        &self.after1
    }

    /// Vertices removed by Rule 1 in the first round, in id order.
    #[inline]
    pub fn removed_by_rule1(&self) -> &[NodeId] {
        &self.removed1
    }

    /// Vertices removed by Rule 2 in the first round, in id order.
    #[inline]
    pub fn removed_by_rule2(&self) -> &[NodeId] {
        &self.removed2
    }

    /// Number of (Rule 1; Rule 2) rounds of the latest computation.
    #[inline]
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Verifies that `mask` is a connected dominating set of `g`, using the
    /// workspace's BFS scratch (allocation-free once warm). Same semantics
    /// as [`crate::verify_cds`], including the complete-graph special case.
    pub fn verify<G: Neighbors + ?Sized>(
        &mut self,
        g: &G,
        mask: &[bool],
    ) -> Result<(), CdsViolation> {
        verify_cds_scratch(g, mask, &mut self.seen, &mut self.queue)
    }

    /// Verifies the latest computed gateway set against `g`.
    pub fn verify_last<G: Neighbors + ?Sized>(&mut self, g: &G) -> Result<(), CdsViolation> {
        verify_cds_scratch(g, &self.after2, &mut self.seen, &mut self.queue)
    }

    /// Consumes the workspace, moving the latest computation's states into
    /// an owned [`CdsTrace`] without copying. This is how the allocating
    /// [`crate::compute_cds_trace`] is implemented.
    pub fn into_trace(self) -> CdsTrace {
        CdsTrace {
            marked: self.marked,
            after_rule1: self.after1,
            after_rule2: self.after2,
            removed_by_rule1: self.removed1,
            removed_by_rule2: self.removed2,
            rounds: self.rounds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{compute_cds_trace, CdsInput};
    use crate::priority::Policy;
    use crate::rules::Rule2Semantics;
    use pacds_graph::{gen, CsrGraph, Graph};
    use rand::SeedableRng;

    fn all_configs() -> Vec<CdsConfig> {
        let mut cfgs = Vec::new();
        for policy in Policy::ALL {
            for schedule in [PruneSchedule::SinglePass, PruneSchedule::Fixpoint] {
                for rule2 in [Rule2Semantics::MinOfThree, Rule2Semantics::CaseAnalysis] {
                    for application in [Application::Simultaneous, Application::Sequential] {
                        cfgs.push(CdsConfig {
                            policy,
                            schedule,
                            rule2,
                            application,
                        });
                    }
                }
            }
        }
        cfgs
    }

    #[test]
    fn workspace_matches_pipeline_on_random_graphs() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let mut ws = CdsWorkspace::new();
        for n in [0usize, 1, 2, 12, 45, 90] {
            let g = gen::gnp(&mut rng, n, 0.18);
            let energy: Vec<u64> = (0..n as u64).map(|v| (v * 7 + 3) % 50).collect();
            for cfg in all_configs() {
                let trace = compute_cds_trace(&CdsInput::with_energy(&g, &energy), &cfg);
                let got = ws.compute(&g, Some(&energy), &cfg).clone();
                assert_eq!(got, trace.after_rule2, "n={n} cfg={cfg:?}");
                assert_eq!(ws.marked(), &trace.marked, "n={n} cfg={cfg:?}");
                assert_eq!(ws.after_rule1(), &trace.after_rule1, "n={n} cfg={cfg:?}");
                assert_eq!(ws.removed_by_rule1(), trace.removed_by_rule1, "n={n}");
                assert_eq!(ws.removed_by_rule2(), trace.removed_by_rule2, "n={n}");
                assert_eq!(ws.rounds(), trace.rounds, "n={n} cfg={cfg:?}");
            }
        }
    }

    #[test]
    fn workspace_runs_identically_on_csr() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(78);
        let mut ws = CdsWorkspace::new();
        let g = gen::gnp(&mut rng, 60, 0.12);
        let csr = CsrGraph::from(&g);
        let energy: Vec<u64> = (0..60u64).map(|v| v % 9).collect();
        for cfg in all_configs() {
            let on_graph = ws.compute(&g, Some(&energy), &cfg).clone();
            let on_csr = ws.compute(&csr, Some(&energy), &cfg).clone();
            assert_eq!(on_graph, on_csr, "cfg={cfg:?}");
        }
    }

    #[test]
    fn verify_last_accepts_computed_sets() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(79);
        let mut ws = CdsWorkspace::new();
        for _ in 0..15 {
            let g = gen::connected_gnp(&mut rng, 40, 0.12, 10);
            ws.compute(&g, None, &CdsConfig::policy(Policy::Id));
            assert_eq!(ws.verify_last(&g), Ok(()));
        }
    }

    #[test]
    fn verify_matches_verify_cds() {
        let g = gen::path(5);
        let mut ws = CdsWorkspace::new();
        assert_eq!(
            ws.verify(&g, &[false, true, false, true, false]),
            Err(CdsViolation::NotConnected)
        );
        assert_eq!(ws.verify(&g, &[false, true, true, true, false]), Ok(()));
        assert_eq!(ws.verify(&gen::complete(4), &[false; 4]), Ok(()));
    }

    #[test]
    fn into_trace_moves_the_latest_states() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 4)]);
        let mut ws = CdsWorkspace::new();
        ws.compute(&g, None, &CdsConfig::policy(Policy::Id));
        let trace = ws.into_trace();
        let reference = compute_cds_trace(&CdsInput::new(&g), &CdsConfig::policy(Policy::Id));
        assert_eq!(trace.after_rule2, reference.after_rule2);
        assert_eq!(trace.rounds, reference.rounds);
    }

    #[test]
    fn reuse_across_shrinking_and_growing_graphs() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(80);
        let mut ws = CdsWorkspace::with_capacity(64);
        for n in [64usize, 10, 50, 3, 64] {
            let g = gen::gnp(&mut rng, n, 0.2);
            let fresh = compute_cds_trace(&CdsInput::new(&g), &CdsConfig::fixpoint(Policy::Degree));
            let got = ws
                .compute(&g, None, &CdsConfig::fixpoint(Policy::Degree))
                .clone();
            assert_eq!(got, fresh.after_rule2, "n={n}");
            assert_eq!(got.len(), n);
        }
    }
}
