//! Core contribution of the paper: the Wu-Li **marking process** and the
//! **selective-removal rules** that shrink the resulting connected
//! dominating set (CDS), including the power-aware variants this paper
//! introduces.
//!
//! # Background
//!
//! A *dominating set* of `G = (V, E)` is a subset `V' ⊆ V` such that every
//! vertex is in `V'` or adjacent to a vertex in `V'`. Dominating-set-based
//! routing confines route search to the subgraph induced by a *connected*
//! dominating set (the *gateway* hosts).
//!
//! The marking process is fully localized: a host marks itself iff it has
//! two neighbours that are not directly connected. The marked set is a CDS
//! of any connected, non-complete graph (Properties 1–2 of the paper), and
//! it preserves shortest paths (Property 3).
//!
//! The marked set is usually far from minimal, so nodes apply
//! *selective-removal rules* using only 2-hop information:
//!
//! * **Rule 1** — if `N[v] ⊆ N[u]` for marked `v, u`, the lower-priority of
//!   the two unmarks itself.
//! * **Rule 2** — if `N(v) ⊆ N(u) ∪ N(w)` for marked neighbours `u, w` of
//!   marked `v`, then `v` unmarks itself subject to a priority test.
//!
//! Priorities are what this paper varies:
//!
//! | Policy ([`Policy`]) | Rule pair | Priority order |
//! |---|---|---|
//! | `Id` | 1, 2 | node id |
//! | `Degree` ("ND") | 1a, 2a | node degree, then id |
//! | `Energy` ("EL1") | 1b, 2b | energy level, then id |
//! | `EnergyDegree` ("EL2") | 1b', 2b' | energy level, then degree, then id |
//!
//! The energy-based policies deliberately rotate gateway duty onto
//! higher-energy hosts, extending the time until the first host dies.
//!
//! # Quick example
//!
//! ```
//! use pacds_graph::Graph;
//! use pacds_core::{compute_cds, CdsConfig, CdsInput, Policy};
//!
//! // Figure 1 of the paper: u=0, v=1, w=2, x=3, y=4.
//! let g = Graph::from_edges(5, &[(0, 1), (0, 4), (1, 2), (1, 4), (2, 3)]);
//! let cds = compute_cds(&CdsInput::new(&g), &CdsConfig::policy(Policy::Id));
//! assert_eq!(pacds_graph::mask_to_vec(&cds), vec![1, 2]); // v and w
//! ```

pub mod daiwu;
pub mod explain;
pub mod incremental;
pub mod marking;
pub mod parallel;
pub mod pipeline;
pub mod priority;
pub mod rules;
pub mod verify;
pub mod workspace;

/// The bit-parallel scan kernels behind every coverage predicate
/// (re-exported from `pacds-graph` so rule-engine callers see one module):
/// the whole-graph workspace and the sharded tile solver both decide
/// `N[v] ⊆ N[u]` / `N(v) ⊆ N(u) ∪ N(w)` through these chunked
/// AND/ANDN scans, and the testkit bit-identity harness covers them on
/// every corpus entry as a consequence.
pub use pacds_graph::kernels;

pub use daiwu::{compute_cds_daiwu, rule_k_pass};
pub use explain::{explain, Explanation};
pub use incremental::{CdsDelta, IncrementalCds};
pub use marking::{marking, marking_into};
pub use parallel::{compute_cds_par, compute_cds_par_with, marking_par};
pub use pipeline::{
    compute_cds, compute_cds_trace, Application, CdsConfig, CdsInput, CdsTrace, PruneSchedule,
};
pub use priority::{EnergyLevel, Policy, PriorityKey};
pub use rules::{rule1_pass, rule2_pass, Rule2Semantics, RuleScratch};
pub use verify::{
    is_connected_dominating_set, is_dominating_set, verify_cds, verify_cds_scratch, CdsViolation,
};
pub use workspace::CdsWorkspace;
