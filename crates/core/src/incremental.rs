//! Incremental (localized) maintenance of the gateway set.
//!
//! The paper's locality argument: when the topology changes, "only the
//! neighbors of changing hosts need to update their gateway/non-gateway
//! status". This module turns that argument into an algorithm with a
//! proved-equal result:
//!
//! * a host's **raw marker** depends on its 1-hop structure, so it can only
//!   change within distance 1 of a changed edge endpoint or a host whose
//!   energy level changed;
//! * its **post-Rule-1 marker** additionally reads neighbours' markers and
//!   neighbourhoods — distance 2;
//! * its **final status** additionally reads neighbours' post-Rule-1
//!   markers — distance 3.
//!
//! [`IncrementalCds::update`] therefore recomputes raw markers on the
//! 1-ball around the change sources, Rule 1 on the 2-ball, Rule 2 on the
//! 3-ball, and reuses cached values everywhere else. The result is
//! *identical* to a full recomputation (property-tested), at a cost
//! proportional to the size of the affected neighbourhood instead of the
//! whole network.
//!
//! Only the [`Application::Simultaneous`](crate::Application) modes are
//! supported: a sequential in-place sweep lets a removal at one end of the
//! network influence decisions at the other, so it has no localized form.

use crate::marking::has_unconnected_neighbors;
use crate::pipeline::{Application, CdsConfig, PruneSchedule};
use crate::priority::{EnergyLevel, PriorityKey};
use crate::rules::{rule1_pass, rule2_pass, Rule2Semantics};
use pacds_graph::{Graph, NeighborBitmap, NodeId, VertexMask};
use std::collections::VecDeque;

/// Cached gateway computation that can be advanced by topology/energy
/// deltas.
///
/// ```
/// use pacds_core::{CdsConfig, IncrementalCds, Policy};
/// use pacds_graph::gen;
/// let g = gen::grid(4, 5);
/// let mut inc = IncrementalCds::new(g.clone(), vec![10; 20], CdsConfig::policy(Policy::Degree));
/// let before = inc.gateways().clone();
/// let mut h = g.clone();
/// h.add_edge(0, 6); // one new link: only its neighbourhood recomputes
/// inc.update(h, vec![10; 20]);
/// assert!(inc.last_recomputed() < 20);
/// # let _ = before;
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalCds {
    cfg: CdsConfig,
    graph: Graph,
    energy: Vec<EnergyLevel>,
    bitmap: NeighborBitmap,
    key: PriorityKey,
    raw: VertexMask,
    after1: VertexMask,
    finall: VertexMask,
    /// Statistics: vertices whose final status was recomputed in the last
    /// update (the whole vertex set for the initial computation).
    last_recomputed: usize,
}

impl IncrementalCds {
    /// Full initial computation.
    ///
    /// # Panics
    /// Panics for sequential application or fixpoint schedules — neither
    /// has a localized maintenance story.
    pub fn new(graph: Graph, energy: Vec<EnergyLevel>, cfg: CdsConfig) -> Self {
        assert_eq!(
            cfg.application,
            Application::Simultaneous,
            "sequential sweeps cannot be maintained locally"
        );
        assert_eq!(
            cfg.schedule,
            PruneSchedule::SinglePass,
            "fixpoint schedules cannot be maintained locally"
        );
        assert_eq!(energy.len(), graph.n());
        let bitmap = NeighborBitmap::build(&graph);
        let key = PriorityKey::build(cfg.policy, &graph, Some(&energy));
        let semantics = effective(&cfg);
        let raw: VertexMask = graph
            .vertices()
            .map(|v| has_unconnected_neighbors(&graph, v))
            .collect();
        let (after1, finall) = if cfg.policy.prunes() {
            let a1 = rule1_pass(&graph, &bitmap, &raw, &key, None);
            let fin = rule2_pass(&graph, &bitmap, &a1, &key, semantics, None);
            (a1, fin)
        } else {
            (raw.clone(), raw.clone())
        };
        let n = graph.n();
        Self {
            cfg,
            graph,
            energy,
            bitmap,
            key,
            raw,
            after1,
            finall,
            last_recomputed: n,
        }
    }

    /// The current gateway mask.
    pub fn gateways(&self) -> &VertexMask {
        &self.finall
    }

    /// Vertices whose final status the last [`update`](Self::update)
    /// recomputed.
    pub fn last_recomputed(&self) -> usize {
        self.last_recomputed
    }

    /// Advances to a new topology and energy table, recomputing only the
    /// affected neighbourhood. Returns the new gateway mask.
    ///
    /// Takes ownership of whole new tables; when the changes are already
    /// known as events, [`IncrementalCds::apply_deltas`] avoids both the
    /// clone and the O(n) diff (and additionally supports node spawns).
    pub fn update(&mut self, new_graph: Graph, new_energy: Vec<EnergyLevel>) -> &VertexMask {
        assert_eq!(new_graph.n(), self.graph.n(), "host set is fixed");
        assert_eq!(new_energy.len(), new_graph.n());
        let n = new_graph.n();

        // Change sources: endpoints of edge diffs + hosts whose level
        // (or degree, which feeds the ND keys) changed.
        let mut source = vec![false; n];
        let mut any = false;
        for v in 0..n as NodeId {
            if self.graph.neighbors(v) != new_graph.neighbors(v)
                || self.energy[v as usize] != new_energy[v as usize]
            {
                source[v as usize] = true;
                any = true;
            }
        }
        if !any {
            self.last_recomputed = 0;
            return &self.finall;
        }

        // Distance-from-source labels up to 3, via multi-source BFS on the
        // union of old and new adjacency (an edge removal influences hosts
        // that are no longer connected to the source in the new graph).
        let dist = ball_distances(&self.graph, &new_graph, &source, 3);

        self.graph = new_graph;
        self.energy = new_energy;
        // Bitmap rows are per-vertex adjacency: only the sources' rows
        // changed. (Energy-only sources refresh a still-valid row — cheap.)
        self.bitmap.refresh_rows(
            &self.graph,
            (0..n as NodeId).filter(|&v| source[v as usize]),
        );
        self.key = PriorityKey::build(self.cfg.policy, &self.graph, Some(&self.energy));
        self.last_recomputed = self.recompute_within(&dist);
        &self.finall
    }

    /// Advances by an explicit event list — the delta counterpart of
    /// [`IncrementalCds::update`]: no graph clone, no O(n) diff, and the
    /// only entry point that can grow the host set
    /// ([`CdsDelta::SpawnNode`]). Deltas apply in order; redundant ones
    /// (re-adding a present edge, setting an unchanged level) are free.
    ///
    /// # Panics
    /// Panics on out-of-range node ids or self-loop edges, mirroring
    /// [`Graph::add_edge`].
    pub fn apply_deltas(&mut self, deltas: &[CdsDelta]) -> &VertexMask {
        let mut source = vec![false; self.graph.n()];
        let mut any = false;
        let mut spawned = false;
        for d in deltas {
            match d {
                CdsDelta::AddEdge(u, v) => {
                    if self.graph.add_edge(*u, *v) {
                        source[*u as usize] = true;
                        source[*v as usize] = true;
                        any = true;
                    }
                }
                CdsDelta::RemoveEdge(u, v) => {
                    if self.graph.remove_edge(*u, *v) {
                        source[*u as usize] = true;
                        source[*v as usize] = true;
                        any = true;
                    }
                }
                CdsDelta::SetEnergy(v, level) => {
                    if self.energy[*v as usize] != *level {
                        self.energy[*v as usize] = *level;
                        source[*v as usize] = true;
                        any = true;
                    }
                }
                CdsDelta::Isolate(v) => {
                    if self.graph.degree(*v) > 0 {
                        for &u in self.graph.neighbors(*v) {
                            source[u as usize] = true;
                        }
                        source[*v as usize] = true;
                        any = true;
                        self.graph.isolate(*v);
                    }
                }
                CdsDelta::SpawnNode { energy, links } => {
                    let id = self.graph.add_vertex();
                    source.push(true);
                    self.energy.push(*energy);
                    self.raw.push(false);
                    self.after1.push(false);
                    self.finall.push(false);
                    for &u in links {
                        if self.graph.add_edge(id, u) {
                            source[u as usize] = true;
                        }
                    }
                    spawned = true;
                    any = true;
                }
            }
        }
        if !any {
            self.last_recomputed = 0;
            return &self.finall;
        }

        // Every removed edge's endpoints are sources, so BFS over the
        // post-delta adjacency alone reaches everything the old+new union
        // would (a removed edge only ever joins two distance-0 vertices).
        let dist = ball_distances(&self.graph, &self.graph, &source, 3);
        if spawned {
            // Spawns widen every bitmap row; rebuild rather than patch.
            self.bitmap = NeighborBitmap::build(&self.graph);
        } else {
            self.bitmap.refresh_rows(
                &self.graph,
                (0..self.graph.n() as NodeId).filter(|&v| source[v as usize]),
            );
        }
        self.key = PriorityKey::build(self.cfg.policy, &self.graph, Some(&self.energy));
        self.last_recomputed = self.recompute_within(&dist);
        &self.finall
    }

    /// Re-evaluates raw markers on the 1-ball, Rule 1 on the 2-ball and
    /// Rule 2 on the 3-ball around the BFS `dist` labels, against the
    /// already-committed graph/bitmap/key. Returns the number of hosts
    /// whose final status was recomputed.
    fn recompute_within(&mut self, dist: &[u32]) -> usize {
        let n = self.graph.n();
        let semantics = effective(&self.cfg);

        // Stage 0: raw markers on the 1-ball.
        for v in 0..n as NodeId {
            if dist[v as usize] <= 1 {
                self.raw[v as usize] = has_unconnected_neighbors(&self.graph, v);
            }
        }

        if !self.cfg.policy.prunes() {
            let mut recomputed = 0;
            for (v, &d) in dist.iter().enumerate() {
                if d <= 1 {
                    self.after1[v] = self.raw[v];
                    self.finall[v] = self.raw[v];
                    recomputed += 1;
                }
            }
            return recomputed;
        }

        // Stage 1: Rule 1 on the 2-ball. The simultaneous pass reads the
        // raw markers of neighbours, which are current out to distance 3.
        for v in 0..n as NodeId {
            if dist[v as usize] <= 2 {
                self.after1[v as usize] = self.raw[v as usize]
                    && !rule1_unmarks(&self.graph, &self.bitmap, &self.raw, &self.key, v);
            }
        }

        // Stage 2: Rule 2 on the 3-ball, reading post-Rule-1 markers.
        let mut recomputed = 0;
        for v in 0..n as NodeId {
            if dist[v as usize] <= 3 {
                recomputed += 1;
                self.finall[v as usize] = self.after1[v as usize]
                    && !rule2_unmarks(
                        &self.graph,
                        &self.bitmap,
                        &self.after1,
                        &self.key,
                        semantics,
                        v,
                    );
            }
        }
        recomputed
    }
}

/// One topology/energy event for [`IncrementalCds::apply_deltas`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CdsDelta {
    /// Insert edge `{u, v}` (no-op if already present).
    AddEdge(NodeId, NodeId),
    /// Remove edge `{u, v}` (no-op if absent).
    RemoveEdge(NodeId, NodeId),
    /// Set a host's quantised energy level (no-op if unchanged).
    SetEnergy(NodeId, EnergyLevel),
    /// Sever all of a host's links — the death event (no-op if already
    /// isolated).
    Isolate(NodeId),
    /// Append a new host with the given level, linked to `links`. Its id
    /// is the current host count.
    SpawnNode {
        /// Initial quantised energy level of the spawned host.
        energy: EnergyLevel,
        /// Hosts the spawn links to (deduplicated; must be in range).
        links: Vec<NodeId>,
    },
}

fn effective(cfg: &CdsConfig) -> Rule2Semantics {
    match cfg.policy {
        crate::Policy::Id => Rule2Semantics::MinOfThree,
        _ => cfg.rule2,
    }
}

/// Whether Rule 1 unmarks `v` given the raw marker snapshot.
fn rule1_unmarks(
    g: &Graph,
    bm: &NeighborBitmap,
    raw: &[bool],
    key: &PriorityKey,
    v: NodeId,
) -> bool {
    raw[v as usize]
        && g.neighbors(v)
            .iter()
            .any(|&u| raw[u as usize] && key.lt(v, u) && bm.closed_subset(v, u))
}

/// Whether Rule 2 unmarks `v` given the post-Rule-1 snapshot.
fn rule2_unmarks(
    g: &Graph,
    bm: &NeighborBitmap,
    after1: &[bool],
    key: &PriorityKey,
    semantics: Rule2Semantics,
    v: NodeId,
) -> bool {
    if !after1[v as usize] {
        return false;
    }
    let mut scratch = crate::rules::RuleScratch::new();
    if !crate::rules::fill_rule2_candidates(g, after1, key, semantics, v, &mut scratch.nbrs) {
        return false;
    }
    let mut tally = crate::rules::Rule2Tally::default();
    let decided = crate::rules::rule2_decides_removal(bm, key, semantics, v, &mut scratch, &mut tally);
    tally.flush();
    decided
}

/// Multi-source BFS distances capped at `cap`, over the union of the old
/// and new adjacency (returns `cap + 1` for everything farther).
fn ball_distances(old: &Graph, new: &Graph, source: &[bool], cap: u32) -> Vec<u32> {
    let n = old.n();
    let mut dist = vec![cap + 1; n];
    let mut queue = VecDeque::new();
    for v in 0..n {
        if source[v] {
            dist[v] = 0;
            queue.push_back(v as NodeId);
        }
    }
    while let Some(v) = queue.pop_front() {
        let dv = dist[v as usize];
        if dv == cap {
            continue;
        }
        for &u in old.neighbors(v).iter().chain(new.neighbors(v)) {
            if dist[u as usize] > dv + 1 {
                dist[u as usize] = dv + 1;
                queue.push_back(u);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compute_cds, CdsInput, Policy};
    use pacds_graph::gen;
    use rand::{Rng, SeedableRng};

    fn full(g: &Graph, e: &[u64], cfg: &CdsConfig) -> VertexMask {
        compute_cds(&CdsInput::with_energy(g, e), cfg)
    }

    #[test]
    fn no_change_recomputes_nothing() {
        let g = gen::grid(4, 5);
        let e = vec![5u64; g.n()];
        let mut inc = IncrementalCds::new(g.clone(), e.clone(), CdsConfig::policy(Policy::Id));
        assert_eq!(inc.last_recomputed(), g.n());
        inc.update(g.clone(), e.clone());
        assert_eq!(inc.last_recomputed(), 0);
        assert_eq!(inc.gateways(), &full(&g, &e, &CdsConfig::policy(Policy::Id)));
    }

    #[test]
    fn single_edge_change_matches_full_recompute() {
        let g = gen::grid(5, 6);
        let e = vec![5u64; g.n()];
        let cfg = CdsConfig::policy(Policy::Degree);
        let mut inc = IncrementalCds::new(g.clone(), e.clone(), cfg);
        let mut h = g.clone();
        h.add_edge(0, 7); // a chord
        inc.update(h.clone(), e.clone());
        assert_eq!(inc.gateways(), &full(&h, &e, &cfg));
        assert!(
            inc.last_recomputed() < h.n(),
            "a single chord must not dirty the whole 5x6 grid"
        );
        // And removing it again returns to the original set.
        inc.update(g.clone(), e.clone());
        assert_eq!(inc.gateways(), &full(&g, &e, &cfg));
    }

    #[test]
    fn energy_change_dirties_locally() {
        let g = gen::grid(5, 6);
        let mut e = vec![5u64; g.n()];
        let cfg = CdsConfig::policy(Policy::Energy);
        let mut inc = IncrementalCds::new(g.clone(), e.clone(), cfg);
        e[12] = 1;
        inc.update(g.clone(), e.clone());
        assert_eq!(inc.gateways(), &full(&g, &e, &cfg));
        assert!(inc.last_recomputed() < g.n());
    }

    #[test]
    fn random_mobility_trace_stays_equal_to_full() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(123);
        for policy in [Policy::Id, Policy::Degree, Policy::Energy, Policy::EnergyDegree] {
            for cfg in [CdsConfig::policy(policy), CdsConfig::paper(policy)] {
                let n = 30;
                let mut g = gen::connected_gnp(&mut rng, n, 0.12, 8);
                let mut e: Vec<u64> = (0..n as u64).map(|i| i % 7).collect();
                let mut inc = IncrementalCds::new(g.clone(), e.clone(), cfg);
                for _ in 0..25 {
                    // Random perturbation: flip an edge, sometimes nudge a level.
                    let a = rng.random_range(0..n as NodeId);
                    let b = rng.random_range(0..n as NodeId);
                    if a != b {
                        if g.has_edge(a, b) {
                            g.remove_edge(a, b);
                        } else {
                            g.add_edge(a, b);
                        }
                    }
                    if rng.random_range(0..3) == 0 {
                        let v = rng.random_range(0..n);
                        e[v] = rng.random_range(0..7);
                    }
                    inc.update(g.clone(), e.clone());
                    assert_eq!(
                        inc.gateways(),
                        &full(&g, &e, &cfg),
                        "{policy:?} {cfg:?} diverged from full recompute"
                    );
                }
            }
        }
    }

    #[test]
    fn no_pruning_policy_is_supported() {
        let g = gen::cycle(8);
        let e = vec![1u64; 8];
        let cfg = CdsConfig::policy(Policy::NoPruning);
        let mut inc = IncrementalCds::new(g.clone(), e.clone(), cfg);
        let mut h = g.clone();
        h.add_edge(0, 4);
        inc.update(h.clone(), e.clone());
        assert_eq!(inc.gateways(), &full(&h, &e, &cfg));
    }

    #[test]
    #[should_panic]
    fn sequential_application_is_rejected() {
        let g = gen::path(4);
        IncrementalCds::new(g, vec![0; 4], CdsConfig::sequential(Policy::Id));
    }

    #[test]
    #[should_panic]
    fn fixpoint_schedule_is_rejected() {
        let g = gen::path(4);
        IncrementalCds::new(g, vec![0; 4], CdsConfig::fixpoint(Policy::Id));
    }
}
