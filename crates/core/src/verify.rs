//! Verification of the CDS properties the paper proves.

use pacds_graph::{algo, Graph, Neighbors, NodeId};
use std::collections::VecDeque;

/// Why a vertex set fails to be a connected dominating set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CdsViolation {
    /// `witness` is neither in the set nor adjacent to any member.
    NotDominating { witness: NodeId },
    /// The induced subgraph is disconnected.
    NotConnected,
    /// The set is empty but the graph has undominated vertices.
    Empty,
}

impl std::fmt::Display for CdsViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CdsViolation::NotDominating { witness } => {
                write!(f, "vertex {witness} is not dominated")
            }
            CdsViolation::NotConnected => write!(f, "induced subgraph is disconnected"),
            CdsViolation::Empty => write!(f, "set is empty but graph is non-trivial"),
        }
    }
}

/// Whether `mask` is a dominating set of `g`.
pub fn is_dominating_set<G: Neighbors + ?Sized>(g: &G, mask: &[bool]) -> bool {
    dominating_witness(g, mask).is_none()
}

/// A vertex not dominated by `mask`, if any.
fn dominating_witness<G: Neighbors + ?Sized>(g: &G, mask: &[bool]) -> Option<NodeId> {
    for v in g.vertices() {
        if mask[v as usize] {
            continue;
        }
        if !g.neighbors(v).iter().any(|&u| mask[u as usize]) {
            return Some(v);
        }
    }
    None
}

/// Whether `mask` is a *connected* dominating set of `g`.
pub fn is_connected_dominating_set<G: Neighbors + ?Sized>(g: &G, mask: &[bool]) -> bool {
    verify_cds(g, mask).is_ok()
}

/// Checks domination and induced connectivity, reporting the first failure.
///
/// The complete graph is special-cased to match the paper: the marking
/// process marks nothing on `K_n`, and routing needs no gateways there, so
/// an empty set on a complete graph verifies.
pub fn verify_cds<G: Neighbors + ?Sized>(g: &G, mask: &[bool]) -> Result<(), CdsViolation> {
    verify_cds_scratch(g, mask, &mut Vec::new(), &mut VecDeque::new())
}

/// [`verify_cds`] with caller-provided BFS scratch (visited flags + queue),
/// so the steady-state interval loop can verify every computed set without
/// heap allocation. Buffer contents on entry are ignored.
pub fn verify_cds_scratch<G: Neighbors + ?Sized>(
    g: &G,
    mask: &[bool],
    seen: &mut Vec<bool>,
    queue: &mut VecDeque<NodeId>,
) -> Result<(), CdsViolation> {
    let _t = pacds_obs::phase_timer(pacds_obs::Phase::Verify);
    pacds_obs::inc(pacds_obs::Counter::VerifyRuns);
    let result = verify_cds_scratch_inner(g, mask, seen, queue);
    if result.is_err() {
        pacds_obs::inc(pacds_obs::Counter::VerifyFailures);
    }
    result
}

fn verify_cds_scratch_inner<G: Neighbors + ?Sized>(
    g: &G,
    mask: &[bool],
    seen: &mut Vec<bool>,
    queue: &mut VecDeque<NodeId>,
) -> Result<(), CdsViolation> {
    assert_eq!(mask.len(), g.n());
    if mask.iter().all(|&b| !b) {
        return if g.is_complete() {
            Ok(())
        } else {
            Err(CdsViolation::Empty)
        };
    }
    if let Some(witness) = dominating_witness(g, mask) {
        return Err(CdsViolation::NotDominating { witness });
    }
    if !algo::is_connected_within_scratch(g, mask, seen, queue) {
        return Err(CdsViolation::NotConnected);
    }
    Ok(())
}

/// Property 3 of the paper: for every vertex pair, *some* shortest path
/// uses only gateways as intermediates. Equivalently, the shortest path
/// restricted to gateway intermediates has the same hop count as the
/// unrestricted one. Holds for the raw marking output.
pub fn preserves_shortest_paths(g: &Graph, mask: &[bool]) -> bool {
    for s in g.vertices() {
        let free = algo::bfs_distances(g, s);
        for t in g.vertices() {
            if s >= t || free[t as usize] == u32::MAX {
                continue;
            }
            match algo::restricted_shortest_path(g, s, t, |v| mask[v as usize]) {
                Ok(path) => {
                    if (path.len() - 1) as u32 != free[t as usize] {
                        return false;
                    }
                }
                Err(_) => return false,
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::marking::marking;
    use pacds_graph::gen;

    #[test]
    fn domination_detects_witness() {
        let g = gen::path(4);
        assert!(is_dominating_set(&g, &[false, true, true, false]));
        assert!(!is_dominating_set(&g, &[true, false, false, false]));
        assert_eq!(dominating_witness(&g, &[true, false, false, false]), Some(2));
    }

    #[test]
    fn verify_rejects_disconnected_set() {
        let g = gen::path(5);
        // {0 dominated by 1, ...}: {1, 3} dominates but is disconnected.
        assert_eq!(
            verify_cds(&g, &[false, true, false, true, false]),
            Err(CdsViolation::NotConnected)
        );
    }

    #[test]
    fn verify_accepts_interior_of_path() {
        let g = gen::path(5);
        assert!(verify_cds(&g, &[false, true, true, true, false]).is_ok());
    }

    #[test]
    fn empty_set_on_complete_graph_is_ok() {
        let g = gen::complete(4);
        assert!(verify_cds(&g, &[false; 4]).is_ok());
        let h = gen::path(4);
        assert_eq!(verify_cds(&h, &[false; 4]), Err(CdsViolation::Empty));
    }

    #[test]
    fn marking_output_verifies_on_classic_families() {
        for g in [gen::path(7), gen::cycle(9), gen::star(6), gen::grid(3, 5)] {
            let m = marking(&g);
            assert!(verify_cds(&g, &m).is_ok());
        }
    }

    #[test]
    fn marking_output_preserves_shortest_paths() {
        for g in [gen::path(7), gen::cycle(9), gen::grid(3, 4)] {
            let m = marking(&g);
            assert!(preserves_shortest_paths(&g, &m));
        }
    }

    #[test]
    fn property3_fails_for_too_small_sets() {
        // On a 6-cycle, {0, 1} is not even dominating; {0,1,2,3} misses the
        // shortest path 5-4 ... pick a set that dominates but breaks P3:
        // C6 with chords is overkill — use path: interior minus one.
        let g = gen::cycle(6);
        let mask = [true, true, true, true, false, false];
        // 4 and 5 are dominated (4 by 3, 5 by 0) and the set is connected,
        // but the shortest path 4-5 (1 hop) still works since endpoints are
        // exempt... check a pair that must detour: 3 to 5 via 4 is blocked.
        assert!(verify_cds(&g, &mask).is_ok());
        assert!(!preserves_shortest_paths(&g, &mask));
    }
}
