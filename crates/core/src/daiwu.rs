//! The Dai-Wu generalised pruning rule ("Rule k").
//!
//! Follow-up work to this paper (Dai & Wu, *An Extended Localized
//! Algorithm for Connected Dominating Set Formation in Ad Hoc Wireless
//! Networks*) replaces the pair-based Rule 1/Rule 2 with a single rule
//! that closes exactly the soundness gap documented in
//! [`crate::rules::Rule2Semantics::CaseAnalysis`]:
//!
//! > a marked host `v` unmarks itself iff its open neighbourhood is
//! > covered by a **connected** set `C` of marked neighbours, each with
//! > **strictly higher priority** than `v`
//! > (`N(v) ⊆ C ∪ ∪_{u∈C} N(u)`).
//!
//! Because any covering set can be grown to the full connected component
//! of the higher-priority marked neighbourhood, it suffices to test each
//! component of `G[H]`, `H = {u ∈ N(v) : marked(u), key(u) > key(v)}`.
//!
//! With `C = {u}` this is Rule 1; with `C = {u, w}` it is (the sound
//! variant of) Rule 2; larger `C` prunes configurations the paper's rules
//! cannot. Simultaneous application is safe for any strict total priority
//! order — the coverage relation composes along decreasing priority.

use crate::priority::PriorityKey;
use pacds_graph::{Graph, NeighborBitmap, NodeId, VertexMask};

/// One simultaneous Rule-k pass over the marked snapshot.
///
/// Returns the new marked mask; `removed` (if provided) collects the
/// unmarked vertices in id order.
pub fn rule_k_pass(
    g: &Graph,
    bm: &NeighborBitmap,
    marked: &[bool],
    key: &PriorityKey,
    mut removed: Option<&mut Vec<NodeId>>,
) -> VertexMask {
    let mut next = marked.to_vec();
    let mut higher: Vec<NodeId> = Vec::new();
    for v in g.vertices() {
        if !marked[v as usize] {
            continue;
        }
        higher.clear();
        higher.extend(
            g.neighbors(v)
                .iter()
                .copied()
                .filter(|&u| marked[u as usize] && key.lt(v, u)),
        );
        if higher.is_empty() {
            continue;
        }
        if some_component_covers(g, bm, v, &higher) {
            next[v as usize] = false;
            if let Some(r) = removed.as_deref_mut() {
                r.push(v);
            }
        }
    }
    next
}

/// Whether some connected component of `G[higher]` covers `N(v)`.
fn some_component_covers(
    g: &Graph,
    bm: &NeighborBitmap,
    v: NodeId,
    higher: &[NodeId],
) -> bool {
    let k = higher.len();
    let mut seen = vec![false; k];
    let mut component: Vec<NodeId> = Vec::with_capacity(k);
    let mut stack: Vec<usize> = Vec::new();
    for start in 0..k {
        if seen[start] {
            continue;
        }
        component.clear();
        stack.push(start);
        seen[start] = true;
        while let Some(i) = stack.pop() {
            component.push(higher[i]);
            for (j, &u) in higher.iter().enumerate() {
                if !seen[j] && g.has_edge(higher[i], u) {
                    seen[j] = true;
                    stack.push(j);
                }
            }
        }
        if bm.union_covers(v, &component) {
            return true;
        }
    }
    false
}

/// Convenience: marking followed by one Rule-k pass.
pub fn compute_cds_daiwu(
    g: &Graph,
    energy: Option<&[crate::EnergyLevel]>,
    policy: crate::Policy,
) -> VertexMask {
    let marked = crate::marking(g);
    if !policy.prunes() {
        return marked;
    }
    let bm = NeighborBitmap::build(g);
    let key = PriorityKey::build(policy, g, energy);
    rule_k_pass(g, &bm, &marked, &key, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compute_cds, verify_cds, CdsConfig, CdsInput, Policy};
    use pacds_graph::{gen, mask_to_vec};
    use rand::SeedableRng;

    #[test]
    fn subsumes_rule1_on_twin_hubs() {
        // Twin hubs with equal closed neighbourhoods: Rule 1 removes the
        // lower id; so does Rule k (C = {other hub}).
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3)]);
        let cds = compute_cds_daiwu(&g, None, Policy::Id);
        assert_eq!(mask_to_vec(&cds), vec![1]);
    }

    #[test]
    fn subsumes_rule2_on_covered_triple() {
        // v=0 covered by the pair {1, 2} (both higher id): Rule k removes 0.
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 4)]);
        let cds = compute_cds_daiwu(&g, None, Policy::Id);
        assert!(!cds[0]);
        assert!(verify_cds(&g, &cds).is_ok());
    }

    #[test]
    fn prunes_three_way_coverage_the_paper_rules_miss() {
        // Hub 0 with six spokes arranged so that no *pair* of marked
        // higher-priority neighbours covers N(0), but a connected triple
        // does. Vertices 1,2,3 form a triangle around 0; each also owns a
        // private pendant (4,5,6) adjacent to 0.
        // N(0) = {1,2,3,4,5,6}; N(1) ⊇ {4}, N(2) ⊇ {5}, N(3) ⊇ {6}.
        let g = Graph::from_edges(
            7,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (0, 4),
                (0, 5),
                (0, 6),
                (1, 2),
                (1, 3),
                (2, 3),
                (1, 4),
                (2, 5),
                (3, 6),
            ],
        );
        // Pairs fail: e.g. {1,2} misses 6. The triple {1,2,3} covers.
        let pair_based = compute_cds(&CdsInput::new(&g), &CdsConfig::policy(Policy::Id));
        assert!(pair_based[0], "the paper's rules keep the hub");
        let cds = compute_cds_daiwu(&g, None, Policy::Id);
        assert!(!cds[0], "Rule k removes the hub via the triple");
        assert!(verify_cds(&g, &cds).is_ok());
    }

    #[test]
    fn requires_connected_covering_set() {
        // Path 1-0-2 with pendants: 0's higher-priority neighbours {1,2}
        // are NOT adjacent, so even though together they'd cover N(0),
        // Rule k must keep 0 (no connected covering component).
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (1, 3), (2, 4)]);
        let cds = compute_cds_daiwu(&g, None, Policy::Id);
        assert!(cds[0], "disconnected cover must not fire");
        assert!(verify_cds(&g, &cds).is_ok());
    }

    #[test]
    fn always_yields_a_cds_and_never_beats_marking() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        for trial in 0..40 {
            let n = 8 + trial % 40;
            let g = gen::connected_gnp(&mut rng, n, 0.15, 8);
            let energy: Vec<u64> = (0..n as u64).map(|i| i % 5).collect();
            for policy in [Policy::Id, Policy::Degree, Policy::Energy, Policy::EnergyDegree] {
                let cds = compute_cds_daiwu(&g, Some(&energy), policy);
                assert!(verify_cds(&g, &cds).is_ok(), "trial {trial} {policy:?}");
                let marked = crate::marking(&g);
                for v in 0..n {
                    assert!(!cds[v] || marked[v]);
                }
            }
        }
    }

    #[test]
    fn usually_no_larger_than_the_paper_rules() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(32);
        let mut wins = 0;
        let trials = 25;
        for _ in 0..trials {
            let g = gen::connected_gnp(&mut rng, 40, 0.12, 8);
            let count = |m: &[bool]| m.iter().filter(|&&b| b).count();
            let pair = count(&compute_cds(
                &CdsInput::new(&g),
                &CdsConfig::policy(Policy::Degree),
            ));
            let k = count(&compute_cds_daiwu(&g, None, Policy::Degree));
            if k <= pair {
                wins += 1;
            }
        }
        assert!(
            wins * 10 >= trials * 9,
            "Rule k should rarely lose to the pair rules ({wins}/{trials})"
        );
    }
}
