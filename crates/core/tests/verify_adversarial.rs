//! Adversarial tests for the verifier itself: known-bad vertex sets must
//! be rejected with the right violation, so that a broken verifier cannot
//! silently bless a broken algorithm.

use pacds_core::{verify_cds, verify_cds_scratch, CdsViolation};
use pacds_graph::{gen, vec_to_mask, Graph};
use std::collections::VecDeque;

#[test]
fn leaves_of_a_star_dominate_but_do_not_connect() {
    let g = gen::star(5); // hub 0, leaves 1..=4
    let mask = vec_to_mask(5, &[1, 2, 3, 4]);
    assert_eq!(verify_cds(&g, &mask), Err(CdsViolation::NotConnected));
}

#[test]
fn dropping_a_pendant_dominator_names_the_witness() {
    // Path 0-1-2-3-4: {1,2,3} is the unique minimum CDS. Removing 3
    // leaves vertex 4 undominated, and 4 must be the reported witness.
    let g = gen::path(5);
    let mask = vec_to_mask(5, &[1, 2]);
    assert_eq!(
        verify_cds(&g, &mask),
        Err(CdsViolation::NotDominating { witness: 4 })
    );
}

#[test]
fn witness_is_the_first_undominated_vertex() {
    let g = gen::path(7);
    // {4, 5} leaves 0, 1, 2 undominated; 0 comes first.
    let mask = vec_to_mask(7, &[4, 5]);
    assert_eq!(
        verify_cds(&g, &mask),
        Err(CdsViolation::NotDominating { witness: 0 })
    );
}

#[test]
fn empty_set_is_rejected_exactly_when_the_graph_is_incomplete() {
    assert_eq!(
        verify_cds(&gen::path(3), &[false; 3]),
        Err(CdsViolation::Empty)
    );
    assert_eq!(verify_cds(&gen::complete(4), &[false; 4]), Ok(()));
    assert_eq!(verify_cds(&Graph::new(1), &[false; 1]), Ok(()));
    assert_eq!(verify_cds(&Graph::new(0), &Vec::new()), Ok(()));
    // Two isolated vertices: empty set rejected (not complete), and no
    // non-empty set helps either.
    let iso = Graph::new(2);
    assert_eq!(verify_cds(&iso, &[false; 2]), Err(CdsViolation::Empty));
    assert!(verify_cds(&iso, &[true, false]).is_err());
}

#[test]
fn bridged_cliques_without_the_bridge_are_disconnected() {
    // Two K_4s joined by the edge 0-4. Picking one dominator inside each
    // clique dominates everything but induces two components.
    let mut g = Graph::new(8);
    for base in [0u32, 4] {
        for i in base..base + 4 {
            for j in i + 1..base + 4 {
                g.add_edge(i, j);
            }
        }
    }
    g.add_edge(0, 4);
    let mask = vec_to_mask(8, &[1, 5]);
    assert_eq!(verify_cds(&g, &mask), Err(CdsViolation::NotConnected));
    // The bridge endpoints themselves form a valid CDS.
    assert_eq!(verify_cds(&g, &vec_to_mask(8, &[0, 4])), Ok(()));
}

#[test]
fn set_member_in_a_foreign_component_breaks_connectivity() {
    // Disconnected graph: path 0-1-2 plus isolated triangle 3-4-5. A mask
    // spanning both components can never induce a connected subgraph.
    let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5), (3, 5)]);
    let mask = vec_to_mask(6, &[1, 4]);
    assert_eq!(verify_cds(&g, &mask), Err(CdsViolation::NotConnected));
}

#[test]
fn scratch_variant_is_immune_to_dirty_buffers() {
    let g = gen::path(5);
    let good = vec_to_mask(5, &[1, 2, 3]);
    let bad = vec_to_mask(5, &[1, 3]);
    let mut seen = vec![true; 64]; // poisoned: stale `true` flags
    let mut queue: VecDeque<u32> = (0..50).collect(); // stale entries
    assert_eq!(verify_cds_scratch(&g, &good, &mut seen, &mut queue), Ok(()));
    // Reuse the now-warm buffers for a failing case and back again.
    assert!(verify_cds_scratch(&g, &bad, &mut seen, &mut queue).is_err());
    assert_eq!(verify_cds_scratch(&g, &good, &mut seen, &mut queue), Ok(()));
}

#[test]
fn full_vertex_set_is_valid_exactly_when_the_graph_is_connected() {
    assert_eq!(verify_cds(&gen::path(6), &[true; 6]), Ok(()));
    let disconnected = Graph::from_edges(4, &[(0, 1), (2, 3)]);
    assert_eq!(
        verify_cds(&disconnected, &[true; 4]),
        Err(CdsViolation::NotConnected)
    );
}

#[test]
fn single_vertex_dominator_must_reach_everything() {
    let g = gen::star(6);
    assert_eq!(verify_cds(&g, &vec_to_mask(6, &[0])), Ok(()));
    assert_eq!(
        verify_cds(&g, &vec_to_mask(6, &[1])),
        Err(CdsViolation::NotDominating { witness: 2 })
    );
}
