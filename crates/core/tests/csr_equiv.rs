//! CSR / workspace equivalence properties.
//!
//! The zero-allocation hot path recomputes the CDS through
//! [`CdsWorkspace`] over a [`CsrGraph`], while the reference pipeline is
//! [`compute_cds`] over an adjacency-list [`Graph`]. These tests pin the
//! load-bearing refactor invariant: every rule pass and the full pipeline
//! are **bit-identical** across both graph backends and both entry points,
//! for every policy, both Rule 2 semantics, both application orders, and
//! both schedules.

use pacds_core::{
    compute_cds, marking, rule1_pass, rule2_pass, Application, CdsConfig, CdsInput, CdsWorkspace,
    Policy, PriorityKey, PruneSchedule, Rule2Semantics,
};
use pacds_graph::{gen, Graph, NeighborBitmap};
use proptest::prelude::*;
use rand::SeedableRng;

/// A random connected GNP graph plus a deterministic energy assignment.
fn connected_graph_with_energy() -> impl Strategy<Value = (Graph, Vec<u64>)> {
    (2usize..48, 0.02f64..0.6, any::<u64>()).prop_map(|(n, p, seed)| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let g = gen::connected_gnp(&mut rng, n, p, 8);
        let energy: Vec<u64> = (0..n)
            .map(|i| (seed.wrapping_mul(i as u64 + 1) >> 17) % 10)
            .collect();
        (g, energy)
    })
}

/// A random unit-disk graph in the paper's arena (largest component kept).
fn unit_disk_component() -> impl Strategy<Value = (Graph, Vec<u64>)> {
    (3usize..60, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let bounds = pacds_geom::Rect::paper_arena();
        let pts = pacds_geom::placement::uniform_points(&mut rng, bounds, n);
        let g = gen::unit_disk(bounds, 25.0, &pts);
        let keep = pacds_graph::algo::largest_component(&g);
        let (sub, _) = g.induced(&keep);
        let energy: Vec<u64> = (0..sub.n())
            .map(|i| (seed.wrapping_mul(i as u64 + 3) >> 13) % 8)
            .collect();
        (sub, energy)
    })
}

/// Every (policy, semantics, application, schedule) combination.
fn all_configs() -> Vec<CdsConfig> {
    let mut cfgs = Vec::new();
    for policy in Policy::ALL {
        for rule2 in [Rule2Semantics::MinOfThree, Rule2Semantics::CaseAnalysis] {
            for application in [Application::Simultaneous, Application::Sequential] {
                for schedule in [PruneSchedule::SinglePass, PruneSchedule::Fixpoint] {
                    cfgs.push(CdsConfig { policy, schedule, rule2, application });
                }
            }
        }
    }
    cfgs
}

/// Workspace-over-CSR and workspace-over-Graph both match the allocating
/// Graph-based pipeline, bit for bit, on every configuration. One
/// workspace is reused across all configurations to also exercise buffer
/// reuse between differently-shaped computations.
fn assert_pipeline_equivalence(g: &Graph, energy: &[u64]) {
    let csr = pacds_graph::CsrGraph::from(g);
    let mut ws = CdsWorkspace::new();
    for cfg in all_configs() {
        let reference = compute_cds(&CdsInput { graph: g, energy: Some(energy) }, &cfg);
        let via_csr = ws.compute(&csr, Some(energy), &cfg).clone();
        assert_eq!(
            reference, via_csr,
            "workspace-over-CSR diverged from compute_cds under {cfg:?} on {g:?}"
        );
        let via_graph = ws.compute(g, Some(energy), &cfg);
        assert_eq!(
            &reference, via_graph,
            "workspace-over-Graph diverged from compute_cds under {cfg:?} on {g:?}"
        );
    }
}

/// Marking and the individual simultaneous rule passes agree across the
/// two `Neighbors` backends for every policy and both Rule 2 semantics.
fn assert_pass_equivalence(g: &Graph, energy: &[u64]) {
    let csr = pacds_graph::CsrGraph::from(g);
    let marked_g = marking(g);
    let marked_c = marking(&csr);
    assert_eq!(marked_g, marked_c, "marking diverged across backends on {g:?}");

    let bm_g = NeighborBitmap::build(g);
    let bm_c = NeighborBitmap::build(&csr);
    for policy in Policy::ALL {
        if !policy.prunes() {
            continue;
        }
        let key_g = PriorityKey::build(policy, g, Some(energy));
        let key_c = PriorityKey::build(policy, &csr, Some(energy));
        let after1_g = rule1_pass(g, &bm_g, &marked_g, &key_g, None);
        let after1_c = rule1_pass(&csr, &bm_c, &marked_c, &key_c, None);
        assert_eq!(
            after1_g, after1_c,
            "rule 1 diverged across backends under {policy:?} on {g:?}"
        );
        for semantics in [Rule2Semantics::MinOfThree, Rule2Semantics::CaseAnalysis] {
            let after2_g = rule2_pass(g, &bm_g, &after1_g, &key_g, semantics, None);
            let after2_c = rule2_pass(&csr, &bm_c, &after1_c, &key_c, semantics, None);
            assert_eq!(
                after2_g, after2_c,
                "rule 2 ({semantics:?}) diverged across backends under {policy:?} on {g:?}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    #[test]
    fn pipeline_bit_identical_on_gnp((g, energy) in connected_graph_with_energy()) {
        assert_pipeline_equivalence(&g, &energy);
    }

    #[test]
    fn pipeline_bit_identical_on_unit_disk((g, energy) in unit_disk_component()) {
        assert_pipeline_equivalence(&g, &energy);
    }

    #[test]
    fn rule_passes_bit_identical_on_gnp((g, energy) in connected_graph_with_energy()) {
        assert_pass_equivalence(&g, &energy);
    }

    #[test]
    fn rule_passes_bit_identical_on_unit_disk((g, energy) in unit_disk_component()) {
        assert_pass_equivalence(&g, &energy);
    }
}
