//! Edge cases for incremental maintenance under node deaths: deaths that
//! disconnect the network, deaths of current gateways, and back-to-back
//! deaths — each checked bit-for-bit against a full recompute.

use pacds_core::{compute_cds, CdsConfig, CdsInput, IncrementalCds, Policy};
use pacds_graph::{gen, mask_to_vec, Graph};

fn full(g: &Graph, energy: &[u64], cfg: &CdsConfig) -> Vec<bool> {
    compute_cds(&CdsInput::with_energy(g, energy), cfg)
}

/// Two K_4s joined through a cut vertex 3 (member of the left clique,
/// bridged to 4 in the right one): killing 3 disconnects the network.
fn bridged() -> Graph {
    let mut g = Graph::new(8);
    for base in [0u32, 4] {
        for i in base..base + 4 {
            for j in i + 1..base + 4 {
                g.add_edge(i, j);
            }
        }
    }
    g.add_edge(3, 4);
    g
}

#[test]
fn death_that_disconnects_the_network_matches_full_recompute() {
    let g0 = bridged();
    let energy: Vec<u64> = (0..8).map(|v| v * 7 % 13).collect();
    for policy in Policy::ALL {
        let cfg = CdsConfig::policy(policy);
        let mut inc = IncrementalCds::new(g0.clone(), energy.clone(), cfg);
        let mut g = g0.clone();
        g.isolate(3); // severs the only inter-clique link
        let got = inc.update(g.clone(), energy.clone()).clone();
        assert_eq!(got, full(&g, &energy, &cfg), "{policy:?}");
    }
}

#[test]
fn death_of_a_current_gateway_matches_full_recompute() {
    // Path 0-1-2-3-4: the gateways are exactly the interior vertices.
    let g0 = gen::path(5);
    let energy = vec![9u64, 1, 5, 3, 7];
    let cfg = CdsConfig::policy(Policy::EnergyDegree);
    let mut inc = IncrementalCds::new(g0.clone(), energy.clone(), cfg);
    let before = mask_to_vec(inc.gateways());
    assert_eq!(before, vec![1, 2, 3]);
    // Kill gateway 2 — the path splits and both halves must re-settle.
    let mut g = g0.clone();
    g.isolate(2);
    let got = inc.update(g.clone(), energy.clone()).clone();
    assert_eq!(got, full(&g, &energy, &cfg));
}

#[test]
fn back_to_back_deaths_in_one_update_match_full_recompute() {
    // A 4x4 grid; kill two adjacent interior hosts in a single update so
    // their dirty balls overlap, then two far-apart hosts so they don't.
    let g0 = gen::grid(4, 4);
    let energy: Vec<u64> = (0..16).map(|v| (v * 11 + 3) % 17).collect();
    for policy in [Policy::Id, Policy::Degree, Policy::EnergyDegree] {
        let cfg = CdsConfig::policy(policy);
        let mut inc = IncrementalCds::new(g0.clone(), energy.clone(), cfg);

        let mut g = g0.clone();
        g.isolate(5);
        g.isolate(6); // adjacent interior vertices, overlapping dirty balls
        let got = inc.update(g.clone(), energy.clone()).clone();
        assert_eq!(got, full(&g, &energy, &cfg), "{policy:?} adjacent pair");

        g.isolate(0);
        g.isolate(15); // opposite corners, disjoint dirty balls
        let got = inc.update(g.clone(), energy.clone()).clone();
        assert_eq!(got, full(&g, &energy, &cfg), "{policy:?} far pair");
    }
}

#[test]
fn cascading_deaths_down_to_an_empty_network_match_full_recompute() {
    let g0 = gen::grid(3, 3);
    let energy: Vec<u64> = (0..9).map(|v| v + 1).collect();
    let cfg = CdsConfig::policy(Policy::Degree);
    let mut inc = IncrementalCds::new(g0.clone(), energy.clone(), cfg);
    let mut g = g0.clone();
    for v in 0..9u32 {
        g.isolate(v);
        let got = inc.update(g.clone(), energy.clone()).clone();
        assert_eq!(got, full(&g, &energy, &cfg), "after killing 0..={v}");
    }
    assert!(inc.gateways().iter().all(|&b| !b));
}

#[test]
fn death_then_revival_returns_to_the_original_gateways() {
    // The host set is fixed, so a "revived" host is modelled by restoring
    // its links; the maintained mask must equal the original computation.
    let g0 = bridged();
    let energy: Vec<u64> = (0..8).map(|v| (v * 5 + 2) % 11).collect();
    let cfg = CdsConfig::policy(Policy::Energy);
    let mut inc = IncrementalCds::new(g0.clone(), energy.clone(), cfg);
    let original = inc.gateways().clone();
    let mut g = g0.clone();
    g.isolate(3);
    inc.update(g, energy.clone());
    let got = inc.update(g0.clone(), energy.clone()).clone();
    assert_eq!(got, original);
    assert_eq!(got, full(&g0, &energy, &cfg));
}
