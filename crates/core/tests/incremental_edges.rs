//! Edge cases for incremental maintenance under node deaths: deaths that
//! disconnect the network, deaths of current gateways, and back-to-back
//! deaths — each checked bit-for-bit against a full recompute.

use pacds_core::{compute_cds, CdsConfig, CdsDelta, CdsInput, IncrementalCds, Policy};
use pacds_graph::{gen, mask_to_vec, Graph};

fn full(g: &Graph, energy: &[u64], cfg: &CdsConfig) -> Vec<bool> {
    compute_cds(&CdsInput::with_energy(g, energy), cfg)
}

/// Two K_4s joined through a cut vertex 3 (member of the left clique,
/// bridged to 4 in the right one): killing 3 disconnects the network.
fn bridged() -> Graph {
    let mut g = Graph::new(8);
    for base in [0u32, 4] {
        for i in base..base + 4 {
            for j in i + 1..base + 4 {
                g.add_edge(i, j);
            }
        }
    }
    g.add_edge(3, 4);
    g
}

#[test]
fn death_that_disconnects_the_network_matches_full_recompute() {
    let g0 = bridged();
    let energy: Vec<u64> = (0..8).map(|v| v * 7 % 13).collect();
    for policy in Policy::ALL {
        let cfg = CdsConfig::policy(policy);
        let mut inc = IncrementalCds::new(g0.clone(), energy.clone(), cfg);
        let mut g = g0.clone();
        g.isolate(3); // severs the only inter-clique link
        let got = inc.update(g.clone(), energy.clone()).clone();
        assert_eq!(got, full(&g, &energy, &cfg), "{policy:?}");
    }
}

#[test]
fn death_of_a_current_gateway_matches_full_recompute() {
    // Path 0-1-2-3-4: the gateways are exactly the interior vertices.
    let g0 = gen::path(5);
    let energy = vec![9u64, 1, 5, 3, 7];
    let cfg = CdsConfig::policy(Policy::EnergyDegree);
    let mut inc = IncrementalCds::new(g0.clone(), energy.clone(), cfg);
    let before = mask_to_vec(inc.gateways());
    assert_eq!(before, vec![1, 2, 3]);
    // Kill gateway 2 — the path splits and both halves must re-settle.
    let mut g = g0.clone();
    g.isolate(2);
    let got = inc.update(g.clone(), energy.clone()).clone();
    assert_eq!(got, full(&g, &energy, &cfg));
}

#[test]
fn back_to_back_deaths_in_one_update_match_full_recompute() {
    // A 4x4 grid; kill two adjacent interior hosts in a single update so
    // their dirty balls overlap, then two far-apart hosts so they don't.
    let g0 = gen::grid(4, 4);
    let energy: Vec<u64> = (0..16).map(|v| (v * 11 + 3) % 17).collect();
    for policy in [Policy::Id, Policy::Degree, Policy::EnergyDegree] {
        let cfg = CdsConfig::policy(policy);
        let mut inc = IncrementalCds::new(g0.clone(), energy.clone(), cfg);

        let mut g = g0.clone();
        g.isolate(5);
        g.isolate(6); // adjacent interior vertices, overlapping dirty balls
        let got = inc.update(g.clone(), energy.clone()).clone();
        assert_eq!(got, full(&g, &energy, &cfg), "{policy:?} adjacent pair");

        g.isolate(0);
        g.isolate(15); // opposite corners, disjoint dirty balls
        let got = inc.update(g.clone(), energy.clone()).clone();
        assert_eq!(got, full(&g, &energy, &cfg), "{policy:?} far pair");
    }
}

#[test]
fn cascading_deaths_down_to_an_empty_network_match_full_recompute() {
    let g0 = gen::grid(3, 3);
    let energy: Vec<u64> = (0..9).map(|v| v + 1).collect();
    let cfg = CdsConfig::policy(Policy::Degree);
    let mut inc = IncrementalCds::new(g0.clone(), energy.clone(), cfg);
    let mut g = g0.clone();
    for v in 0..9u32 {
        g.isolate(v);
        let got = inc.update(g.clone(), energy.clone()).clone();
        assert_eq!(got, full(&g, &energy, &cfg), "after killing 0..={v}");
    }
    assert!(inc.gateways().iter().all(|&b| !b));
}

#[test]
fn node_spawn_matches_full_recompute() {
    // The previously-uncovered case: the host set grows. Spawn a host
    // into a corner of a 6x6 grid with two links (so it both dominates
    // and is dominated) and check against a from-scratch computation on
    // the grown graph, for every policy. The 3-ball around a corner
    // spawn is a strict subset of a 6x6 grid, so locality is observable.
    let g0 = gen::grid(6, 6);
    let energy: Vec<u64> = (0..36).map(|v| (v * 3 + 1) % 11).collect();
    for policy in Policy::ALL {
        let cfg = CdsConfig::policy(policy);
        let mut inc = IncrementalCds::new(g0.clone(), energy.clone(), cfg);
        let got = inc
            .apply_deltas(&[CdsDelta::SpawnNode {
                energy: 6,
                links: vec![0, 1],
            }])
            .clone();
        let mut g = g0.clone();
        let id = g.add_vertex();
        g.add_edge(id, 0);
        g.add_edge(id, 1);
        let mut e = energy.clone();
        e.push(6);
        assert_eq!(got, full(&g, &e, &cfg), "{policy:?}");
        assert!(
            inc.last_recomputed() < g.n(),
            "{policy:?}: a corner spawn must not dirty the whole grid"
        );
    }
}

#[test]
fn isolated_spawn_changes_no_verdicts() {
    // A spawn with no links is invisible to everyone else: it is its own
    // component, unmarked, and nothing around it may flip.
    let g0 = gen::grid(4, 4);
    let energy = vec![5u64; 16];
    let cfg = CdsConfig::policy(Policy::Degree);
    let mut inc = IncrementalCds::new(g0.clone(), energy.clone(), cfg);
    let before = inc.gateways().clone();
    let got = inc
        .apply_deltas(&[CdsDelta::SpawnNode {
            energy: 1,
            links: vec![],
        }])
        .clone();
    assert_eq!(&got[..16], &before[..], "existing verdicts unchanged");
    assert!(!got[16], "an isolated host is never a gateway");
}

#[test]
fn spawn_combined_with_edge_and_energy_deltas_in_one_batch() {
    // Deltas apply in order, so later events may reference the spawned
    // id; the result must match a from-scratch recompute of the final
    // state.
    let g0 = bridged();
    let energy: Vec<u64> = (0..8).map(|v| (v * 5 + 2) % 11).collect();
    let cfg = CdsConfig::policy(Policy::EnergyDegree);
    let mut inc = IncrementalCds::new(g0.clone(), energy.clone(), cfg);
    let got = inc
        .apply_deltas(&[
            CdsDelta::SpawnNode {
                energy: 9,
                links: vec![3],
            },
            CdsDelta::AddEdge(8, 4), // link the spawn (id 8) across the bridge
            CdsDelta::RemoveEdge(3, 4),
            CdsDelta::SetEnergy(0, 10),
        ])
        .clone();
    let mut g = g0.clone();
    let id = g.add_vertex();
    g.add_edge(id, 3);
    g.add_edge(id, 4);
    g.remove_edge(3, 4);
    let mut e = energy.clone();
    e.push(9);
    e[0] = 10;
    assert_eq!(got, full(&g, &e, &cfg));
}

#[test]
fn delta_path_tracks_the_ownership_path_event_for_event() {
    // The same mutation stream driven through apply_deltas and through
    // the whole-graph update() must stay in lockstep.
    let g0 = gen::grid(5, 5);
    let mut energy: Vec<u64> = (0..25).map(|v| (v * 7 + 2) % 13).collect();
    let cfg = CdsConfig::policy(Policy::Energy);
    let mut by_delta = IncrementalCds::new(g0.clone(), energy.clone(), cfg);
    let mut by_update = IncrementalCds::new(g0.clone(), energy.clone(), cfg);
    let mut g = g0;

    let script: &[CdsDelta] = &[
        CdsDelta::AddEdge(0, 6),
        CdsDelta::SetEnergy(12, 0),
        CdsDelta::RemoveEdge(6, 7),
        CdsDelta::Isolate(18),
        CdsDelta::AddEdge(4, 8),
        CdsDelta::SetEnergy(3, 12),
    ];
    for d in script {
        match d.clone() {
            CdsDelta::AddEdge(u, v) => {
                g.add_edge(u, v);
            }
            CdsDelta::RemoveEdge(u, v) => {
                g.remove_edge(u, v);
            }
            CdsDelta::SetEnergy(v, level) => energy[v as usize] = level,
            CdsDelta::Isolate(v) => g.isolate(v),
            CdsDelta::SpawnNode { .. } => unreachable!(),
        }
        let got = by_delta.apply_deltas(std::slice::from_ref(d)).clone();
        let want = by_update.update(g.clone(), energy.clone()).clone();
        assert_eq!(got, want, "diverged at {d:?}");
        assert_eq!(got, full(&g, &energy, &cfg), "drifted from scratch at {d:?}");
    }
}

#[test]
fn redundant_deltas_recompute_nothing() {
    let g = gen::grid(4, 4);
    let energy = vec![5u64; 16];
    let cfg = CdsConfig::policy(Policy::Degree);
    let mut inc = IncrementalCds::new(g, energy, cfg);
    let before = inc.gateways().clone();
    let got = inc
        .apply_deltas(&[
            CdsDelta::AddEdge(0, 1),   // already present in the grid
            CdsDelta::SetEnergy(3, 5), // unchanged level
            CdsDelta::Isolate(0),      // real change…
            CdsDelta::AddEdge(0, 1),   // …then restore both grid links
            CdsDelta::AddEdge(0, 4),
        ])
        .clone();
    // The isolate + re-adds cancel structurally but the endpoints were
    // dirtied, so the mask is recomputed there — and must come back equal.
    assert_eq!(got, before);
    let got = inc.apply_deltas(&[CdsDelta::AddEdge(0, 1)]).clone();
    assert_eq!(inc.last_recomputed(), 0, "a pure no-op batch is free");
    assert_eq!(got, before);
}

#[test]
fn death_then_revival_returns_to_the_original_gateways() {
    // The host set is fixed, so a "revived" host is modelled by restoring
    // its links; the maintained mask must equal the original computation.
    let g0 = bridged();
    let energy: Vec<u64> = (0..8).map(|v| (v * 5 + 2) % 11).collect();
    let cfg = CdsConfig::policy(Policy::Energy);
    let mut inc = IncrementalCds::new(g0.clone(), energy.clone(), cfg);
    let original = inc.gateways().clone();
    let mut g = g0.clone();
    g.isolate(3);
    inc.update(g, energy.clone());
    let got = inc.update(g0.clone(), energy.clone()).clone();
    assert_eq!(got, original);
    assert_eq!(got, full(&g0, &energy, &cfg));
}
