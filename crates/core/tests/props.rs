//! Property-based tests for the paper's claimed invariants.
//!
//! These are the load-bearing guarantees: on every connected graph, the
//! marking process yields a CDS (Properties 1–2), Property 3 holds for the
//! raw marking, and *every* rule family preserves the CDS property while
//! only ever shrinking the set.

use pacds_core::{
    compute_cds, compute_cds_trace, verify_cds, CdsConfig, CdsInput, Policy,
};
use pacds_graph::{gen, Graph};
use proptest::prelude::*;
use rand::SeedableRng;

/// A random connected graph plus a deterministic energy assignment.
fn connected_graph_with_energy() -> impl Strategy<Value = (Graph, Vec<u64>)> {
    (2usize..48, 0.02f64..0.6, any::<u64>()).prop_map(|(n, p, seed)| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let g = gen::connected_gnp(&mut rng, n, p, 8);
        let energy: Vec<u64> = (0..n)
            .map(|i| {
                // Deterministic but varied, with deliberate ties.
                (seed.wrapping_mul(i as u64 + 1) >> 17) % 10
            })
            .collect();
        (g, energy)
    })
}

/// A random unit-disk graph in the paper's arena (largest component kept).
fn unit_disk_component() -> impl Strategy<Value = (Graph, Vec<u64>)> {
    (3usize..60, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let bounds = pacds_geom::Rect::paper_arena();
        let pts = pacds_geom::placement::uniform_points(&mut rng, bounds, n);
        let g = gen::unit_disk(bounds, 25.0, &pts);
        let keep = pacds_graph::algo::largest_component(&g);
        let (sub, _) = g.induced(&keep);
        let energy: Vec<u64> = (0..sub.n())
            .map(|i| (seed.wrapping_mul(i as u64 + 3) >> 13) % 8)
            .collect();
        (sub, energy)
    })
}

fn count(mask: &[bool]) -> usize {
    mask.iter().filter(|&&b| b).count()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn every_policy_yields_a_cds_on_gnp((g, energy) in connected_graph_with_energy()) {
        for policy in Policy::ALL {
            let cds = compute_cds(
                &CdsInput { graph: &g, energy: Some(&energy) },
                &CdsConfig::policy(policy),
            );
            prop_assert!(
                verify_cds(&g, &cds).is_ok(),
                "policy {policy:?} violated CDS on {:?}",
                g
            );
        }
    }

    #[test]
    fn every_policy_yields_a_cds_on_unit_disk((g, energy) in unit_disk_component()) {
        for policy in Policy::ALL {
            let cds = compute_cds(
                &CdsInput { graph: &g, energy: Some(&energy) },
                &CdsConfig::policy(policy),
            );
            prop_assert!(
                verify_cds(&g, &cds).is_ok(),
                "policy {policy:?} violated CDS on {:?}",
                g
            );
        }
    }

    #[test]
    fn pruning_is_monotone_shrinking((g, energy) in connected_graph_with_energy()) {
        let input = CdsInput { graph: &g, energy: Some(&energy) };
        let trace_nr = compute_cds(&input, &CdsConfig::policy(Policy::NoPruning));
        for policy in [Policy::Id, Policy::Degree, Policy::Energy, Policy::EnergyDegree] {
            let trace = compute_cds_trace(&input, &CdsConfig::policy(policy));
            // Stage-wise: marked ⊇ after_rule1 ⊇ after_rule2.
            for (v, &nr) in trace_nr.iter().enumerate() {
                prop_assert!(!trace.after_rule1[v] || trace.marked[v]);
                prop_assert!(!trace.after_rule2[v] || trace.after_rule1[v]);
                prop_assert!(!trace.after_rule2[v] || nr);
            }
        }
    }

    #[test]
    fn fixpoint_schedule_stays_a_cds_and_never_grows((g, energy) in connected_graph_with_energy()) {
        let input = CdsInput { graph: &g, energy: Some(&energy) };
        for policy in [Policy::Id, Policy::Degree, Policy::Energy, Policy::EnergyDegree] {
            let single = compute_cds(&input, &CdsConfig::policy(policy));
            let fix = compute_cds(&input, &CdsConfig::fixpoint(policy));
            prop_assert!(verify_cds(&g, &fix).is_ok(), "fixpoint {policy:?}");
            prop_assert!(count(&fix) <= count(&single));
        }
    }

    #[test]
    fn marking_preserves_shortest_paths((g, _energy) in unit_disk_component()) {
        // Property 3 applies to the bare marking output.
        if g.n() <= 30 {
            let m = pacds_core::marking(&g);
            if !g.is_complete() {
                prop_assert!(pacds_core::verify::preserves_shortest_paths(&g, &m));
            }
        }
    }

    #[test]
    fn paper_literal_mode_is_monotone_and_dominating_or_flagged((g, energy) in connected_graph_with_energy()) {
        // The literal case-analysis Rule 2 may (rarely) lose domination —
        // that is a documented property of the paper's rule, not of this
        // implementation. What must always hold: the result is a subset of
        // the marking, and verify_cds either passes or reports a
        // NotDominating/NotConnected violation (never panics).
        let input = CdsInput { graph: &g, energy: Some(&energy) };
        for policy in [Policy::Degree, Policy::Energy, Policy::EnergyDegree] {
            let trace = compute_cds_trace(&input, &CdsConfig::paper(policy));
            for v in 0..g.n() {
                prop_assert!(!trace.after_rule2[v] || trace.marked[v]);
            }
            let _ = verify_cds(&g, &trace.after_rule2);
        }
    }

    #[test]
    fn sequential_sweep_always_yields_a_cds((g, energy) in connected_graph_with_energy()) {
        // The in-place sweep is sound for every policy and both Rule 2
        // semantics: each single removal preserves the CDS invariant.
        let input = CdsInput { graph: &g, energy: Some(&energy) };
        for policy in [Policy::Id, Policy::Degree, Policy::Energy, Policy::EnergyDegree] {
            let cds = compute_cds(&input, &CdsConfig::sequential(policy));
            prop_assert!(verify_cds(&g, &cds).is_ok(), "sequential {policy:?}");
        }
    }

    #[test]
    fn sequential_sweep_yields_a_cds_on_unit_disk((g, energy) in unit_disk_component()) {
        let input = CdsInput { graph: &g, energy: Some(&energy) };
        for policy in [Policy::Degree, Policy::Energy, Policy::EnergyDegree] {
            let cds = compute_cds(&input, &CdsConfig::sequential(policy));
            prop_assert!(verify_cds(&g, &cds).is_ok(), "sequential {policy:?}");
        }
    }

    #[test]
    fn rule_k_always_yields_a_cds((g, energy) in connected_graph_with_energy()) {
        for policy in [Policy::Id, Policy::Degree, Policy::Energy, Policy::EnergyDegree] {
            let cds = pacds_core::compute_cds_daiwu(&g, Some(&energy), policy);
            prop_assert!(verify_cds(&g, &cds).is_ok(), "rule-k {policy:?}");
        }
    }

    #[test]
    fn rule_k_yields_a_cds_on_unit_disk((g, energy) in unit_disk_component()) {
        for policy in [Policy::Degree, Policy::EnergyDegree] {
            let cds = pacds_core::compute_cds_daiwu(&g, Some(&energy), policy);
            prop_assert!(verify_cds(&g, &cds).is_ok(), "rule-k {policy:?}");
        }
    }

    #[test]
    fn energy_levels_only_permute_priorities_not_safety((g, _e) in connected_graph_with_energy()) {
        // Degenerate energy tables (all equal, extremes) must still verify.
        let n = g.n();
        for energy in [vec![0u64; n], vec![u64::MAX; n]] {
            for policy in [Policy::Energy, Policy::EnergyDegree] {
                let cds = compute_cds(
                    &CdsInput { graph: &g, energy: Some(&energy) },
                    &CdsConfig::policy(policy),
                );
                prop_assert!(verify_cds(&g, &cds).is_ok());
            }
        }
    }
}
