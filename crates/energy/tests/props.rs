//! Property-based tests for the energy model.

use pacds_energy::{DrainModel, EnergyConfig, Fleet};
use proptest::prelude::*;

fn model() -> impl Strategy<Value = DrainModel> {
    prop_oneof![
        Just(DrainModel::ConstantTotal),
        Just(DrainModel::LinearInN),
        Just(DrainModel::QuadraticInN),
        (0.1f64..10.0).prop_map(|value| DrainModel::ConstantPerGateway { value }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn energy_is_conserved_until_saturation(
        m in model(),
        n in 1usize..40,
        gw_bits in any::<u64>(),
        intervals in 1u32..20,
    ) {
        let cfg = EnergyConfig::paper(m);
        let mut fleet = Fleet::new(n, cfg);
        let gateways: Vec<bool> = (0..n).map(|i| (gw_bits >> (i % 64)) & 1 == 1).collect();
        let g_count = gateways.iter().filter(|&&b| b).count();
        let d = m.gateway_drain(n, g_count);
        let expected_per_interval =
            d * g_count as f64 + 1.0 * (n - g_count) as f64;
        let mut prev_total = fleet.total_energy();
        for _ in 0..intervals {
            let any_dead_before = fleet.any_dead();
            fleet.drain_interval(&gateways);
            let total = fleet.total_energy();
            // Monotone decrease; exact decrement until someone saturates.
            prop_assert!(total <= prev_total + 1e-9);
            if !any_dead_before && !fleet.any_dead() {
                prop_assert!((prev_total - total - expected_per_interval).abs() < 1e-6);
            }
            prev_total = total;
        }
    }

    #[test]
    fn levels_are_monotone_in_energy(q in 0.5f64..50.0, a in 0.0f64..200.0, b in 0.0f64..200.0) {
        let cfg = EnergyConfig {
            quantum: q,
            ..EnergyConfig::paper(DrainModel::LinearInN)
        };
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(cfg.level_of(lo) <= cfg.level_of(hi));
        // A level never exceeds energy/quantum.
        prop_assert!(cfg.level_of(hi) as f64 <= hi / q + 1e-9);
    }

    #[test]
    fn shared_models_total_gateway_drain_is_size_independent(
        n in 2usize..100,
        g1 in 1usize..50,
        g2 in 1usize..50,
    ) {
        // Models 1-3 share a fixed total across gateways: |G'|*d constant.
        for m in DrainModel::PAPER_MODELS {
            let t1 = m.gateway_drain(n, g1) * g1 as f64;
            let t2 = m.gateway_drain(n, g2) * g2 as f64;
            prop_assert!((t1 - t2).abs() < 1e-9, "{m:?}");
        }
    }

    #[test]
    fn drain_each_matches_manual_bookkeeping(
        n in 1usize..30,
        amounts in prop::collection::vec(0.0f64..30.0, 1..30),
    ) {
        let cfg = EnergyConfig::paper(DrainModel::LinearInN);
        let mut fleet = Fleet::new(n, cfg);
        let amounts: Vec<f64> = (0..n).map(|i| amounts[i % amounts.len()]).collect();
        let died = fleet.drain_each(|v| amounts[v]);
        for (v, &amount) in amounts.iter().enumerate() {
            let expect = (100.0 - amount).max(0.0);
            prop_assert!((fleet.energy(v) - expect).abs() < 1e-9);
            prop_assert_eq!(died.contains(&v), amount >= 100.0);
        }
    }
}
