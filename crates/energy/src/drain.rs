//! Per-interval energy drain models.

use serde::{Deserialize, Serialize};

/// The gateway drain `d` as a function of network size `N` and gateway-set
/// size `|G'|`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DrainModel {
    /// Model 1 of the paper: `d = 2 / |G'|` ("a normalized constant" —
    /// total gateway traffic is fixed at 2 units and shared equally).
    ConstantTotal,
    /// Model 2: `d = N / |G'|` — total gateway traffic proportional to the
    /// number of hosts.
    LinearInN,
    /// Model 3: `d = N (N - 1) / 2 / (10 |G'|)` — total gateway traffic
    /// proportional to the number of distinct host pairs.
    QuadraticInN,
    /// Ablation: a fixed per-gateway drain independent of `|G'|`. With the
    /// literal Model 1, gateways drain *slower* than non-gateways whenever
    /// `|G'| > 2`, which makes every policy's lifetime collapse to
    /// `initial / d'`; this alternative reading (`d = value`) is the other
    /// plausible interpretation of "a constant" and is reported alongside
    /// Model 1 in EXPERIMENTS.md.
    ConstantPerGateway {
        /// The fixed drain per gateway per interval.
        value: f64,
    },
}

impl DrainModel {
    /// The three models exactly as the paper's Figures 11–13 use them.
    pub const PAPER_MODELS: [DrainModel; 3] = [
        DrainModel::ConstantTotal,
        DrainModel::LinearInN,
        DrainModel::QuadraticInN,
    ];

    /// Gateway drain `d` for a network of `n` hosts with `gateways` gateway
    /// hosts. Returns 0 when there are no gateways (nothing to drain).
    pub fn gateway_drain(&self, n: usize, gateways: usize) -> f64 {
        if gateways == 0 {
            return match self {
                DrainModel::ConstantPerGateway { value } => *value,
                _ => 0.0,
            };
        }
        let g = gateways as f64;
        let n = n as f64;
        match self {
            DrainModel::ConstantTotal => 2.0 / g,
            DrainModel::LinearInN => n / g,
            DrainModel::QuadraticInN => n * (n - 1.0) / 2.0 / (10.0 * g),
            DrainModel::ConstantPerGateway { value } => *value,
        }
    }

    /// A short identifier used in CSV/JSON output.
    pub fn label(&self) -> String {
        match self {
            DrainModel::ConstantTotal => "d=2/|G'|".to_string(),
            DrainModel::LinearInN => "d=N/|G'|".to_string(),
            DrainModel::QuadraticInN => "d=N(N-1)/(20|G'|)".to_string(),
            DrainModel::ConstantPerGateway { value } => format!("d={value}"),
        }
    }
}

/// Full energy configuration for a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyConfig {
    /// Initial energy of every host (the paper uses 100).
    pub initial: f64,
    /// Gateway drain model.
    pub gateway_drain: DrainModel,
    /// Non-gateway drain `d'` per interval (the paper's "unit value", 1).
    pub non_gateway_drain: f64,
    /// Quantum for discretising energy into the levels the rules compare.
    /// `level = floor(energy / quantum)`.
    pub quantum: f64,
    /// Interpretation of the gateway drain `d`:
    ///
    /// * `false` — *exclusive*: gateways pay `d`, non-gateways pay `d'`
    ///   (the paper's literal sentence). Under the shared-traffic models
    ///   this makes the *total* network drain `2N - |G'|`, so policies with
    ///   larger gateway sets live longer regardless of rotation.
    /// * `true` — *additive*: every host pays the base `d'` and gateways
    ///   pay `d` on top (bypass traffic is extra work). Total drain is then
    ///   a constant `2N` per interval and lifetime differences isolate how
    ///   well a policy *balances* energy — which is the quantity the
    ///   paper's Figures 11–13 discriminate. See EXPERIMENTS.md.
    pub additive_gateway_drain: bool,
}

impl EnergyConfig {
    /// The paper's configuration with the given drain model.
    ///
    /// `quantum = 10`: the paper keeps host energy on "multiple discrete
    /// levels" and its worked example (Figure 8) labels nodes with
    /// single-digit energy levels, so a 0-100 battery maps to ~10 levels.
    /// The coarse levels matter: they create the EL ties that let the ND
    /// tie-break differentiate EL2 from EL1 (Figure 10's "ND and EL2 are
    /// the best" is only reproducible with coarse levels — see
    /// EXPERIMENTS.md).
    pub fn paper(model: DrainModel) -> Self {
        Self {
            initial: 100.0,
            gateway_drain: model,
            non_gateway_drain: 1.0,
            quantum: 10.0,
            additive_gateway_drain: false,
        }
    }

    /// Discrete energy level of a battery holding `energy` units.
    pub fn level_of(&self, energy: f64) -> u64 {
        assert!(self.quantum > 0.0, "quantum must be positive");
        if energy <= 0.0 {
            0
        } else {
            (energy / self.quantum).floor() as u64
        }
    }
}

impl Default for EnergyConfig {
    fn default() -> Self {
        Self::paper(DrainModel::LinearInN)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model1_shares_two_units() {
        let m = DrainModel::ConstantTotal;
        assert_eq!(m.gateway_drain(100, 1), 2.0);
        assert_eq!(m.gateway_drain(100, 4), 0.5);
        // Independent of n.
        assert_eq!(m.gateway_drain(3, 4), m.gateway_drain(100, 4));
    }

    #[test]
    fn model2_scales_with_n() {
        let m = DrainModel::LinearInN;
        assert_eq!(m.gateway_drain(100, 50), 2.0);
        assert_eq!(m.gateway_drain(60, 20), 3.0);
    }

    #[test]
    fn model3_scales_with_pairs() {
        let m = DrainModel::QuadraticInN;
        // N=100: 100*99/2 / (10*|G'|) = 495 / |G'|.
        assert!((m.gateway_drain(100, 10) - 49.5).abs() < 1e-12);
        assert!((m.gateway_drain(5, 2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn constant_per_gateway_ignores_sizes() {
        let m = DrainModel::ConstantPerGateway { value: 2.0 };
        assert_eq!(m.gateway_drain(100, 7), 2.0);
        assert_eq!(m.gateway_drain(3, 0), 2.0);
    }

    #[test]
    fn zero_gateways_drain_nothing_in_shared_models() {
        for m in DrainModel::PAPER_MODELS {
            assert_eq!(m.gateway_drain(50, 0), 0.0);
        }
    }

    #[test]
    fn quantisation() {
        let fine = EnergyConfig {
            quantum: 1.0,
            ..EnergyConfig::paper(DrainModel::ConstantTotal)
        };
        assert_eq!(fine.level_of(100.0), 100);
        assert_eq!(fine.level_of(99.999), 99);
        assert_eq!(fine.level_of(0.5), 0);
        assert_eq!(fine.level_of(0.0), 0);
        assert_eq!(fine.level_of(-3.0), 0);
        let coarse = EnergyConfig::paper(DrainModel::ConstantTotal);
        assert_eq!(coarse.quantum, 10.0);
        assert_eq!(coarse.level_of(100.0), 10);
        assert_eq!(coarse.level_of(95.0), 9);
    }

    #[test]
    fn labels_are_distinct() {
        let mut labels: Vec<String> = DrainModel::PAPER_MODELS.iter().map(|m| m.label()).collect();
        labels.push(DrainModel::ConstantPerGateway { value: 2.0 }.label());
        let uniq: std::collections::HashSet<_> = labels.iter().collect();
        assert_eq!(uniq.len(), labels.len());
    }
}
