//! Host batteries and fleet-level accounting.

use crate::drain::EnergyConfig;
use serde::{Deserialize, Serialize};

/// The battery of a single host.
///
/// ```
/// use pacds_energy::Battery;
/// let mut b = Battery::new(2.0);
/// assert!(!b.drain(1.5));      // still alive
/// assert!(b.drain(1.0));       // this drain kills it (saturates at 0)
/// assert!(b.is_dead());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Battery {
    energy: f64,
}

impl Battery {
    /// A battery holding `energy` units.
    pub fn new(energy: f64) -> Self {
        assert!(energy.is_finite() && energy >= 0.0);
        Self { energy }
    }

    /// Remaining energy (never negative).
    #[inline]
    pub fn energy(&self) -> f64 {
        self.energy
    }

    /// Whether the host has ceased to function.
    #[inline]
    pub fn is_dead(&self) -> bool {
        self.energy <= 0.0
    }

    /// Drains `amount` units, saturating at zero. Returns `true` if this
    /// drain killed the host (alive before, dead after).
    pub fn drain(&mut self, amount: f64) -> bool {
        debug_assert!(amount >= 0.0, "drain must be non-negative");
        let was_alive = !self.is_dead();
        self.energy = (self.energy - amount).max(0.0);
        was_alive && self.is_dead()
    }
}

/// The batteries of all hosts in a network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fleet {
    batteries: Vec<Battery>,
    config: EnergyConfig,
}

impl Fleet {
    /// A fleet of `n` hosts, each at `config.initial` energy.
    pub fn new(n: usize, config: EnergyConfig) -> Self {
        Self {
            batteries: vec![Battery::new(config.initial); n],
            config,
        }
    }

    /// Number of hosts.
    pub fn len(&self) -> usize {
        self.batteries.len()
    }

    /// Whether the fleet is empty.
    pub fn is_empty(&self) -> bool {
        self.batteries.is_empty()
    }

    /// The energy configuration.
    pub fn config(&self) -> &EnergyConfig {
        &self.config
    }

    /// Remaining energy of host `v`.
    pub fn energy(&self, v: usize) -> f64 {
        self.batteries[v].energy()
    }

    /// Whether host `v` is dead.
    pub fn is_dead(&self, v: usize) -> bool {
        self.batteries[v].is_dead()
    }

    /// Whether any host is dead (the paper's lifetime stop condition).
    pub fn any_dead(&self) -> bool {
        self.batteries.iter().any(Battery::is_dead)
    }

    /// Number of hosts still alive.
    pub fn alive_count(&self) -> usize {
        self.batteries.iter().filter(|b| !b.is_dead()).count()
    }

    /// Discrete energy levels of every host, as the rules consume them.
    pub fn levels(&self) -> Vec<u64> {
        let mut out = Vec::new();
        self.levels_into(&mut out);
        out
    }

    /// [`Fleet::levels`] writing into a caller-provided buffer (cleared and
    /// refilled), so per-interval quantisation reuses one allocation.
    pub fn levels_into(&self, out: &mut Vec<u64>) {
        out.clear();
        out.extend(
            self.batteries
                .iter()
                .map(|b| self.config.level_of(b.energy())),
        );
    }

    /// Applies one update interval's drain: hosts with `gateway[v] = true`
    /// lose the model's gateway drain `d`, others lose `d'`. Returns the
    /// indices of hosts that died this interval.
    pub fn drain_interval(&mut self, gateway: &[bool]) -> Vec<usize> {
        assert_eq!(gateway.len(), self.batteries.len());
        let n = self.batteries.len();
        let g_count = gateway.iter().filter(|&&b| b).count();
        let d = self.config.gateway_drain.gateway_drain(n, g_count);
        let dp = self.config.non_gateway_drain;
        let mut died = Vec::new();
        for (v, battery) in self.batteries.iter_mut().enumerate() {
            let amount = if gateway[v] {
                if self.config.additive_gateway_drain { d + dp } else { d }
            } else {
                dp
            };
            if battery.drain(amount) {
                died.push(v);
            }
        }
        died
    }

    /// Like [`Fleet::drain_interval`], but hosts flagged `off` pay nothing
    /// this interval (a switched-off radio saves its battery — the paper's
    /// motivation for hosts disconnecting). The gateway drain is computed
    /// from the gateway count as usual; `gateway[v] && off[v]` is rejected.
    pub fn drain_interval_with_off(&mut self, gateway: &[bool], off: &[bool]) -> Vec<usize> {
        assert_eq!(gateway.len(), self.batteries.len());
        assert_eq!(off.len(), self.batteries.len());
        assert!(
            gateway.iter().zip(off).all(|(&g, &o)| !(g && o)),
            "an off host cannot serve as a gateway"
        );
        let n = self.batteries.len();
        let g_count = gateway.iter().filter(|&&b| b).count();
        let d = self.config.gateway_drain.gateway_drain(n, g_count);
        let dp = self.config.non_gateway_drain;
        let additive = self.config.additive_gateway_drain;
        let mut died = Vec::new();
        for (v, battery) in self.batteries.iter_mut().enumerate() {
            let amount = if off[v] {
                0.0
            } else if gateway[v] {
                if additive { d + dp } else { d }
            } else {
                dp
            };
            if battery.drain(amount) {
                died.push(v);
            }
        }
        died
    }

    /// Applies an arbitrary per-host drain (e.g. measured forwarding load).
    /// Returns the indices of hosts that died.
    pub fn drain_each<F: Fn(usize) -> f64>(&mut self, amount: F) -> Vec<usize> {
        let mut died = Vec::new();
        for (v, battery) in self.batteries.iter_mut().enumerate() {
            if battery.drain(amount(v)) {
                died.push(v);
            }
        }
        died
    }

    /// Total energy left in the fleet.
    pub fn total_energy(&self) -> f64 {
        self.batteries.iter().map(Battery::energy).sum()
    }

    /// Minimum remaining energy across hosts (`None` for an empty fleet).
    pub fn min_energy(&self) -> Option<f64> {
        self.batteries
            .iter()
            .map(Battery::energy)
            .min_by(|a, b| a.total_cmp(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drain::DrainModel;

    fn cfg(model: DrainModel) -> EnergyConfig {
        EnergyConfig::paper(model)
    }

    #[test]
    fn battery_drains_and_saturates() {
        let mut b = Battery::new(3.0);
        assert!(!b.drain(1.0));
        assert_eq!(b.energy(), 2.0);
        assert!(b.drain(5.0)); // kills it
        assert_eq!(b.energy(), 0.0);
        assert!(b.is_dead());
        assert!(!b.drain(1.0)); // already dead: not a new death
    }

    #[test]
    #[should_panic]
    fn negative_battery_rejected() {
        Battery::new(-1.0);
    }

    #[test]
    fn fleet_starts_full_and_alive() {
        let f = Fleet::new(10, cfg(DrainModel::LinearInN));
        assert_eq!(f.len(), 10);
        assert!(!f.any_dead());
        assert_eq!(f.alive_count(), 10);
        assert_eq!(f.total_energy(), 1000.0);
        assert_eq!(f.levels(), vec![10u64; 10]); // 100 energy / quantum 10
    }

    #[test]
    fn drain_interval_applies_model2() {
        // n = 4, 2 gateways: d = 4/2 = 2; d' = 1.
        let mut f = Fleet::new(4, cfg(DrainModel::LinearInN));
        let died = f.drain_interval(&[true, true, false, false]);
        assert!(died.is_empty());
        assert_eq!(f.energy(0), 98.0);
        assert_eq!(f.energy(1), 98.0);
        assert_eq!(f.energy(2), 99.0);
        assert_eq!(f.energy(3), 99.0);
    }

    #[test]
    fn gateway_lifetime_under_model2() {
        // Static roles: gateways die at interval 50 (100 / 2).
        let mut f = Fleet::new(4, cfg(DrainModel::LinearInN));
        let roles = [true, true, false, false];
        let mut intervals = 0;
        while !f.any_dead() {
            let died = f.drain_interval(&roles);
            intervals += 1;
            if !died.is_empty() {
                assert_eq!(died, vec![0, 1]);
            }
            assert!(intervals <= 1000, "runaway loop");
        }
        assert_eq!(intervals, 50);
        assert_eq!(f.alive_count(), 2);
    }

    #[test]
    fn non_gateways_die_at_initial_over_dprime() {
        let mut f = Fleet::new(3, cfg(DrainModel::ConstantTotal));
        // All gateways: d = 2/3 < 1, so gateways outlive the d'=1 case.
        let mut intervals = 0;
        while !f.any_dead() {
            f.drain_interval(&[true, true, true]);
            intervals += 1;
            assert!(intervals <= 1000);
        }
        assert_eq!(intervals, 150); // 100 / (2/3)
    }

    #[test]
    fn levels_track_quantised_energy() {
        let mut f = Fleet::new(2, EnergyConfig {
            quantum: 1.0,
            ..cfg(DrainModel::LinearInN)
        });
        // d = 2/1 = 2 for the single gateway.
        f.drain_interval(&[true, false]);
        assert_eq!(f.levels(), vec![98, 99]);
    }

    #[test]
    fn off_hosts_pay_nothing() {
        let mut f = Fleet::new(4, cfg(DrainModel::LinearInN));
        // 1 gateway among 4 hosts: d = 4.
        let died = f.drain_interval_with_off(
            &[true, false, false, false],
            &[false, false, true, true],
        );
        assert!(died.is_empty());
        assert_eq!(f.energy(0), 96.0);
        assert_eq!(f.energy(1), 99.0);
        assert_eq!(f.energy(2), 100.0);
        assert_eq!(f.energy(3), 100.0);
    }

    #[test]
    #[should_panic]
    fn off_gateway_is_rejected() {
        let mut f = Fleet::new(2, cfg(DrainModel::LinearInN));
        f.drain_interval_with_off(&[true, false], &[true, false]);
    }

    #[test]
    fn min_energy_and_empty_fleet() {
        let f = Fleet::new(0, cfg(DrainModel::LinearInN));
        assert!(f.is_empty());
        assert_eq!(f.min_energy(), None);
        let mut f = Fleet::new(3, cfg(DrainModel::LinearInN));
        f.drain_interval(&[true, false, false]); // d = 3
        assert_eq!(f.min_energy(), Some(97.0));
    }
}
