//! Energy model of the paper's evaluation (Section 4).
//!
//! Every host starts with energy 100. After each update interval, a gateway
//! host's energy drops by `d` and a non-gateway host's by `d'` (a unit
//! constant). The paper studies three models for `d`, all functions of the
//! gateway-set size `|G'|` and the network size `N`:
//!
//! 1. `d = 2 / |G'|` — constant total gateway traffic;
//! 2. `d = N / |G'|` — total traffic proportional to the host count;
//! 3. `d = N(N-1)/2 / (10 |G'|)` — total traffic proportional to the number
//!    of host pairs.
//!
//! A host whose energy reaches zero ceases to function; the *lifetime* of
//! the network is the number of completed update intervals before the first
//! death.
//!
//! The selective-removal rules compare *discrete* energy levels; batteries
//! are continuous `f64` internally and quantised through
//! [`EnergyConfig::level_of`].

pub mod battery;
pub mod drain;

pub use battery::{Battery, Fleet};
pub use drain::{DrainModel, EnergyConfig};
