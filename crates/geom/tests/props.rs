//! Property-based tests for the geometry substrate.

use pacds_geom::{placement, Boundary, Compass, Point2, Rect, SpatialGrid, Vec2};
use proptest::prelude::*;
use rand::SeedableRng;

fn arena() -> impl Strategy<Value = Rect> {
    (1.0f64..500.0, 1.0f64..500.0).prop_map(|(w, h)| Rect::new(0.0, 0.0, w, h))
}

fn point_in(r: Rect) -> impl Strategy<Value = Point2> {
    (r.x0..=r.x1, r.y0..=r.y1).prop_map(|(x, y)| Point2::new(x, y))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn distance_satisfies_metric_axioms(
        ax in -1e3f64..1e3, ay in -1e3f64..1e3,
        bx in -1e3f64..1e3, by in -1e3f64..1e3,
        cx in -1e3f64..1e3, cy in -1e3f64..1e3,
    ) {
        let (a, b, c) = (Point2::new(ax, ay), Point2::new(bx, by), Point2::new(cx, cy));
        prop_assert!((a.distance(b) - b.distance(a)).abs() < 1e-9);
        prop_assert!(a.distance(a) == 0.0);
        // Triangle inequality with float slack.
        prop_assert!(a.distance(c) <= a.distance(b) + b.distance(c) + 1e-9);
        // distance2 is the square of distance.
        prop_assert!((a.distance2(b) - a.distance(b).powi(2)).abs() < 1e-6);
    }

    #[test]
    fn every_boundary_policy_confines_points(
        bounds in arena(),
        px in 0.0f64..1.0, py in 0.0f64..1.0,
        vx in -1e4f64..1e4, vy in -1e4f64..1e4,
    ) {
        let p = Point2::new(
            bounds.x0 + px * bounds.width(),
            bounds.y0 + py * bounds.height(),
        );
        for policy in [Boundary::Clamp, Boundary::Reflect, Boundary::Torus] {
            let q = bounds.step(p, Vec2::new(vx, vy), policy);
            prop_assert!(bounds.contains(q), "{policy:?}: {q:?} outside {bounds:?}");
        }
    }

    #[test]
    fn reflect_is_identity_inside(bounds in arena(), px in 0.0f64..1.0, py in 0.0f64..1.0) {
        let p = Point2::new(
            bounds.x0 + px * bounds.width(),
            bounds.y0 + py * bounds.height(),
        );
        let q = bounds.reflect(p);
        prop_assert!((p.x - q.x).abs() < 1e-9 && (p.y - q.y).abs() < 1e-9);
    }

    #[test]
    fn grid_queries_match_brute_force(
        seed in any::<u64>(),
        n in 0usize..150,
        radius in 1.0f64..60.0,
    ) {
        let bounds = Rect::square(100.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let pts = placement::uniform_points(&mut rng, bounds, n);
        let grid = SpatialGrid::build(bounds, radius, &pts);
        for i in 0..n {
            let mut fast = grid.neighbors_of(i, radius);
            fast.sort_unstable();
            let slow: Vec<usize> = (0..n)
                .filter(|&j| j != i && pts[i].within(pts[j], radius))
                .collect();
            prop_assert_eq!(&fast, &slow, "i={} r={}", i, radius);
        }
    }

    #[test]
    fn compass_offsets_scale_linearly(l in 0.0f64..100.0) {
        for d in Compass::ALL {
            let o = d.offset(l);
            let u = d.unit() * l;
            // Unit form has length exactly l; offset form l or l*sqrt2.
            prop_assert!((u.norm() - l).abs() < 1e-9);
            let expect = if d.is_diagonal() { l * std::f64::consts::SQRT_2 } else { l };
            prop_assert!((o.norm() - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn jittered_grid_is_in_bounds_and_counted(bounds in arena(), n in 0usize..120, seed in any::<u64>()) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let pts = placement::jittered_grid(&mut rng, bounds, n);
        prop_assert_eq!(pts.len(), n);
        prop_assert!(pts.iter().all(|&p| bounds.contains(p)));
    }
}

proptest! {
    #[test]
    fn point_strategy_stays_in_its_rect(p in point_in(Rect::square(10.0))) {
        prop_assert!(Rect::square(10.0).contains(p));
    }
}
