//! 2-D geometry substrate for the PACDS ad hoc wireless network simulator.
//!
//! The paper simulates hosts in a `100 x 100` free-space region with a
//! transmission radius of 25 units. This crate provides the small geometric
//! vocabulary that the rest of the workspace builds on:
//!
//! * [`Point2`] / [`Vec2`] — positions and displacements with exact `f64`
//!   arithmetic helpers (squared distances to avoid `sqrt` in hot loops).
//! * [`Rect`] — the simulation arena, with the three boundary policies used
//!   by the mobility models (clamp, reflect, torus).
//! * [`Compass`] — the paper's eight movement directions (E, S, W, N, SE,
//!   NE, SW, NW).
//! * [`SpatialGrid`] — a uniform hash grid that answers "all points within
//!   radius r" queries in expected O(1) per neighbour, used to build
//!   unit-disk graphs in O(n) instead of O(n^2).
//! * [`placement`] — random uniform host placement.

pub mod direction;
pub mod grid;
pub mod placement;
pub mod point;
pub mod rect;

pub use direction::Compass;
pub use grid::SpatialGrid;
pub use point::{Point2, Vec2};
pub use rect::{Boundary, Rect};

/// Numeric tolerance used when comparing distances against a radius.
///
/// Unit-disk membership is decided with `d^2 <= r^2 + EPS` so that hosts
/// placed exactly on the rim (a measure-zero event for random placement, but
/// common in hand-written tests) are treated as connected.
pub const EPS: f64 = 1e-9;
