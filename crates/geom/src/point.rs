//! Points and displacement vectors in the plane.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A position in the 2-D simulation plane.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point2 {
    pub x: f64,
    pub y: f64,
}

/// A displacement between two [`Point2`]s.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec2 {
    pub x: f64,
    pub y: f64,
}

impl Point2 {
    /// Creates a point at `(x, y)`.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// The origin `(0, 0)`.
    #[inline]
    pub const fn origin() -> Self {
        Self::new(0.0, 0.0)
    }

    /// Squared Euclidean distance to `other`.
    ///
    /// Prefer this over [`Point2::distance`] in hot loops (unit-disk graph
    /// construction compares against `r^2` and never needs the square root).
    #[inline]
    pub fn distance2(&self, other: Point2) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(&self, other: Point2) -> f64 {
        self.distance2(other).sqrt()
    }

    /// Whether `other` lies within transmission radius `r` of `self`
    /// (inclusive, with a small tolerance for rim cases).
    #[inline]
    pub fn within(&self, other: Point2, r: f64) -> bool {
        self.distance2(other) <= r * r + crate::EPS
    }

    /// Component-wise midpoint.
    #[inline]
    pub fn midpoint(&self, other: Point2) -> Point2 {
        Point2::new((self.x + other.x) * 0.5, (self.y + other.y) * 0.5)
    }

    /// Displacement from `other` to `self`.
    #[inline]
    pub fn vector_from(&self, other: Point2) -> Vec2 {
        Vec2::new(self.x - other.x, self.y - other.y)
    }

    /// True when both coordinates are finite (no NaN/inf).
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Vec2 {
    /// Creates a vector `(x, y)`.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// The zero vector.
    #[inline]
    pub const fn zero() -> Self {
        Self::new(0.0, 0.0)
    }

    /// Squared length.
    #[inline]
    pub fn norm2(&self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Euclidean length.
    #[inline]
    pub fn norm(&self) -> f64 {
        self.norm2().sqrt()
    }

    /// Unit vector in the same direction; `None` for the zero vector.
    pub fn normalized(&self) -> Option<Vec2> {
        let n = self.norm();
        if n <= crate::EPS {
            None
        } else {
            Some(Vec2::new(self.x / n, self.y / n))
        }
    }

    /// Dot product.
    #[inline]
    pub fn dot(&self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }
}

impl Add<Vec2> for Point2 {
    type Output = Point2;
    #[inline]
    fn add(self, v: Vec2) -> Point2 {
        Point2::new(self.x + v.x, self.y + v.y)
    }
}

impl AddAssign<Vec2> for Point2 {
    #[inline]
    fn add_assign(&mut self, v: Vec2) {
        self.x += v.x;
        self.y += v.y;
    }
}

impl Sub<Vec2> for Point2 {
    type Output = Point2;
    #[inline]
    fn sub(self, v: Vec2) -> Point2 {
        Point2::new(self.x - v.x, self.y - v.y)
    }
}

impl Sub<Point2> for Point2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, other: Point2) -> Vec2 {
        Vec2::new(self.x - other.x, self.y - other.y)
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    #[inline]
    fn add(self, o: Vec2) -> Vec2 {
        Vec2::new(self.x + o.x, self.y + o.y)
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, o: Vec2) -> Vec2 {
        Vec2::new(self.x - o.x, self.y - o.y)
    }
}

impl SubAssign for Vec2 {
    #[inline]
    fn sub_assign(&mut self, o: Vec2) {
        self.x -= o.x;
        self.y -= o.y;
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn mul(self, s: f64) -> Vec2 {
        Vec2::new(self.x * s, self.y * s)
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn div(self, s: f64) -> Vec2 {
        Vec2::new(self.x / s, self.y / s)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    #[inline]
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = Point2::new(1.0, 2.0);
        let b = Point2::new(4.0, 6.0);
        assert_eq!(a.distance(b), b.distance(a));
        assert_eq!(a.distance(a), 0.0);
        assert_eq!(a.distance(b), 5.0);
    }

    #[test]
    fn distance2_avoids_sqrt() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(3.0, 4.0);
        assert_eq!(a.distance2(b), 25.0);
    }

    #[test]
    fn within_is_inclusive_at_the_rim() {
        let a = Point2::origin();
        let b = Point2::new(25.0, 0.0);
        assert!(a.within(b, 25.0));
        assert!(!a.within(Point2::new(25.1, 0.0), 25.0));
    }

    #[test]
    fn point_vector_arithmetic_round_trips() {
        let p = Point2::new(2.0, 3.0);
        let v = Vec2::new(-1.0, 4.0);
        let q = p + v;
        assert_eq!(q - p, v);
        assert_eq!(q - v, p);
    }

    #[test]
    fn midpoint_is_halfway() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(10.0, 4.0);
        assert_eq!(a.midpoint(b), Point2::new(5.0, 2.0));
    }

    #[test]
    fn normalized_zero_vector_is_none() {
        assert!(Vec2::zero().normalized().is_none());
        let v = Vec2::new(3.0, 4.0).normalized().unwrap();
        assert!((v.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dot_product_of_orthogonal_vectors_is_zero() {
        assert_eq!(Vec2::new(1.0, 0.0).dot(Vec2::new(0.0, 5.0)), 0.0);
    }

    #[test]
    fn scalar_ops() {
        let v = Vec2::new(1.0, -2.0);
        assert_eq!(v * 2.0, Vec2::new(2.0, -4.0));
        assert_eq!(v / 2.0, Vec2::new(0.5, -1.0));
        assert_eq!(-v, Vec2::new(-1.0, 2.0));
    }
}
