//! The rectangular simulation arena and its boundary policies.

use crate::{Point2, Vec2};
use serde::{Deserialize, Serialize};

/// How a mobility step that would leave the arena is resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Boundary {
    /// Coordinates are clamped to the arena edge. This matches the paper's
    /// free-space model, where a host simply stops at the wall.
    #[default]
    Clamp,
    /// The step reflects off the wall like a billiard ball.
    Reflect,
    /// Opposite edges are identified (the arena is a torus).
    Torus,
}

/// An axis-aligned rectangle `[x0, x1] x [y0, y1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    pub x0: f64,
    pub y0: f64,
    pub x1: f64,
    pub y1: f64,
}

impl Rect {
    /// Creates a rectangle from its corners. Panics if degenerate or flipped.
    pub fn new(x0: f64, y0: f64, x1: f64, y1: f64) -> Self {
        assert!(x1 > x0 && y1 > y0, "Rect must have positive area");
        Self { x0, y0, x1, y1 }
    }

    /// The paper's arena: a `100 x 100` square anchored at the origin.
    pub fn paper_arena() -> Self {
        Self::new(0.0, 0.0, 100.0, 100.0)
    }

    /// A square `[0, side] x [0, side]`.
    pub fn square(side: f64) -> Self {
        Self::new(0.0, 0.0, side, side)
    }

    #[inline]
    pub fn width(&self) -> f64 {
        self.x1 - self.x0
    }

    #[inline]
    pub fn height(&self) -> f64 {
        self.y1 - self.y0
    }

    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    #[inline]
    pub fn center(&self) -> Point2 {
        Point2::new((self.x0 + self.x1) * 0.5, (self.y0 + self.y1) * 0.5)
    }

    /// Whether `p` lies inside the rectangle (inclusive of the boundary).
    #[inline]
    pub fn contains(&self, p: Point2) -> bool {
        p.x >= self.x0 && p.x <= self.x1 && p.y >= self.y0 && p.y <= self.y1
    }

    /// Applies a displacement to `p` and resolves the boundary per `policy`.
    pub fn step(&self, p: Point2, v: Vec2, policy: Boundary) -> Point2 {
        let raw = p + v;
        match policy {
            Boundary::Clamp => self.clamp(raw),
            Boundary::Reflect => self.reflect(raw),
            Boundary::Torus => self.wrap(raw),
        }
    }

    /// Clamps a point into the rectangle.
    pub fn clamp(&self, p: Point2) -> Point2 {
        Point2::new(p.x.clamp(self.x0, self.x1), p.y.clamp(self.y0, self.y1))
    }

    /// Reflects a point that overshot a wall back inside. Handles multiple
    /// bounces for displacements longer than the arena.
    pub fn reflect(&self, p: Point2) -> Point2 {
        Point2::new(
            reflect_axis(p.x, self.x0, self.x1),
            reflect_axis(p.y, self.y0, self.y1),
        )
    }

    /// Wraps a point around the torus.
    pub fn wrap(&self, p: Point2) -> Point2 {
        Point2::new(
            wrap_axis(p.x, self.x0, self.x1),
            wrap_axis(p.y, self.y0, self.y1),
        )
    }
}

fn reflect_axis(mut v: f64, lo: f64, hi: f64) -> f64 {
    let span = hi - lo;
    // Fold into [lo, lo + 2*span) then mirror the upper half.
    let period = 2.0 * span;
    v = (v - lo).rem_euclid(period);
    if v > span {
        v = period - v;
    }
    lo + v
}

fn wrap_axis(v: f64, lo: f64, hi: f64) -> f64 {
    lo + (v - lo).rem_euclid(hi - lo)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_arena_dimensions() {
        let r = Rect::paper_arena();
        assert_eq!(r.width(), 100.0);
        assert_eq!(r.height(), 100.0);
        assert_eq!(r.area(), 10_000.0);
        assert_eq!(r.center(), Point2::new(50.0, 50.0));
    }

    #[test]
    #[should_panic]
    fn degenerate_rect_panics() {
        let _ = Rect::new(0.0, 0.0, 0.0, 10.0);
    }

    #[test]
    fn contains_is_inclusive() {
        let r = Rect::square(10.0);
        assert!(r.contains(Point2::new(0.0, 0.0)));
        assert!(r.contains(Point2::new(10.0, 10.0)));
        assert!(!r.contains(Point2::new(10.0001, 5.0)));
    }

    #[test]
    fn clamp_stops_at_walls() {
        let r = Rect::square(100.0);
        let p = r.step(Point2::new(99.0, 50.0), Vec2::new(6.0, 0.0), Boundary::Clamp);
        assert_eq!(p, Point2::new(100.0, 50.0));
    }

    #[test]
    fn reflect_bounces_back() {
        let r = Rect::square(100.0);
        let p = r.step(Point2::new(99.0, 50.0), Vec2::new(6.0, 0.0), Boundary::Reflect);
        assert!((p.x - 95.0).abs() < 1e-12);
        assert_eq!(p.y, 50.0);
    }

    #[test]
    fn reflect_handles_multiple_bounces() {
        let r = Rect::square(10.0);
        // 10 + 25 = 35 -> fold by period 20 -> 15 -> mirror -> 5
        let p = r.reflect(Point2::new(35.0, 5.0));
        assert!((p.x - 5.0).abs() < 1e-12);
    }

    #[test]
    fn torus_wraps_around() {
        let r = Rect::square(100.0);
        let p = r.step(Point2::new(99.0, 50.0), Vec2::new(6.0, 0.0), Boundary::Torus);
        assert!((p.x - 5.0).abs() < 1e-12);
    }

    #[test]
    fn all_policies_keep_points_inside() {
        let r = Rect::square(100.0);
        for policy in [Boundary::Clamp, Boundary::Reflect, Boundary::Torus] {
            for (px, py, vx, vy) in [
                (0.0, 0.0, -250.0, -1.0),
                (100.0, 100.0, 333.3, 777.7),
                (50.0, 50.0, 0.0, 0.0),
            ] {
                let q = r.step(Point2::new(px, py), Vec2::new(vx, vy), policy);
                assert!(r.contains(q), "{policy:?} escaped: {q:?}");
            }
        }
    }
}
