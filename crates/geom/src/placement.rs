//! Random host placement.

use crate::{Point2, Rect};
use rand::Rng;

/// Draws one point uniformly at random inside `bounds`.
pub fn uniform_point<R: Rng + ?Sized>(rng: &mut R, bounds: Rect) -> Point2 {
    Point2::new(
        rng.random_range(bounds.x0..=bounds.x1),
        rng.random_range(bounds.y0..=bounds.y1),
    )
}

/// Places `n` hosts uniformly at random inside `bounds` (the paper's host
/// allocation step).
pub fn uniform_points<R: Rng + ?Sized>(rng: &mut R, bounds: Rect, n: usize) -> Vec<Point2> {
    (0..n).map(|_| uniform_point(rng, bounds)).collect()
}

/// Places `n` hosts such that the unit-disk graph of transmission radius
/// `radius` is guaranteed connected: the first host is uniform in `bounds`,
/// and every further host is placed within `radius` of a uniformly chosen
/// already-placed anchor (clipped to `bounds`), so the placement order
/// induces a spanning tree of the resulting topology.
///
/// This is *not* the paper's uniform allocation — the joint distribution is
/// clustered around the anchors. It exists as the fallback for sparse
/// configurations where uniform placement is almost never connected (at the
/// paper's density, a 10-host topology connects in under 1% of uniform
/// draws) and a connected instance is required regardless.
///
/// # Panics
/// Panics if `radius <= 0`.
pub fn connected_uniform_points<R: Rng + ?Sized>(
    rng: &mut R,
    bounds: Rect,
    radius: f64,
    n: usize,
) -> Vec<Point2> {
    assert!(radius > 0.0, "transmission radius must be positive");
    let mut out: Vec<Point2> = Vec::with_capacity(n);
    if n == 0 {
        return out;
    }
    out.push(uniform_point(rng, bounds));
    while out.len() < n {
        let anchor = out[rng.random_range(0..out.len())];
        // Rejection-sample inside the disk around the anchor, clipped to the
        // arena. The anchor is in bounds, so at least a quarter-disk of the
        // sampling box is acceptable and the loop terminates quickly; the
        // cap only guards against pathological float edge cases.
        let bx0 = (anchor.x - radius).max(bounds.x0);
        let bx1 = (anchor.x + radius).min(bounds.x1);
        let by0 = (anchor.y - radius).max(bounds.y0);
        let by1 = (anchor.y + radius).min(bounds.y1);
        let mut placed = anchor; // co-located fallback keeps connectivity
        for _ in 0..64 {
            let p = Point2::new(rng.random_range(bx0..=bx1), rng.random_range(by0..=by1));
            if p.within(anchor, radius) {
                placed = p;
                break;
            }
        }
        out.push(placed);
    }
    out
}

/// Places `n` hosts on a jittered grid: a `ceil(sqrt n)`-per-side lattice
/// with each host displaced uniformly within its lattice cell. Useful for
/// generating well-spread (and thus more often connected) topologies in
/// tests and examples.
pub fn jittered_grid<R: Rng + ?Sized>(rng: &mut R, bounds: Rect, n: usize) -> Vec<Point2> {
    if n == 0 {
        return Vec::new();
    }
    let side = (n as f64).sqrt().ceil() as usize;
    let cw = bounds.width() / side as f64;
    let ch = bounds.height() / side as f64;
    let mut out = Vec::with_capacity(n);
    'outer: for gy in 0..side {
        for gx in 0..side {
            if out.len() == n {
                break 'outer;
            }
            let x0 = bounds.x0 + gx as f64 * cw;
            let y0 = bounds.y0 + gy as f64 * ch;
            out.push(Point2::new(
                rng.random_range(x0..=x0 + cw),
                rng.random_range(y0..=y0 + ch),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn uniform_points_stay_inside() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let bounds = Rect::paper_arena();
        for p in uniform_points(&mut rng, bounds, 500) {
            assert!(bounds.contains(p));
        }
    }

    #[test]
    fn uniform_points_count() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        assert_eq!(uniform_points(&mut rng, Rect::square(10.0), 0).len(), 0);
        assert_eq!(uniform_points(&mut rng, Rect::square(10.0), 17).len(), 17);
    }

    #[test]
    fn jittered_grid_counts_and_bounds() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let bounds = Rect::square(100.0);
        for n in [0usize, 1, 2, 9, 10, 37, 100] {
            let pts = jittered_grid(&mut rng, bounds, n);
            assert_eq!(pts.len(), n);
            assert!(pts.iter().all(|&p| bounds.contains(p)));
        }
    }

    #[test]
    fn jittered_grid_spreads_points() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let pts = jittered_grid(&mut rng, Rect::square(100.0), 16);
        // 4x4 lattice with 25-unit cells: first and last point are far apart.
        assert!(pts[0].distance(pts[15]) > 50.0);
    }

    #[test]
    fn connected_placement_has_a_spanning_tree_within_radius() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let bounds = Rect::paper_arena();
        for n in [0usize, 1, 2, 3, 10, 40] {
            let pts = connected_uniform_points(&mut rng, bounds, 25.0, n);
            assert_eq!(pts.len(), n);
            assert!(pts.iter().all(|&p| bounds.contains(p)));
            // Union-find over the radius graph must end with one component.
            let mut parent: Vec<usize> = (0..n).collect();
            fn find(parent: &mut [usize], mut v: usize) -> usize {
                while parent[v] != v {
                    parent[v] = parent[parent[v]];
                    v = parent[v];
                }
                v
            }
            for i in 0..n {
                for j in i + 1..n {
                    if pts[i].within(pts[j], 25.0) {
                        let (a, b) = (find(&mut parent, i), find(&mut parent, j));
                        parent[a] = b;
                    }
                }
            }
            let roots: std::collections::HashSet<usize> =
                (0..n).map(|v| find(&mut parent, v)).collect();
            assert!(roots.len() <= 1, "n={n} split into {} components", roots.len());
        }
    }

    #[test]
    fn placement_is_deterministic_per_seed() {
        let bounds = Rect::paper_arena();
        let a = uniform_points(&mut rand::rngs::StdRng::seed_from_u64(9), bounds, 20);
        let b = uniform_points(&mut rand::rngs::StdRng::seed_from_u64(9), bounds, 20);
        assert_eq!(a, b);
    }
}
