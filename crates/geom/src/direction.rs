//! The eight compass directions of the paper's movement model.
//!
//! In Section 4 a moving host picks `dir = rand(1, 8)`, one of
//! E, S, W, N, SE, NE, SW and NW, and moves `l` units along it. Diagonal
//! moves displace the host by `l` along *each* axis in the paper's integer
//! grid reading; we expose both that reading ([`Compass::offset`]) and a
//! unit-length reading ([`Compass::unit`]) so the simulator can choose.

use crate::Vec2;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One of the paper's eight movement directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Compass {
    E,
    S,
    W,
    N,
    SE,
    NE,
    SW,
    NW,
}

impl Compass {
    /// All eight directions, in the paper's listing order (E, S, W, N, SE,
    /// NE, SW, NW), so that `ALL[dir - 1]` matches `dir = rand(1, 8)`.
    pub const ALL: [Compass; 8] = [
        Compass::E,
        Compass::S,
        Compass::W,
        Compass::N,
        Compass::SE,
        Compass::NE,
        Compass::SW,
        Compass::NW,
    ];

    /// Draws a direction uniformly at random (the paper's `rand(1, 8)`).
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Compass {
        Self::ALL[rng.random_range(0..8)]
    }

    /// The axis step of this direction: each component is -1, 0 or +1.
    ///
    /// The simulation plane puts `+y` to the north.
    #[inline]
    pub fn axis(&self) -> (f64, f64) {
        match self {
            Compass::E => (1.0, 0.0),
            Compass::S => (0.0, -1.0),
            Compass::W => (-1.0, 0.0),
            Compass::N => (0.0, 1.0),
            Compass::SE => (1.0, -1.0),
            Compass::NE => (1.0, 1.0),
            Compass::SW => (-1.0, -1.0),
            Compass::NW => (-1.0, 1.0),
        }
    }

    /// Displacement of `l` units along each axis (grid reading: a diagonal
    /// move of `l` shifts both coordinates by `l`, total length `l * sqrt 2`).
    #[inline]
    pub fn offset(&self, l: f64) -> Vec2 {
        let (dx, dy) = self.axis();
        Vec2::new(dx * l, dy * l)
    }

    /// Unit-length direction vector (diagonals normalised to length 1), so
    /// `unit() * l` always moves exactly `l` units.
    #[inline]
    pub fn unit(&self) -> Vec2 {
        let (dx, dy) = self.axis();
        let v = Vec2::new(dx, dy);
        // Axis steps are never zero-length.
        v.normalized().expect("compass axis is non-zero")
    }

    /// Whether the direction is diagonal.
    #[inline]
    pub fn is_diagonal(&self) -> bool {
        let (dx, dy) = self.axis();
        dx != 0.0 && dy != 0.0
    }

    /// The opposite direction.
    pub fn opposite(&self) -> Compass {
        match self {
            Compass::E => Compass::W,
            Compass::W => Compass::E,
            Compass::N => Compass::S,
            Compass::S => Compass::N,
            Compass::NE => Compass::SW,
            Compass::SW => Compass::NE,
            Compass::NW => Compass::SE,
            Compass::SE => Compass::NW,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn eight_distinct_directions() {
        let mut seen = std::collections::HashSet::new();
        for d in Compass::ALL {
            seen.insert(d.axis().0.to_bits() ^ d.axis().1.to_bits().rotate_left(17));
        }
        assert_eq!(Compass::ALL.len(), 8);
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn unit_vectors_have_length_one() {
        for d in Compass::ALL {
            assert!((d.unit().norm() - 1.0).abs() < 1e-12, "{d:?}");
        }
    }

    #[test]
    fn offset_matches_axis_times_l() {
        assert_eq!(Compass::NE.offset(3.0), Vec2::new(3.0, 3.0));
        assert_eq!(Compass::W.offset(2.0), Vec2::new(-2.0, 0.0));
    }

    #[test]
    fn opposite_is_involutive_and_reverses_axis() {
        for d in Compass::ALL {
            assert_eq!(d.opposite().opposite(), d);
            let (dx, dy) = d.axis();
            let (ox, oy) = d.opposite().axis();
            assert_eq!((dx, dy), (-ox, -oy));
        }
    }

    #[test]
    fn diagonals_are_exactly_four() {
        assert_eq!(Compass::ALL.iter().filter(|d| d.is_diagonal()).count(), 4);
    }

    #[test]
    fn random_draws_cover_all_directions() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            seen.insert(format!("{:?}", Compass::random(&mut rng)));
        }
        assert_eq!(seen.len(), 8);
    }
}
