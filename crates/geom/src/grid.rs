//! A uniform spatial hash grid for radius queries.
//!
//! Building the unit-disk graph naively costs O(n^2) distance checks. The
//! grid bins points into square cells with side >= query radius, so a radius
//! query only inspects the 3x3 block of cells around the query point. For
//! the paper's parameters (up to 100 hosts, radius 25 in a 100x100 arena)
//! both approaches are fast, but the grid keeps large-N sweeps (benchmarks
//! use thousands of hosts) linear.

use crate::{Point2, Rect};

/// A spatial index over a fixed set of points.
#[derive(Debug, Clone)]
pub struct SpatialGrid {
    bounds: Rect,
    cell: f64,
    nx: usize,
    ny: usize,
    /// CSR-style bucket layout: `starts[c]..starts[c+1]` indexes `items`.
    starts: Vec<u32>,
    items: Vec<u32>,
    points: Vec<Point2>,
}

impl SpatialGrid {
    /// Builds a grid over `points` with cells sized for queries of radius
    /// `radius`. Points outside `bounds` are clamped into it for binning
    /// purposes (they keep their true coordinates for distance checks).
    pub fn build(bounds: Rect, radius: f64, points: &[Point2]) -> Self {
        assert!(radius > 0.0, "query radius must be positive");
        let cell = radius;
        let nx = (bounds.width() / cell).ceil().max(1.0) as usize;
        let ny = (bounds.height() / cell).ceil().max(1.0) as usize;
        let ncells = nx * ny;

        // Counting sort into buckets (two passes, no per-bucket Vec churn).
        let mut counts = vec![0u32; ncells + 1];
        let cell_of = |p: Point2| -> usize {
            let q = bounds.clamp(p);
            let cx = (((q.x - bounds.x0) / cell) as usize).min(nx - 1);
            let cy = (((q.y - bounds.y0) / cell) as usize).min(ny - 1);
            cy * nx + cx
        };
        for &p in points {
            counts[cell_of(p) + 1] += 1;
        }
        for i in 0..ncells {
            counts[i + 1] += counts[i];
        }
        let starts = counts.clone();
        let mut cursor = counts;
        let mut items = vec![0u32; points.len()];
        for (i, &p) in points.iter().enumerate() {
            let c = cell_of(p);
            items[cursor[c] as usize] = i as u32;
            cursor[c] += 1;
        }

        Self {
            bounds,
            cell,
            nx,
            ny,
            starts,
            items,
            points: points.to_vec(),
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Calls `f(index)` for every point within `radius` of `p`, **excluding**
    /// the point with index `skip` (pass `usize::MAX` to keep all).
    ///
    /// `radius` must not exceed the radius the grid was built with, otherwise
    /// neighbours in cells beyond the 3x3 block would be missed; this is
    /// checked with an assertion.
    pub fn for_each_within<F: FnMut(usize)>(&self, p: Point2, radius: f64, skip: usize, mut f: F) {
        assert!(
            radius <= self.cell + crate::EPS,
            "query radius {radius} exceeds grid cell size {}",
            self.cell
        );
        let r2 = radius * radius + crate::EPS;
        let q = self.bounds.clamp(p);
        let cx = (((q.x - self.bounds.x0) / self.cell) as usize).min(self.nx - 1) as isize;
        let cy = (((q.y - self.bounds.y0) / self.cell) as usize).min(self.ny - 1) as isize;
        for dy in -1..=1isize {
            let y = cy + dy;
            if y < 0 || y >= self.ny as isize {
                continue;
            }
            for dx in -1..=1isize {
                let x = cx + dx;
                if x < 0 || x >= self.nx as isize {
                    continue;
                }
                let c = y as usize * self.nx + x as usize;
                let (lo, hi) = (self.starts[c] as usize, self.starts[c + 1] as usize);
                for &j in &self.items[lo..hi] {
                    let j = j as usize;
                    if j != skip && self.points[j].distance2(p) <= r2 {
                        f(j);
                    }
                }
            }
        }
    }

    /// Collects the indices of all points within `radius` of point `i`
    /// (excluding `i` itself).
    pub fn neighbors_of(&self, i: usize, radius: f64) -> Vec<usize> {
        let mut out = Vec::new();
        self.for_each_within(self.points[i], radius, i, |j| out.push(j));
        out
    }

    /// The indexed points, in insertion order.
    pub fn points(&self) -> &[Point2] {
        &self.points
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn brute_neighbors(points: &[Point2], i: usize, r: f64) -> Vec<usize> {
        (0..points.len())
            .filter(|&j| j != i && points[i].within(points[j], r))
            .collect()
    }

    #[test]
    fn empty_grid() {
        let g = SpatialGrid::build(Rect::square(100.0), 25.0, &[]);
        assert!(g.is_empty());
        assert_eq!(g.len(), 0);
    }

    #[test]
    fn single_cell_arena() {
        // radius bigger than arena: everything lands in one cell.
        let pts = vec![Point2::new(1.0, 1.0), Point2::new(2.0, 2.0), Point2::new(9.0, 9.0)];
        let g = SpatialGrid::build(Rect::square(10.0), 50.0, &pts);
        assert_eq!(g.neighbors_of(0, 5.0), vec![1]);
    }

    #[test]
    fn matches_brute_force_on_random_points() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for n in [1usize, 2, 10, 100, 400] {
            let pts: Vec<Point2> = (0..n)
                .map(|_| Point2::new(rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)))
                .collect();
            let g = SpatialGrid::build(Rect::square(100.0), 25.0, &pts);
            for i in 0..n {
                let mut fast = g.neighbors_of(i, 25.0);
                fast.sort_unstable();
                assert_eq!(fast, brute_neighbors(&pts, i, 25.0), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn smaller_query_radius_is_allowed() {
        let pts = vec![Point2::new(0.0, 0.0), Point2::new(10.0, 0.0), Point2::new(30.0, 0.0)];
        let g = SpatialGrid::build(Rect::square(100.0), 25.0, &pts);
        assert_eq!(g.neighbors_of(0, 15.0), vec![1]);
    }

    #[test]
    #[should_panic]
    fn larger_query_radius_panics() {
        let pts = vec![Point2::new(0.0, 0.0)];
        let g = SpatialGrid::build(Rect::square(100.0), 25.0, &pts);
        g.neighbors_of(0, 26.0);
    }

    #[test]
    fn points_on_cell_boundaries_are_found() {
        // Points exactly on the 25-unit cell lines.
        let pts = vec![
            Point2::new(25.0, 25.0),
            Point2::new(50.0, 25.0),
            Point2::new(25.0, 50.0),
            Point2::new(50.0, 50.0),
        ];
        let g = SpatialGrid::build(Rect::square(100.0), 25.0, &pts);
        let mut n0 = g.neighbors_of(0, 25.0);
        n0.sort_unstable();
        assert_eq!(n0, vec![1, 2]); // (50,50) is at distance 25*sqrt2 > 25
    }

    #[test]
    fn out_of_bounds_points_are_still_indexed() {
        let pts = vec![Point2::new(-5.0, 50.0), Point2::new(3.0, 50.0)];
        let g = SpatialGrid::build(Rect::square(100.0), 25.0, &pts);
        assert_eq!(g.neighbors_of(1, 25.0), vec![0]);
    }
}
