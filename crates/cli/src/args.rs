//! A small `--flag value` argument parser.
//!
//! The workspace deliberately avoids new external dependencies (see
//! DESIGN.md), and the CLI's needs are modest: subcommands with typed
//! `--key value` options and a few boolean switches.

use std::collections::BTreeMap;

/// Options valid on every subcommand, consumed by `main` before dispatch;
/// [`Args::check_known`] always accepts them.
pub const GLOBAL_OPTS: &[&str] = &["log-level"];

/// Parsed arguments: a subcommand plus `--key value` options.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The first positional token (subcommand).
    pub command: Option<String>,
    /// Positional tokens after the subcommand (e.g. the two snapshot
    /// paths of `obs-report --diff old.jsonl new.jsonl`). Commands that
    /// take none reject them via [`Args::check_known`].
    pub positionals: Vec<String>,
    /// `--key value` pairs, last occurrence wins.
    options: BTreeMap<String, String>,
    /// Bare `--flag` switches.
    flags: Vec<String>,
}

/// A parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses a token stream (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(tokens: I) -> Result<Self, ArgError> {
        let mut out = Args::default();
        let mut it = tokens.into_iter().peekable();
        while let Some(tok) = it.next() {
            if let Some(key) = tok.strip_prefix("--") {
                if key.is_empty() {
                    return Err(ArgError("empty option name '--'".into()));
                }
                // `--key=value` or `--key value` or bare switch.
                if let Some((k, v)) = key.split_once('=') {
                    out.options.insert(k.to_string(), v.to_string());
                } else if it.peek().is_some_and(|n| !n.starts_with("--")) {
                    out.options.insert(key.to_string(), it.next().unwrap());
                } else {
                    out.flags.push(key.to_string());
                }
            } else if out.command.is_none() {
                out.command = Some(tok);
            } else {
                out.positionals.push(tok);
            }
        }
        Ok(out)
    }

    /// A string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Whether a bare `--flag` was given.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// A typed option with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| ArgError(format!("--{key}: cannot parse '{raw}'"))),
        }
    }

    /// A required typed option.
    pub fn require<T: std::str::FromStr>(&self, key: &str) -> Result<T, ArgError> {
        let raw = self
            .get(key)
            .ok_or_else(|| ArgError(format!("missing required option --{key}")))?;
        raw.parse()
            .map_err(|_| ArgError(format!("--{key}: cannot parse '{raw}'")))
    }

    /// Rejects options/flags outside `allowed` (catches typos) and any
    /// positional argument — commands that take positionals use
    /// [`Args::check_known_with_positionals`]. The [`GLOBAL_OPTS`] are
    /// accepted everywhere.
    pub fn check_known(&self, allowed: &[&str]) -> Result<(), ArgError> {
        self.check_known_with_positionals(allowed, 0)
    }

    /// [`Args::check_known`] for commands accepting up to
    /// `max_positionals` positional arguments.
    pub fn check_known_with_positionals(
        &self,
        allowed: &[&str],
        max_positionals: usize,
    ) -> Result<(), ArgError> {
        if self.positionals.len() > max_positionals {
            return Err(ArgError(format!(
                "unexpected positional argument '{}'",
                self.positionals[max_positionals]
            )));
        }
        for k in self.options.keys().map(String::as_str).chain(self.flags.iter().map(String::as_str)) {
            if !allowed.contains(&k) && !GLOBAL_OPTS.contains(&k) {
                return Err(ArgError(format!(
                    "unknown option --{k} (expected one of: {})",
                    allowed
                        .iter()
                        .map(|a| format!("--{a}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Args, ArgError> {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn subcommand_and_options() {
        let a = parse("cds --n 40 --policy el1").unwrap();
        assert_eq!(a.command.as_deref(), Some("cds"));
        assert_eq!(a.get("n"), Some("40"));
        assert_eq!(a.get("policy"), Some("el1"));
    }

    #[test]
    fn equals_form() {
        let a = parse("gen --n=10 --radius=25.5").unwrap();
        assert_eq!(a.get_or("n", 0usize).unwrap(), 10);
        assert_eq!(a.get_or("radius", 0.0f64).unwrap(), 25.5);
    }

    #[test]
    fn bare_flags() {
        let a = parse("simulate --verbose --n 5").unwrap();
        assert!(a.flag("verbose"));
        assert!(!a.flag("quiet"));
        assert_eq!(a.get("n"), Some("5"));
    }

    #[test]
    fn last_option_wins() {
        let a = parse("x --n 1 --n 2").unwrap();
        assert_eq!(a.get("n"), Some("2"));
    }

    #[test]
    fn typed_accessors() {
        let a = parse("x --n 7").unwrap();
        assert_eq!(a.get_or("n", 3usize).unwrap(), 7);
        assert_eq!(a.get_or("m", 3usize).unwrap(), 3);
        assert_eq!(a.require::<usize>("n").unwrap(), 7);
        assert!(a.require::<usize>("absent").is_err());
        assert!(a.get_or("n", 0.0f32).is_ok());
        assert!(parse("x --n seven").unwrap().get_or("n", 0usize).is_err());
    }

    #[test]
    fn rejects_extra_positionals_and_unknown_options() {
        // Positionals parse, but commands reject them unless opted in.
        let a = parse("a b c").unwrap();
        assert_eq!(a.positionals, vec!["b", "c"]);
        assert!(a.check_known(&[]).is_err());
        assert!(a.check_known_with_positionals(&[], 1).is_err());
        assert!(a.check_known_with_positionals(&[], 2).is_ok());
        let a = parse("x --good 1 --bad 2").unwrap();
        assert!(a.check_known(&["good"]).is_err());
        assert!(a.check_known(&["good", "bad"]).is_ok());
    }

    #[test]
    fn global_options_are_always_known() {
        let a = parse("x --log-level debug --n 3").unwrap();
        assert!(a.check_known(&["n"]).is_ok());
        assert_eq!(a.get("log-level"), Some("debug"));
    }

    #[test]
    fn empty_input() {
        let a = parse("").unwrap();
        assert!(a.command.is_none());
    }
}
