//! `pacds` — command-line interface to the PACDS workspace.
//!
//! ```text
//! pacds gen        generate a unit-disk topology (edge list / DOT / JSON)
//! pacds cds        compute the gateway set of a topology under a policy
//! pacds route      route a packet with the 3-step procedure
//! pacds simulate   run a network-lifetime simulation
//! pacds compare    compare all policies on one network
//! pacds obs-report run instrumented and print the phase/counter breakdown
//! pacds shard      compute a large unit-disk CDS on the sharded engine
//! pacds churn      replay a churn workload through the incremental engine
//! pacds dataplane  drive packet traffic over the backbone forwarding engine
//! pacds serve      run the TCP query service (binary protocol + cache)
//! pacds loadgen    drive load at a server; throughput + latency report
//! pacds cluster    front several servers with a consistent-hash coordinator
//! ```
//!
//! Run `pacds help [command]` for options. Every command accepts
//! `--log-level <off|error|warn|info|debug|trace>` (or the `PACDS_LOG`
//! environment variable) for diagnostic logging on stderr.

mod args;
mod commands;

use args::Args;
use std::process::ExitCode;

/// Runs one subcommand under a log span so `--log-level debug` reports
/// entry, exit, and wall time for every entry point.
fn dispatch(
    name: &'static str,
    f: impl FnOnce() -> commands::CliResult,
) -> commands::CliResult {
    let _span = pacds_obs::log::span(name);
    f()
}

fn main() -> ExitCode {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Environment first, then the flag, so `--log-level` wins.
    pacds_obs::log::init_from_env();
    if let Some(raw) = args.get("log-level") {
        match pacds_obs::log::parse_level(raw) {
            Some(l) => pacds_obs::log::set_level(l),
            None => {
                eprintln!(
                    "error: --log-level: unknown level '{raw}' \
                     (off|error|warn|info|debug|trace)"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    let command = args.command.clone().unwrap_or_else(|| "help".to_string());
    let result = match command.as_str() {
        "gen" => dispatch("cli.gen", || commands::gen(&args)),
        "cds" => dispatch("cli.cds", || commands::cds(&args)),
        "route" => dispatch("cli.route", || commands::route(&args)),
        "simulate" => dispatch("cli.simulate", || commands::simulate(&args)),
        "compare" => dispatch("cli.compare", || commands::compare(&args)),
        "trace" => dispatch("cli.trace", || commands::trace(&args)),
        "watch" => dispatch("cli.watch", || commands::watch(&args)),
        "robustness" => dispatch("cli.robustness", || commands::robustness(&args)),
        "explain" => dispatch("cli.explain", || commands::explain(&args)),
        "run" => dispatch("cli.run", || commands::run_scenario(&args)),
        "scenario-template" => {
            dispatch("cli.scenario-template", || commands::scenario_template(&args))
        }
        "obs-report" => dispatch("cli.obs-report", || commands::obs_report(&args)),
        "shard" => dispatch("cli.shard", || commands::shard(&args)),
        "churn" => dispatch("cli.churn", || commands::churn(&args)),
        "dataplane" => dispatch("cli.dataplane", || commands::dataplane(&args)),
        "serve" => dispatch("cli.serve", || commands::serve(&args)),
        "loadgen" => dispatch("cli.loadgen", || commands::loadgen(&args)),
        "cluster" => dispatch("cli.cluster", || commands::cluster(&args)),
        "help" | "--help" | "-h" => {
            print!("{}", commands::HELP);
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n\n{}", commands::HELP).into()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
