//! `pacds` — command-line interface to the PACDS workspace.
//!
//! ```text
//! pacds gen       generate a unit-disk topology (edge list / DOT / JSON)
//! pacds cds       compute the gateway set of a topology under a policy
//! pacds route     route a packet with the 3-step procedure
//! pacds simulate  run a network-lifetime simulation
//! pacds compare   compare all policies on one network
//! ```
//!
//! Run `pacds help [command]` for options.

mod args;
mod commands;

use args::Args;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let command = args.command.clone().unwrap_or_else(|| "help".to_string());
    let result = match command.as_str() {
        "gen" => commands::gen(&args),
        "cds" => commands::cds(&args),
        "route" => commands::route(&args),
        "simulate" => commands::simulate(&args),
        "compare" => commands::compare(&args),
        "trace" => commands::trace(&args),
        "watch" => commands::watch(&args),
        "robustness" => commands::robustness(&args),
        "explain" => commands::explain(&args),
        "run" => commands::run_scenario(&args),
        "scenario-template" => commands::scenario_template(&args),
        "help" | "--help" | "-h" => {
            print!("{}", commands::HELP);
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n\n{}", commands::HELP).into()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
