//! The CLI subcommands.

use crate::args::Args;
use pacds_core::{compute_cds_trace, verify_cds, CdsConfig, CdsInput, Policy};
use pacds_energy::DrainModel;
use pacds_geom::Rect;
use pacds_graph::{algo, gen, io, mask_to_vec, Graph};
use pacds_routing::RoutingState;
use pacds_sim::{SimConfig, Simulation};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

pub type CliResult = Result<(), Box<dyn std::error::Error>>;

/// Top-level usage text.
pub const HELP: &str = "\
pacds — power-aware connected dominating sets (Wu/Gao/Stojmenovic, ICPP'01)

USAGE: pacds <command> [--option value ...]

COMMANDS:
  gen       Generate a unit-disk topology.
              --n <int=40> --radius <f=25> --side <f=100> --seed <int=1>
              --format <edges|dot|json =edges> --connected
  cds       Compute the gateway set of a topology.
              topology: --input <edge-list file> | (--n/--radius/--seed as gen)
              --policy <nr|id|nd|el1|el2 =id> --semantics <safe|literal|seq =safe>
              --energy-seed <int> (random levels; default: uniform full)
              --dot (emit DOT with gateways highlighted)
  route     Route between two hosts over the gateway overlay.
              topology options as cds, plus --from <id> --to <id>
  simulate  Run the update-interval lifetime simulation.
              --n <int=50> --policy <..=el1> --model <1|2|3|d2 =2>
              --trials <int=10> --seed <int=1> --incremental
  compare   All five policies on one topology: set sizes + verification.
              topology options as cds
  trace     Run a simulation and emit a JSON-lines trace (one interval/line).
              --n <int=30> --policy <..=el1> --model <..=2> --seed <int=1>
              --max <int=200> --out <file; default stdout>
  watch     ASCII animation of the arena over a few intervals.
              --n <int=30> --policy <..=el1> --intervals <int=8> --seed <int=1>
  robustness  Backbone robustness (cut vertices / bridges / sole dominators).
              topology options as cds, plus --policy/--semantics/--energy-seed
  explain   Why is a host a gateway (or not) under a policy?
              topology options as cds, plus --host <id> (omit: all hosts)
  run       Execute a scenario file and print the JSON result.
              --scenario <file.json>
  scenario-template
            Print an editable scenario JSON to stdout.
  obs-report
            Run an instrumented lifetime simulation and print the phase
            timer / rule-counter breakdown (build with --features obs for
            populated numbers).
              --n <int=50> --policy <..=el1> --model <..=2> --seed <int=1>
              --intervals <int=50> --semantics <..=safe>
              --format <table|jsonl|prometheus =table>
              --workload <sim|shard =sim> (shard: one sharded unit-disk
              compute at --n with --shards/--threads, reporting the
              shard.* phases and counters instead of a simulation)
              --trace-jsonl <file> (write sampled span traces after the
              workload; --trace-sample <N=1> traces every Nth candidate;
              needs --features trace)
              --diff <old.jsonl> <new.jsonl> (no workload: print the
              counter/phase deltas between two snapshot JSONL files)
              --live <host:port> (no workload: subscribe to a running
              server's stats stream and print one row per window;
              --interval-ms <int=1000>, --windows <int; 0 = forever>)
  shard     Compute the gateway set of a large unit-disk instance on the
            spatially-sharded engine (bit-identical to the whole-graph
            pipeline; the full adjacency never materialises).
              --n <int=50000> --radius <f=25> --seed <int=1>
              --side <f; default scales with n for constant density>
              --shards <int; 0 = scale with n> --halo <hops=2>
              --threads <int; 0 = all cores> --policy <..=nd>
              --semantics <safe|literal|seq =safe> --energy-seed <int>
              --check (also run the whole-graph pipeline and assert
              bit-identity; needs the O(n²)-bit bitmap, so moderate n)
              --compare (like --check, plus report the speedup)
              --expect-workers <int=0> (fail unless at least this many
              executors solved >= 1 tile — the work-distribution gate
              CI uses where wall-clock scaling cannot be trusted)
              --json <file> (write stats as one JSON object)
              --fail-on-errors (exit non-zero if a requested check could
              not run, e.g. --check skipped because n is too large)
  churn     Replay a synthetic churn workload (mobility walk, battery
            drain, host deaths and arrivals) through the incremental
            ChurnEngine: dirty tiles from the 2-hop halo licence, only
            those re-solved per step.
              --n <int=5000> --seed <int=1> --radius <f=25>
              --side <f; default scales with n for constant density>
              --shards <int; 0 = scale with n> --threads <int; 0 = all>
              --policy <..=nd> --semantics <safe|literal =safe>
              --energy-seed <int> --steps <int=20>
              --events <int; per step; default max(n/100, 4)>
              --trace-jsonl <file> (one trace per step: refresh + dirty
              tile spans; --trace-sample <N=1>; needs --features trace)
              --check (after every step, re-solve from scratch on the
              sharded engine in masked mode and assert bit-identity)
              --max-resolved-frac <f=1.0> (fail if the mean re-solved
              tile fraction across steps exceeds this — the locality
              gate CI uses where wall-clock cannot be trusted)
              --json <file> (write totals as one JSON object)
  dataplane Drive packet traffic over the backbone forwarding engine:
            source-routed unicast flows plus blind/gateway broadcasts,
            with optional gateway kills to exercise the NACK → refresh →
            retransmit path.
              --n <int=5000> --seed <int=1> --radius <f=25>
              --side <f; default scales with n for constant density>
              --shards <int; 0 = scale with n> --threads <int; 0 = all>
              --policy <..=nd> --semantics <safe|literal =safe>
              --energy-seed <int> --flows <int=64> --packets <int=16;
              per flow per wave> --waves <int=10>
              --kill-every <int=0; kill one gateway every Nth wave>
              --broadcast <none|blind|gateway|both =both>
              --trace-jsonl <file> (one trace per wave; --trace-sample
              <N=1>; needs --features trace)
              --json <file> (write totals as one JSON object)
              --fail-on-errors (exit non-zero on misroutes, drops, or
              packets left undelivered)
  serve     Run the CDS query service (length-prefixed binary protocol
            over TCP, sharded result cache, bounded worker pool).
              --addr <host:port =127.0.0.1:7311> --workers <int=cores>
              --queue <int=4*workers> --cache-mb <int=64>
              --duration <secs; 0 = run until killed>
              --shard <auto|always|never =auto> (route compute requests
              through the sharded engine; responses are bit-identical)
              --shard-threshold <nodes=20000> --shards <int; 0 = auto>
              --metrics-addr <host:port> (plain-HTTP Prometheus scrape
              endpoint) --trace-sample <int=0> (span sampling rate;
              needs --features trace)
  loadgen   Drive closed- or open-loop load at a running server and
            report throughput and p50/p99/p999 latency.
              --addr <host:port =127.0.0.1:7311> --duration <secs=10>
              --concurrency <int=8> --mode <closed|open =closed>
              --rate <req/s; open mode> --n <int=200> --radius <f=15>
              --side <f=100> --seed <int=1> --policy <..=nd>
              --semantics <..=safe> --no-cache --deadline-ms <int=0>
              --gen-seeds <int=0> (cycle GenCompute requests over this
              many seeds instead of replaying one ComputeCds — the
              keyspace-spreading workload `cluster --loadgen` uses)
              --mutate-every <int=0> / --query-every <int=0> (mix in a
              Mutate / QueryTile request every Nth request per worker;
              the report then breaks latency down per frame kind)
              --json <file> (write the report as one JSON object)
              --obs-jsonl <file> (write an obs snapshot after the run;
              pairs with --self-host to capture the server's counters)
              --fail-on-errors (exit non-zero on any protocol/io error)
              --self-host (spin up an in-process server on an ephemeral
              port and aim the load at it; --workers/--cache-mb and the
              --shard/--shard-threshold/--shards routing flags apply)
  cluster   Front several pacds-serve backends with one consistent-hash
            coordinator: requests route by canonical digest, health
            probes evict dead backends, affected keys fail over to the
            survivors (cold, never wrong).
              --addr <host:port =127.0.0.1:7411>
              --backends <host:port,host:port,...> (external backends)
              --self-host <int=0> (also spawn N in-process backends;
              --backend-workers <int=8> --cache-mb <int=64> shape them)
              --workers <int=4> --queue <int=4*workers> (proxy pool)
              --vnodes <int=256> --probe-interval-ms <int=200>
              --fail-threshold <int=2> --rise-threshold <int=2>
              --duration <secs; 0 = run until killed>
              --loadgen (drive the built-in load generator at the
              coordinator for --duration instead of parking; the
              loadgen topology/policy flags apply, --gen-seeds <int=64>)
              --kill-after <secs=0> (self-host drill: shut down the last
              backend mid-run) --drain-after <secs=0> (drain b0 mid-run)
              --expect-failover (exit non-zero unless a failover was
              observed in the coordinator counters)
              --json <file> (write loadgen report + cluster counters)
              --fail-on-errors (exit non-zero on any protocol/io error)
  help      Show this message.

GLOBAL OPTIONS (all commands):
  --log-level <off|error|warn|info|debug|trace>
            Diagnostic logging on stderr; the PACDS_LOG environment
            variable sets the default.
";

fn policy_of(name: &str) -> Result<Policy, String> {
    Ok(match name.to_ascii_lowercase().as_str() {
        "nr" => Policy::NoPruning,
        "id" => Policy::Id,
        "nd" => Policy::Degree,
        "el1" => Policy::Energy,
        "el2" => Policy::EnergyDegree,
        other => return Err(format!("unknown policy '{other}' (nr|id|nd|el1|el2)")),
    })
}

fn cds_config_of(policy: Policy, semantics: &str) -> Result<CdsConfig, String> {
    Ok(match semantics.to_ascii_lowercase().as_str() {
        "safe" => CdsConfig::policy(policy),
        "literal" => CdsConfig::paper(policy),
        "seq" | "sequential" => CdsConfig::sequential(policy),
        other => return Err(format!("unknown semantics '{other}' (safe|literal|seq)")),
    })
}

fn model_of(name: &str) -> Result<DrainModel, String> {
    Ok(match name {
        "1" => DrainModel::ConstantTotal,
        "2" => DrainModel::LinearInN,
        "3" => DrainModel::QuadraticInN,
        "d2" => DrainModel::ConstantPerGateway { value: 2.0 },
        other => return Err(format!("unknown drain model '{other}' (1|2|3|d2)")),
    })
}

/// Builds a topology from `--input` or generation options.
fn topology(args: &Args) -> Result<Graph, Box<dyn std::error::Error>> {
    if let Some(path) = args.get("input") {
        let text = std::fs::read_to_string(path)?;
        return Ok(io::from_edge_list(&text)?);
    }
    let n: usize = args.get_or("n", 40)?;
    let radius: f64 = args.get_or("radius", 25.0)?;
    let side: f64 = args.get_or("side", 100.0)?;
    let seed: u64 = args.get_or("seed", 1)?;
    let bounds = Rect::square(side);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut last = Graph::new(0);
    for _ in 0..200 {
        let pts = pacds_geom::placement::uniform_points(&mut rng, bounds, n);
        last = gen::unit_disk(bounds, radius, &pts);
        if !args.flag("connected") || algo::is_connected(&last) {
            return Ok(last);
        }
    }
    eprintln!("warning: no connected placement found in 200 draws; using the last one");
    Ok(last)
}

/// Energy levels for the topology: random under `--energy-seed`, else full.
fn energy_levels(args: &Args, n: usize) -> Result<Vec<u64>, Box<dyn std::error::Error>> {
    match args.get("energy-seed") {
        None => Ok(vec![10; n]),
        Some(_) => {
            let seed: u64 = args.require("energy-seed")?;
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            use rand::Rng;
            Ok((0..n).map(|_| rng.random_range(0..=10u64)).collect())
        }
    }
}

const TOPOLOGY_OPTS: &[&str] = &[
    "input", "n", "radius", "side", "seed", "connected",
];

/// `pacds gen`
pub fn gen(args: &Args) -> CliResult {
    let mut known = TOPOLOGY_OPTS.to_vec();
    known.push("format");
    args.check_known(&known)?;
    let g = topology(args)?;
    match args.get("format").unwrap_or("edges") {
        "edges" => print!("{}", io::to_edge_list(&g)),
        "dot" => print!("{}", io::to_dot(&g, None)),
        "json" => println!("{}", serde_json::to_string(&g)?),
        other => return Err(format!("unknown format '{other}' (edges|dot|json)").into()),
    }
    Ok(())
}

/// `pacds cds`
pub fn cds(args: &Args) -> CliResult {
    let mut known = TOPOLOGY_OPTS.to_vec();
    known.extend(["policy", "semantics", "energy-seed", "dot"]);
    args.check_known(&known)?;
    let g = topology(args)?;
    let policy = policy_of(args.get("policy").unwrap_or("id"))?;
    let cfg = cds_config_of(policy, args.get("semantics").unwrap_or("safe"))?;
    let energy = energy_levels(args, g.n())?;
    let trace = compute_cds_trace(&CdsInput::with_energy(&g, &energy), &cfg);
    if args.flag("dot") {
        print!("{}", io::to_dot(&g, Some(&trace.after_rule2)));
        return Ok(());
    }
    println!(
        "hosts: {}   links: {}   connected: {}",
        g.n(),
        g.m(),
        algo::is_connected(&g)
    );
    println!(
        "policy {} ({:?}/{:?}): marked {} -> rule1 {} -> gateways {}",
        policy.label(),
        cfg.rule2,
        cfg.application,
        trace.marked.iter().filter(|&&b| b).count(),
        trace.after_rule1.iter().filter(|&&b| b).count(),
        trace.gateway_count(),
    );
    println!("gateways: {:?}", mask_to_vec(&trace.after_rule2));
    match verify_cds(&g, &trace.after_rule2) {
        Ok(()) => println!("verification: connected dominating set ✓"),
        Err(e) => println!("verification: FAILED — {e}"),
    }
    Ok(())
}

/// `pacds route`
pub fn route(args: &Args) -> CliResult {
    let mut known = TOPOLOGY_OPTS.to_vec();
    known.extend(["policy", "semantics", "energy-seed", "from", "to"]);
    args.check_known(&known)?;
    let g = topology(args)?;
    let policy = policy_of(args.get("policy").unwrap_or("id"))?;
    let cfg = cds_config_of(policy, args.get("semantics").unwrap_or("safe"))?;
    let energy = energy_levels(args, g.n())?;
    let from: u32 = args.require("from")?;
    let to: u32 = args.require("to")?;
    let gateways = pacds_core::compute_cds(&CdsInput::with_energy(&g, &energy), &cfg);
    let state = RoutingState::build(&g, &gateways);
    let path = pacds_routing::route(&g, &state, from, to)?;
    let shortest = algo::shortest_path(&g, from, to)?;
    println!("route ({} hops): {:?}", path.len() - 1, path);
    println!(
        "shortest path has {} hops; stretch +{}",
        shortest.len() - 1,
        path.len() - shortest.len()
    );
    Ok(())
}

/// `pacds simulate`
pub fn simulate(args: &Args) -> CliResult {
    args.check_known(&[
        "n", "policy", "model", "trials", "seed", "incremental", "semantics",
    ])?;
    let n: usize = args.get_or("n", 50)?;
    let policy = policy_of(args.get("policy").unwrap_or("el1"))?;
    let model = model_of(args.get("model").unwrap_or("2"))?;
    let trials: usize = args.get_or("trials", 10)?;
    let seed: u64 = args.get_or("seed", 1)?;
    let mut cfg = SimConfig::paper(n, policy, model);
    if let Some(sem) = args.get("semantics") {
        cfg.cds = cds_config_of(policy, sem)?;
    }
    cfg.incremental = args.flag("incremental");

    println!(
        "simulating n={n} policy={} model={} trials={trials}",
        policy.label(),
        model.label()
    );
    let outcomes = pacds_sim::montecarlo::run_trials(seed, trials, |_, rng| {
        let sim = Simulation::new(cfg, rng).without_verification();
        sim.run_lifetime(rng)
    });
    let lives: Vec<f64> = outcomes.iter().map(|o| f64::from(o.intervals)).collect();
    let gws: Vec<f64> = outcomes.iter().map(|o| o.mean_gateways).collect();
    let life = pacds_sim::Summary::from_slice(&lives);
    let gw = pacds_sim::Summary::from_slice(&gws);
    println!("lifetime: {life}");
    println!("mean gateways: {gw}");
    Ok(())
}

/// `pacds compare`
pub fn compare(args: &Args) -> CliResult {
    let mut known = TOPOLOGY_OPTS.to_vec();
    known.extend(["semantics", "energy-seed"]);
    args.check_known(&known)?;
    let g = topology(args)?;
    let energy = energy_levels(args, g.n())?;
    let semantics = args.get("semantics").unwrap_or("safe").to_string();
    println!(
        "{} hosts, {} links, avg degree {:.1}, connected: {}",
        g.n(),
        g.m(),
        g.avg_degree(),
        algo::is_connected(&g)
    );
    println!("{:>6} {:>8} {:>8} {:>9}  verification", "policy", "marked", "final", "reduction");
    for policy in Policy::ALL {
        let cfg = cds_config_of(policy, &semantics)?;
        let trace = compute_cds_trace(&CdsInput::with_energy(&g, &energy), &cfg);
        let marked = trace.marked.iter().filter(|&&b| b).count();
        let fin = trace.gateway_count();
        let reduction = if marked == 0 {
            0.0
        } else {
            100.0 * (marked - fin) as f64 / marked as f64
        };
        let verdict = match verify_cds(&g, &trace.after_rule2) {
            Ok(()) => "ok".to_string(),
            Err(e) => format!("FAILED: {e}"),
        };
        println!(
            "{:>6} {:>8} {:>8} {:>8.1}%  {verdict}",
            policy.label(),
            marked,
            fin,
            reduction
        );
    }
    Ok(())
}

/// `pacds trace`
pub fn trace(args: &Args) -> CliResult {
    args.check_known(&["n", "policy", "model", "seed", "max", "out", "semantics"])?;
    let n: usize = args.get_or("n", 30)?;
    let policy = policy_of(args.get("policy").unwrap_or("el1"))?;
    let model = model_of(args.get("model").unwrap_or("2"))?;
    let seed: u64 = args.get_or("seed", 1)?;
    let max: u32 = args.get_or("max", 200)?;
    let mut cfg = SimConfig::paper(n, policy, model);
    if let Some(sem) = args.get("semantics") {
        cfg.cds = cds_config_of(policy, sem)?;
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let recorder = pacds_sim::TraceRecorder::record(cfg, max, &mut rng);
    let jsonl = recorder.to_jsonl();
    match args.get("out") {
        Some(path) => {
            std::fs::write(path, jsonl)?;
            eprintln!("wrote {} records to {path}", recorder.records().len());
        }
        None => print!("{jsonl}"),
    }
    Ok(())
}

/// `pacds watch`
pub fn watch(args: &Args) -> CliResult {
    args.check_known(&["n", "policy", "intervals", "seed", "model"])?;
    let n: usize = args.get_or("n", 30)?;
    let policy = policy_of(args.get("policy").unwrap_or("el1"))?;
    let model = model_of(args.get("model").unwrap_or("2"))?;
    let intervals: u32 = args.get_or("intervals", 8)?;
    let seed: u64 = args.get_or("seed", 1)?;
    let cfg = SimConfig::paper(n, policy, model);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let recorder = pacds_sim::TraceRecorder::record(cfg, intervals, &mut rng);
    for r in recorder.records() {
        let positions: Vec<pacds_geom::Point2> = r
            .positions
            .iter()
            .map(|&(x, y)| pacds_geom::Point2::new(x, y))
            .collect();
        let mut gw = vec![false; n];
        for &g in &r.gateways {
            gw[g as usize] = true;
        }
        println!(
            "interval {} — {} gateways, {} links, connected: {}",
            r.interval,
            r.gateways.len(),
            r.links,
            r.connected
        );
        print!(
            "{}",
            pacds_sim::render_ascii(cfg.bounds, &positions, &gw, None, 50, 16)
        );
    }
    println!("legend: # gateway   o host");
    Ok(())
}

/// `pacds robustness`
pub fn robustness(args: &Args) -> CliResult {
    let mut known = TOPOLOGY_OPTS.to_vec();
    known.extend(["policy", "semantics", "energy-seed"]);
    args.check_known(&known)?;
    let g = topology(args)?;
    let energy = energy_levels(args, g.n())?;
    let semantics = args.get("semantics").unwrap_or("safe").to_string();
    println!("{:>6} {:>9} {:>6} {:>8} {:>6} {:>8}", "policy", "gateways", "cuts", "bridges", "sole", "spof");
    for policy in Policy::ALL {
        let cfg = cds_config_of(policy, &semantics)?;
        let gw = pacds_core::compute_cds(&CdsInput::with_energy(&g, &energy), &cfg);
        let r = pacds_routing::backbone_robustness(&g, &gw);
        println!(
            "{:>6} {:>9} {:>6} {:>8} {:>6} {:>7.1}%",
            policy.label(),
            r.gateways,
            r.backbone_cut_vertices.len(),
            r.backbone_bridges,
            r.sole_dominators.len(),
            100.0 * r.spof_fraction
        );
    }
    Ok(())
}

/// `pacds explain`
pub fn explain(args: &Args) -> CliResult {
    let mut known = TOPOLOGY_OPTS.to_vec();
    known.extend(["policy", "semantics", "energy-seed", "host"]);
    args.check_known(&known)?;
    let g = topology(args)?;
    let policy = policy_of(args.get("policy").unwrap_or("id"))?;
    let cfg = cds_config_of(policy, args.get("semantics").unwrap_or("safe"))?;
    let energy = energy_levels(args, g.n())?;
    let input = CdsInput::with_energy(&g, &energy);
    let hosts: Vec<u32> = match args.get("host") {
        Some(_) => vec![args.require("host")?],
        None => (0..g.n() as u32).collect(),
    };
    for v in hosts {
        if (v as usize) >= g.n() {
            return Err(format!("host {v} out of range (n = {})", g.n()).into());
        }
        println!("host {v:>3}: {}", pacds_core::explain(&input, &cfg, v));
    }
    Ok(())
}

/// `pacds run`
pub fn run_scenario(args: &Args) -> CliResult {
    args.check_known(&["scenario"])?;
    let path: String = args.require("scenario")?;
    let text = std::fs::read_to_string(&path)?;
    let scenario: pacds_sim::Scenario = serde_json::from_str(&text)
        .map_err(|e| format!("{path}: {e}"))?;
    let result = scenario.run();
    println!("{}", serde_json::to_string_pretty(&result)?);
    Ok(())
}

/// `pacds obs-report`
pub fn obs_report(args: &Args) -> CliResult {
    // `--diff old.jsonl new.jsonl` parses as option "diff"=old plus one
    // positional (the new path); everything else takes no positionals.
    args.check_known_with_positionals(
        &[
            "n", "policy", "model", "seed", "intervals", "semantics", "format", "workload",
            "shards", "threads", "diff", "live", "interval-ms", "windows", "trace-jsonl",
            "trace-sample",
        ],
        1,
    )?;
    if args.get("diff").is_some() {
        return obs_diff(args);
    }
    if let Some(addr) = args.get("live") {
        return obs_live(addr, args);
    }
    if !args.positionals.is_empty() {
        return Err(format!(
            "unexpected positional argument '{}' (only --diff takes positionals)",
            args.positionals[0]
        )
        .into());
    }
    let policy = policy_of(args.get("policy").unwrap_or("el1"))?;
    let seed: u64 = args.get_or("seed", 1)?;
    let trace_path = args.get("trace-jsonl");
    let trace_sample: u64 = args.get_or("trace-sample", u64::from(trace_path.is_some()))?;
    if trace_path.is_some() && !pacds_obs::trace_enabled() {
        eprintln!(
            "note: span tracing is compiled out in this build; rebuild with \
             `--features trace` for a populated --trace-jsonl"
        );
    }

    if !pacds_obs::enabled() {
        eprintln!(
            "note: metrics are compiled out in this build; rebuild with \
             `--features obs` for a populated report"
        );
    }
    pacds_obs::reset();
    pacds_obs::trace::reset_tracing();
    pacds_obs::set_sampling(trace_sample);
    let header = match args.get("workload").unwrap_or("sim") {
        "sim" => {
            let n: usize = args.get_or("n", 50)?;
            let model = model_of(args.get("model").unwrap_or("2"))?;
            let intervals: u32 = args.get_or("intervals", 50)?;
            let mut cfg = SimConfig::paper(n, policy, model);
            if let Some(sem) = args.get("semantics") {
                cfg.cds = cds_config_of(policy, sem)?;
            }
            cfg.max_intervals = intervals;
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let outcome = Simulation::new(cfg, &mut rng).run_lifetime(&mut rng);
            format!(
                "obs-report: n={n} policy={} model={} seed={seed} — \
                 {} intervals simulated, {:.1} mean gateways",
                policy.label(),
                model.label(),
                outcome.intervals,
                outcome.mean_gateways,
            )
        }
        "shard" => {
            let n: usize = args.get_or("n", 2000)?;
            let cfg = cds_config_of(policy, args.get("semantics").unwrap_or("safe"))?;
            let side = density_side(n);
            let bounds = Rect::square(side);
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let points = pacds_geom::placement::uniform_points(&mut rng, bounds, n);
            let energy = energy_levels(args, n)?;
            let spec = pacds_shard::ShardSpec {
                shards: args.get_or("shards", 0)?,
                halo: pacds_shard::REQUIRED_HALO,
                threads: args.get_or("threads", 0)?,
            };
            let mut engine = pacds_shard::ShardedCds::new(spec)?;
            engine.compute_unit_disk(bounds, 25.0, &points, Some(&energy), &cfg)?;
            let stats = engine.stats();
            format!(
                "obs-report: n={n} policy={} seed={seed} — sharded compute, \
                 {} tiles, {} gateways",
                policy.label(),
                stats.tiles,
                engine.gateway_count(),
            )
        }
        other => return Err(format!("unknown workload '{other}' (sim|shard)").into()),
    };
    let snap = pacds_obs::Snapshot::capture();
    if let Some(path) = trace_path {
        let jsonl = pacds_obs::traces_jsonl();
        let traces = jsonl.lines().count();
        std::fs::write(path, jsonl)?;
        println!("{traces} trace(s) written to {path} (sampling 1/{trace_sample})");
    }
    pacds_obs::set_sampling(0);

    match args.get("format").unwrap_or("table") {
        "table" => {
            println!("{header}");
            if snap.phases.is_empty() && snap.counters.is_empty() {
                println!("(no instrumentation data: metrics are compiled out)");
                return Ok(());
            }
            println!();
            println!(
                "{:>16} {:>10} {:>14} {:>12}",
                "phase", "count", "total ms", "mean µs"
            );
            for p in &snap.phases {
                println!(
                    "{:>16} {:>10} {:>14.3} {:>12.2}",
                    p.name,
                    p.count,
                    p.total_ns as f64 / 1e6,
                    p.mean_ns() / 1e3
                );
            }
            println!();
            println!("{:>28} {:>14}", "counter", "value");
            for c in &snap.counters {
                println!("{:>28} {:>14}", c.name, c.value);
            }
        }
        "jsonl" => println!("{}", snap.to_json_line()),
        "prometheus" => {
            let mut out = Vec::new();
            pacds_obs::write_prometheus(&snap, &mut out)?;
            print!("{}", String::from_utf8(out)?);
        }
        other => {
            return Err(
                format!("unknown format '{other}' (table|jsonl|prometheus)").into(),
            )
        }
    }
    Ok(())
}

/// Loads the last `obs_snapshot` line of a JSONL file (snapshots may
/// interleave with window/trace lines in one stream).
fn load_snapshot(path: &str) -> Result<pacds_obs::Snapshot, Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(path)?;
    text.lines()
        .rev()
        .find_map(|l| serde_json::from_str::<pacds_obs::Snapshot>(l.trim()).ok())
        .ok_or_else(|| format!("{path}: no obs_snapshot line found").into())
}

/// `pacds obs-report --diff old.jsonl new.jsonl`
fn obs_diff(args: &Args) -> CliResult {
    let old_path: String = args.require("diff")?;
    let new_path = args
        .positionals
        .first()
        .ok_or("--diff takes two snapshot files: --diff <old.jsonl> <new.jsonl>")?;
    let old = load_snapshot(&old_path)?;
    let new = load_snapshot(new_path)?;
    println!("obs-diff: {old_path} -> {new_path}");

    // Union of counter names in new-snapshot order, then old-only extras.
    let mut names: Vec<&str> = new.counters.iter().map(|c| c.name.as_str()).collect();
    for c in &old.counters {
        if !names.contains(&c.name.as_str()) {
            names.push(&c.name);
        }
    }
    let mut changed = 0usize;
    println!();
    println!("{:>28} {:>14} {:>14} {:>15}", "counter", "old", "new", "delta");
    for name in names {
        let (o, n) = (old.counter(name), new.counter(name));
        if o == n {
            continue;
        }
        changed += 1;
        println!("{:>28} {:>14} {:>14} {:>+15}", name, o, n, n as i128 - o as i128);
    }
    if changed == 0 {
        println!("{:>28}", "(no counter changed)");
    }

    let mut phase_names: Vec<&str> = new.phases.iter().map(|p| p.name.as_str()).collect();
    for p in &old.phases {
        if !phase_names.contains(&p.name.as_str()) {
            phase_names.push(&p.name);
        }
    }
    if !phase_names.is_empty() {
        println!();
        println!(
            "{:>16} {:>12} {:>14} {:>14}",
            "phase", "Δcount", "Δtotal ms", "Δmean µs"
        );
        for name in phase_names {
            let (oc, ot) = old.phase(name).map_or((0, 0), |p| (p.count, p.total_ns));
            let (nc, nt) = new.phase(name).map_or((0, 0), |p| (p.count, p.total_ns));
            if oc == nc && ot == nt {
                continue;
            }
            let dc = nc as i128 - oc as i128;
            let dt = nt as i128 - ot as i128;
            let mean_us = if dc > 0 { dt as f64 / dc as f64 / 1e3 } else { 0.0 };
            println!("{:>16} {:>+12} {:>14.3} {:>14.2}", name, dc, dt as f64 / 1e6, mean_us);
        }
    }
    Ok(())
}

/// `pacds obs-report --live host:port`
fn obs_live(addr: &str, args: &Args) -> CliResult {
    let interval: u32 = args.get_or("interval-ms", 1000)?;
    let windows: u64 = args.get_or("windows", 0)?;
    let mut client = pacds_serve::Client::connect(addr)?;
    let ack = client.subscribe(pacds_serve::SUB_STATS, interval, None)?;
    println!(
        "live: subscriber #{} at {addr}, one row per {}ms window \
         (ctrl-c to stop)",
        ack.subscriber_id, ack.interval_ms,
    );
    println!(
        "{:>6} {:>8} {:>8} {:>10} {:>10} {:>10} {:>8} {:>8} {:>8} {:>8}",
        "seq", "dt s", "reqs", "req/s", "p50 µs", "p99 µs", "flips", "tiles", "refresh", "dropped"
    );
    let mut seen = 0u64;
    while windows == 0 || seen < windows {
        match client.next_push()? {
            pacds_serve::Push::Stats(w) => {
                let dt_s = w.dt_us as f64 / 1e6;
                println!(
                    "{:>6} {:>8.2} {:>8} {:>10.1} {:>10.1} {:>10.1} {:>8} {:>8} {:>8} {:>8}",
                    w.seq,
                    dt_s,
                    w.requests,
                    w.requests as f64 / dt_s.max(1e-9),
                    w.p50_ns as f64 / 1e3,
                    w.p99_ns as f64 / 1e3,
                    w.gateway_flips,
                    w.tiles_resolved,
                    w.refreshes,
                    w.push_dropped,
                );
                seen += 1;
            }
            // Stats-only subscription: flips shouldn't arrive, but a
            // server-side change of heart is not an error.
            pacds_serve::Push::Flip(_) => {}
        }
    }
    Ok(())
}

/// Arena side for a target density of ~19.6 expected neighbours at
/// radius 25 (the paper's default density), scaled to `n`.
fn density_side(n: usize) -> f64 {
    (100.0 * (n as f64 / 100.0).sqrt()).max(1.0)
}

/// Whole-graph verification is bounded by the dense neighbour bitmap
/// (`n²` bits); past this it would dominate memory, so `--check` refuses.
const CHECK_LIMIT: usize = 150_000;

/// `pacds shard`
pub fn shard(args: &Args) -> CliResult {
    args.check_known(&[
        "n", "seed", "radius", "side", "shards", "halo", "threads", "policy", "semantics",
        "energy-seed", "check", "compare", "expect-workers", "json", "fail-on-errors",
    ])?;
    let n: usize = args.get_or("n", 50_000)?;
    let seed: u64 = args.get_or("seed", 1)?;
    let radius: f64 = args.get_or("radius", 25.0)?;
    let side: f64 = args.get_or("side", density_side(n))?;
    let policy = policy_of(args.get("policy").unwrap_or("nd"))?;
    let cfg = cds_config_of(policy, args.get("semantics").unwrap_or("safe"))?;
    let spec = pacds_shard::ShardSpec {
        shards: args.get_or("shards", 0)?,
        halo: args.get_or("halo", pacds_shard::REQUIRED_HALO)?,
        threads: args.get_or("threads", 0)?,
    };

    let check_requested = args.flag("check") || args.flag("compare");
    if check_requested && n > CHECK_LIMIT {
        let msg = format!(
            "--check needs the whole-graph bitmap (n² bits); n={n} exceeds the \
             {CHECK_LIMIT} limit"
        );
        if args.flag("fail-on-errors") {
            return Err(msg.into());
        }
        eprintln!("warning: {msg}; skipped");
    }

    let bounds = Rect::square(side);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let points = pacds_geom::placement::uniform_points(&mut rng, bounds, n);
    let energy = energy_levels(args, n)?;

    let mut engine = pacds_shard::ShardedCds::new(spec)?;
    let t0 = std::time::Instant::now();
    engine.compute_unit_disk(bounds, radius, &points, Some(&energy), &cfg)?;
    let sharded_s = t0.elapsed().as_secs_f64();
    let stats = engine.stats();
    println!(
        "shard: n={n} radius={radius} side={side:.1} policy={} — \
         {} tiles, {} halo nodes, {} cross-tile edges",
        policy.label(),
        stats.tiles,
        stats.halo_nodes,
        stats.cross_tile_edges,
    );
    println!(
        "result: {} marked, {} after Rule 1, {} gateways, {} round(s)",
        engine.marked().iter().filter(|&&b| b).count(),
        engine.after_rule1().iter().filter(|&&b| b).count(),
        engine.gateway_count(),
        engine.rounds(),
    );
    println!(
        "time: {:.3}s total (partition {:.3}s, halo build {:.3}s, solve {:.3}s, merge {:.3}s)",
        sharded_s,
        stats.partition_ns as f64 / 1e9,
        stats.halo_build_ns as f64 / 1e9,
        stats.solve_ns as f64 / 1e9,
        stats.merge_ns as f64 / 1e9,
    );

    // Work distribution: the machine-independent evidence that a parallel
    // run actually spread tiles across executors.
    let work = engine.thread_work();
    let active_workers = work.iter().filter(|w| w.tiles_solved > 0).count();
    println!(
        "workers: {} executor(s) active, tiles [{}], {} stolen",
        active_workers,
        work.iter()
            .map(|w| w.tiles_solved.to_string())
            .collect::<Vec<_>>()
            .join(", "),
        stats.stolen_tiles,
    );
    let expect_workers: usize = args.get_or("expect-workers", 0)?;
    if active_workers < expect_workers {
        return Err(format!(
            "--expect-workers {expect_workers}: only {active_workers} executor(s) solved a tile \
             (tile distribution [{}])",
            work.iter()
                .map(|w| w.tiles_solved.to_string())
                .collect::<Vec<_>>()
                .join(", "),
        )
        .into());
    }

    // --check / --compare run the whole-graph pipeline on the same
    // instance; identity failure is always fatal (the over-sized skip was
    // handled before computing).
    let mut whole_s = f64::NAN;
    if check_requested && n <= CHECK_LIMIT {
        let g = gen::unit_disk(bounds, radius, &points);
        let mut ws = pacds_core::CdsWorkspace::new();
        let t1 = std::time::Instant::now();
        ws.compute(&g, Some(&energy), &cfg);
        whole_s = t1.elapsed().as_secs_f64();
        if ws.gateways() != engine.gateways()
            || ws.marked() != engine.marked()
            || ws.after_rule1() != engine.after_rule1()
        {
            return Err("sharded result diverged from the whole-graph pipeline".into());
        }
        println!("check: bit-identical to the whole-graph pipeline");
        if args.flag("compare") {
            println!(
                "compare: whole-graph {:.3}s, sharded {:.3}s — {:.2}x",
                whole_s,
                sharded_s,
                whole_s / sharded_s,
            );
        }
    }

    if let Some(path) = args.get("json") {
        let json = format!(
            "{{\"n\":{n},\"radius\":{radius},\"side\":{side},\"policy\":\"{}\",\
             \"shards\":{},\"halo\":{},\"threads\":{},\"tiles\":{},\
             \"owned_nodes\":{},\"halo_nodes\":{},\"cross_tile_edges\":{},\
             \"marked\":{},\"after_rule1\":{},\"gateways\":{},\"rounds\":{},\
             \"partition_ns\":{},\"halo_build_ns\":{},\"solve_ns\":{},\
             \"merge_ns\":{},\"stolen_tiles\":{},\"tiles_per_thread\":[{}],\
             \"busy_ns_per_thread\":[{}],\"total_s\":{sharded_s},\"whole_graph_s\":{}}}",
            policy.label(),
            spec.shards,
            spec.halo,
            spec.threads,
            stats.tiles,
            stats.owned_nodes,
            stats.halo_nodes,
            stats.cross_tile_edges,
            engine.marked().iter().filter(|&&b| b).count(),
            engine.after_rule1().iter().filter(|&&b| b).count(),
            engine.gateway_count(),
            engine.rounds(),
            stats.partition_ns,
            stats.halo_build_ns,
            stats.solve_ns,
            stats.merge_ns,
            stats.stolen_tiles,
            work.iter()
                .map(|w| w.tiles_solved.to_string())
                .collect::<Vec<_>>()
                .join(","),
            work.iter()
                .map(|w| w.busy_ns.to_string())
                .collect::<Vec<_>>()
                .join(","),
            if whole_s.is_nan() { "null".to_string() } else { whole_s.to_string() },
        );
        std::fs::write(path, json + "\n")?;
        println!("stats written to {path}");
    }
    Ok(())
}

/// `pacds churn`
pub fn churn(args: &Args) -> CliResult {
    args.check_known(&[
        "n", "seed", "radius", "side", "shards", "threads", "policy", "semantics",
        "energy-seed", "steps", "events", "check", "max-resolved-frac", "json",
        "trace-jsonl", "trace-sample",
    ])?;
    let n: usize = args.get_or("n", 5000)?;
    let seed: u64 = args.get_or("seed", 1)?;
    let radius: f64 = args.get_or("radius", 25.0)?;
    let side: f64 = args.get_or("side", density_side(n))?;
    let policy = policy_of(args.get("policy").unwrap_or("nd"))?;
    let cfg = cds_config_of(policy, args.get("semantics").unwrap_or("safe"))?;
    let steps: usize = args.get_or("steps", 20)?;
    let per_step: usize = args.get_or("events", (n / 100).max(4))?;
    let max_frac: f64 = args.get_or("max-resolved-frac", 1.0)?;
    let spec = pacds_shard::ShardSpec {
        shards: args.get_or("shards", 0)?,
        halo: pacds_shard::REQUIRED_HALO,
        threads: args.get_or("threads", 0)?,
    };

    let trace_path = args.get("trace-jsonl");
    let trace_sample: u64 = args.get_or("trace-sample", u64::from(trace_path.is_some()))?;
    if trace_path.is_some() && !pacds_obs::trace_enabled() {
        eprintln!(
            "note: span tracing is compiled out in this build; rebuild with \
             `--features trace` for a populated --trace-jsonl"
        );
    }

    let bounds = Rect::square(side);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let points = pacds_geom::placement::uniform_points(&mut rng, bounds, n);
    let energy = energy_levels(args, n)?;
    pacds_obs::trace::reset_tracing();
    pacds_obs::set_sampling(trace_sample);
    let mut engine =
        pacds_shard::ChurnEngine::open(spec, bounds, radius, &points, &energy, &cfg)?;
    let tiles = engine.tiles();
    // Lifetime totals include the initial full solve (every tile solved,
    // every initial gateway a flip); snapshot it so the reported numbers
    // cover only the churn stream.
    let initial = engine.totals();
    println!(
        "churn: n={n} radius={radius} side={side:.1} policy={} — {} tiles, \
         {} initial gateways",
        policy.label(),
        tiles,
        engine.gateway_count(),
    );

    use pacds_shard::ChurnEvent;
    use rand::Rng;
    let hop = radius.max(1e-9);
    let mut resolved_frac_sum = 0.0;
    let t0 = std::time::Instant::now();
    for step in 0..steps {
        // An event mix that exercises every mutation type: mostly small
        // mobility hops, some battery drains, rare deaths and arrivals.
        let mut events = Vec::with_capacity(per_step);
        // Deaths queued earlier in this batch: later live-only events must
        // not target them or the whole batch would be typed-rejected.
        let mut killed = vec![false; engine.n()];
        while events.len() < per_step {
            let node = rng.random_range(0..engine.n() as u32);
            let alive = engine.alive()[node as usize] && !killed[node as usize];
            match rng.random_range(0..100u32) {
                0..=69 if alive => {
                    let p = engine.positions()[node as usize];
                    let to = pacds_geom::Point2::new(
                        (p.x + rng.random_range(-hop..hop)).clamp(bounds.x0, bounds.x1),
                        (p.y + rng.random_range(-hop..hop)).clamp(bounds.y0, bounds.y1),
                    );
                    events.push(ChurnEvent::MoveNode { node, to });
                }
                70..=89 if alive => {
                    let remaining = engine.energy()[node as usize].saturating_sub(1);
                    events.push(ChurnEvent::DrainBattery { node, remaining });
                }
                90..=95 if alive => {
                    killed[node as usize] = true;
                    events.push(ChurnEvent::KillNode { node });
                }
                96..=99 => events.push(ChurnEvent::AddNode {
                    pos: pacds_geom::Point2::new(
                        rng.random_range(bounds.x0..bounds.x1),
                        rng.random_range(bounds.y0..bounds.y1),
                    ),
                    energy: rng.random_range(1..=10u64),
                }),
                _ => {} // dead host drawn for a live-only event: redraw
            }
        }
        // One trace id per step: the refresh + its dirty-tile re-solves
        // land as one causally-linked trace line.
        engine.set_trace(pacds_obs::next_trace_id());
        let stats = engine.step(&events)?;
        resolved_frac_sum += stats.resolved_tiles as f64 / tiles.max(1) as f64;
        println!(
            "step {:>3}: {} events, {}/{} tiles re-solved, {} gateway flips, \
             {} gateways",
            step + 1,
            stats.events,
            stats.resolved_tiles,
            stats.total_tiles,
            stats.gateway_flips,
            engine.gateway_count(),
        );
        if args.flag("check") {
            let off = engine.off_mask();
            let mut scratch = pacds_shard::ShardedCds::new(engine.spec())?;
            scratch.compute_unit_disk_masked(
                bounds,
                radius,
                engine.positions(),
                Some(&off),
                Some(engine.energy()),
                &cfg,
            )?;
            if engine.gateways() != scratch.gateways()
                || engine.marked() != scratch.marked()
                || engine.after_rule1() != scratch.after_rule1()
            {
                return Err(format!(
                    "step {}: incremental state diverged from the from-scratch recompute",
                    step + 1
                )
                .into());
            }
        }
    }
    let wall_s = t0.elapsed().as_secs_f64();
    let totals = engine.totals();
    let events = totals.events - initial.events;
    let refreshes = totals.refreshes - initial.refreshes;
    let resolved = totals.resolved_tiles - initial.resolved_tiles;
    let flips = totals.gateway_flips - initial.gateway_flips;
    let mean_frac = resolved_frac_sum / steps.max(1) as f64;
    let events_per_s = events as f64 / wall_s.max(1e-9);
    println!(
        "totals: {events} events in {wall_s:.3}s ({events_per_s:.0} events/s), \
         {refreshes} refreshes, {:.1} tiles re-solved/refresh (mean frac {:.3}), \
         {:.2} gateway flips/event",
        resolved as f64 / refreshes.max(1) as f64,
        mean_frac,
        flips as f64 / events.max(1) as f64,
    );
    if args.flag("check") {
        println!("check: bit-identical to the from-scratch recompute after every step");
    }
    if let Some(path) = trace_path {
        let jsonl = pacds_obs::traces_jsonl();
        let traces = jsonl.lines().count();
        std::fs::write(path, jsonl)?;
        println!("{traces} trace(s) written to {path} (sampling 1/{trace_sample})");
    }
    pacds_obs::set_sampling(0);

    if let Some(path) = args.get("json") {
        let json = format!(
            "{{\"n\":{n},\"radius\":{radius},\"side\":{side},\"policy\":\"{}\",\
             \"tiles\":{tiles},\"steps\":{steps},\"events\":{events},\
             \"refreshes\":{refreshes},\"resolved_tiles\":{resolved},\
             \"gateway_flips\":{flips},\
             \"mean_resolved_frac\":{mean_frac},\"events_per_s\":{events_per_s},\
             \"wall_s\":{wall_s},\"checked\":{}}}",
            policy.label(),
            args.flag("check"),
        );
        std::fs::write(path, json + "\n")?;
        println!("stats written to {path}");
    }
    if mean_frac > max_frac {
        return Err(format!(
            "--max-resolved-frac {max_frac}: mean re-solved tile fraction was \
             {mean_frac:.3} — churn is not localized"
        )
        .into());
    }
    Ok(())
}

/// `pacds dataplane`
pub fn dataplane(args: &Args) -> CliResult {
    args.check_known(&[
        "n", "seed", "radius", "side", "shards", "threads", "policy", "semantics",
        "energy-seed", "flows", "packets", "waves", "kill-every", "broadcast", "json",
        "fail-on-errors", "trace-jsonl", "trace-sample",
    ])?;
    let n: usize = args.get_or("n", 5000)?;
    let seed: u64 = args.get_or("seed", 1)?;
    let radius: f64 = args.get_or("radius", 25.0)?;
    let side: f64 = args.get_or("side", density_side(n))?;
    let policy = policy_of(args.get("policy").unwrap_or("nd"))?;
    let cfg = cds_config_of(policy, args.get("semantics").unwrap_or("safe"))?;
    let flows: usize = args.get_or("flows", 64)?;
    let packets: usize = args.get_or("packets", 16)?;
    let waves: usize = args.get_or("waves", 10)?;
    let kill_every: usize = args.get_or("kill-every", 0)?;
    let broadcast = args.get("broadcast").unwrap_or("both");
    if !matches!(broadcast, "none" | "blind" | "gateway" | "both") {
        return Err(format!(
            "unknown --broadcast mode '{broadcast}' (none|blind|gateway|both)"
        )
        .into());
    }
    let spec = pacds_shard::ShardSpec {
        shards: args.get_or("shards", 0)?,
        halo: pacds_shard::REQUIRED_HALO,
        threads: args.get_or("threads", 0)?,
    };

    let trace_path = args.get("trace-jsonl");
    let trace_sample: u64 = args.get_or("trace-sample", u64::from(trace_path.is_some()))?;
    if trace_path.is_some() && !pacds_obs::trace_enabled() {
        eprintln!(
            "note: span tracing is compiled out in this build; rebuild with \
             `--features trace` for a populated --trace-jsonl"
        );
    }

    let bounds = Rect::square(side);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let points = pacds_geom::placement::uniform_points(&mut rng, bounds, n);
    let energy = energy_levels(args, n)?;
    pacds_obs::trace::reset_tracing();
    pacds_obs::set_sampling(trace_sample);
    let mut net = pacds_dataplane::ChurnNet::open(spec, bounds, radius, &points, &energy, &cfg)?;
    let mut dp = pacds_dataplane::Dataplane::new();
    dp.install_tables(net.gateway(), net.alive());
    println!(
        "dataplane: n={n} radius={radius} side={side:.1} policy={} — {} gateways, \
         {flows} flows x {packets} packets x {waves} waves",
        policy.label(),
        net.gateway_count(),
    );

    // Flow endpoints: alive, dominated hosts, protected from the kill
    // schedule so every flow stays routable for the whole run.
    use rand::Rng;
    let mut protected = vec![false; n];
    let mut flow_ids = Vec::with_capacity(flows);
    while flow_ids.len() < flows {
        let s = rng.random_range(0..n as u32);
        let t = rng.random_range(0..n as u32);
        let mut probe = Vec::new();
        if dp.routes_mut().assemble(net.graph(), s, t, &mut probe).is_err() {
            continue; // disconnected or undominated pick: redraw
        }
        protected[s as usize] = true;
        protected[t as usize] = true;
        flow_ids.push(dp.add_flow(s, t));
    }

    let mut kills = 0u64;
    let mut refreshes = 0u64;
    let mut reroute_s_sum = 0.0f64;
    let mut blind_tx = 0u64;
    let mut gateway_tx = 0u64;
    let t0 = std::time::Instant::now();
    for wave in 0..waves {
        dp.set_trace(pacds_obs::next_trace_id());
        if kill_every > 0 && wave > 0 && wave % kill_every == 0 {
            // Kill one unprotected gateway: routes through it go stale.
            for _ in 0..10 * n {
                let v = rng.random_range(0..n as u32);
                if net.alive()[v as usize] && net.gateway()[v as usize] && !protected[v as usize]
                {
                    net.kill(v)?;
                    kills += 1;
                    break;
                }
            }
        }
        for &f in &flow_ids {
            dp.inject(f, packets);
        }
        let src = flow_ids
            .first()
            .map(|_| dp.packets().src(0))
            .unwrap_or(0);
        if matches!(broadcast, "blind" | "both") {
            dp.inject_broadcast(src, true);
        }
        let before = dp.stats();
        dp.pump(net.graph(), net.alive());
        if matches!(broadcast, "blind" | "both") {
            blind_tx += dp.last_flood().map_or(0, |c| c.transmissions as u64)
        }
        if matches!(broadcast, "gateway" | "both") {
            dp.inject_broadcast(src, false);
            dp.pump(net.graph(), net.alive());
            gateway_tx += dp.last_flood().map_or(0, |c| c.transmissions as u64);
        }
        // Stale routes NACKed above: refresh the control plane, reinstall
        // tables, retransmit, and time the recovery end to end.
        if dp.nacked_pending() > 0 {
            let tr = std::time::Instant::now();
            net.refresh();
            dp.install_tables(net.gateway(), net.alive());
            let requeued = dp.requeue_nacked();
            dp.pump(net.graph(), net.alive());
            reroute_s_sum += tr.elapsed().as_secs_f64();
            refreshes += 1;
            println!(
                "wave {:>3}: {} packets NACKed on stale routes, redelivered after \
                 refresh ({} gateways)",
                wave + 1,
                requeued,
                net.gateway_count(),
            );
        }
        let after = dp.stats();
        if dp.nacked_pending() == 0 {
            dp.reset_packets();
        }
        pacds_obs::obs_debug!(
            "cli.dataplane",
            "wave {}: {} delivered, {} hops",
            wave + 1,
            after.delivered - before.delivered,
            after.forwarded_hops - before.forwarded_hops
        );
    }
    let wall_s = t0.elapsed().as_secs_f64();
    let stats = dp.stats();
    let hops_per_s = stats.forwarded_hops as f64 / wall_s.max(1e-9);
    let flood_reduction = if blind_tx > 0 && gateway_tx > 0 {
        1.0 - gateway_tx as f64 / blind_tx as f64
    } else {
        f64::NAN
    };
    println!(
        "totals: {} injected, {} delivered, {} dropped, {} NACKed ({} retransmits), \
         {} hops in {wall_s:.3}s ({hops_per_s:.0} hops/s), {} misroutes",
        stats.injected,
        stats.delivered,
        stats.dropped,
        stats.nacked,
        stats.retransmits,
        stats.forwarded_hops,
        stats.misroutes,
    );
    if kills > 0 {
        println!(
            "churn: {kills} gateway kills, {refreshes} refreshes, mean reroute \
             {:.1} ms",
            1e3 * reroute_s_sum / refreshes.max(1) as f64,
        );
    }
    if !flood_reduction.is_nan() {
        println!(
            "broadcast: {blind_tx} blind vs {gateway_tx} gateway transmissions \
             ({:.1}% reduction)",
            100.0 * flood_reduction,
        );
    }
    if let Some(path) = trace_path {
        let jsonl = pacds_obs::traces_jsonl();
        let traces = jsonl.lines().count();
        std::fs::write(path, jsonl)?;
        println!("{traces} trace(s) written to {path} (sampling 1/{trace_sample})");
    }
    pacds_obs::set_sampling(0);

    if let Some(path) = args.get("json") {
        let json = format!(
            "{{\"n\":{n},\"radius\":{radius},\"side\":{side},\"policy\":\"{}\",\
             \"flows\":{flows},\"packets_per_flow\":{packets},\"waves\":{waves},\
             \"injected\":{},\"delivered\":{},\"dropped\":{},\"nacked\":{},\
             \"retransmits\":{},\"forwarded_hops\":{},\"misroutes\":{},\
             \"hops_per_s\":{hops_per_s},\"wall_s\":{wall_s},\
             \"kills\":{kills},\"refreshes\":{refreshes},\
             \"blind_transmissions\":{blind_tx},\
             \"gateway_transmissions\":{gateway_tx},\
             \"flood_reduction\":{}}}",
            policy.label(),
            stats.injected,
            stats.delivered,
            stats.dropped,
            stats.nacked,
            stats.retransmits,
            stats.forwarded_hops,
            stats.misroutes,
            if flood_reduction.is_nan() { "null".to_string() } else { flood_reduction.to_string() },
        );
        std::fs::write(path, json + "\n")?;
        println!("stats written to {path}");
    }
    if args.flag("fail-on-errors") {
        if stats.misroutes > 0 {
            return Err(format!("{} packets misrouted into dead nodes", stats.misroutes).into());
        }
        if stats.dropped > 0 {
            return Err(format!("{} packets terminally dropped", stats.dropped).into());
        }
        if dp.nacked_pending() > 0 {
            return Err(format!(
                "{} packets still parked for retransmission at exit",
                dp.nacked_pending()
            )
            .into());
        }
        if stats.delivered + stats.dropped != stats.injected {
            return Err("delivered + dropped != injected: packets unaccounted for".into());
        }
    }
    Ok(())
}

/// Server shape shared by `serve` and `loadgen --self-host`.
fn server_config_of(args: &Args) -> Result<pacds_serve::ServerConfig, Box<dyn std::error::Error>> {
    let mut cfg = pacds_serve::ServerConfig::default();
    if args.get("workers").is_some() {
        cfg.workers = args.require("workers")?;
    }
    cfg.queue = args.get_or("queue", 0)?;
    let cache_mb: usize = args.get_or("cache-mb", 64)?;
    cfg.cache_bytes = cache_mb << 20;
    if let Some(mode) = args.get("shard") {
        cfg.shard.mode = pacds_serve::ShardMode::parse(mode)
            .ok_or_else(|| format!("unknown shard mode '{mode}' (auto|always|never)"))?;
    }
    cfg.shard.threshold = args.get_or("shard-threshold", cfg.shard.threshold)?;
    cfg.shard.shards = args.get_or("shards", 0)?;
    Ok(cfg)
}

/// `pacds serve`
pub fn serve(args: &Args) -> CliResult {
    args.check_known(&[
        "addr", "workers", "queue", "cache-mb", "duration", "shard", "shard-threshold", "shards",
        "metrics-addr", "trace-sample",
    ])?;
    let addr = args.get("addr").unwrap_or("127.0.0.1:7311");
    let mut cfg = server_config_of(args)?;
    cfg.metrics_addr = args.get("metrics-addr").map(str::to_string);
    let trace_sample: u64 = args.get_or("trace-sample", 0)?;
    if trace_sample > 0 && !pacds_obs::trace_enabled() {
        eprintln!(
            "note: span tracing is compiled out in this build; rebuild with \
             `--features trace` for --trace-sample to record spans"
        );
    }
    pacds_obs::set_sampling(trace_sample);
    let duration: u64 = args.get_or("duration", 0)?;
    let workers = cfg.workers.max(1);
    let mut handle = pacds_serve::serve(addr, cfg)?;
    println!(
        "pacds-serve listening on {} ({} workers); protocol v{}",
        handle.addr(),
        workers,
        pacds_serve::PROTOCOL_VERSION,
    );
    if let Some(m) = handle.metrics_addr() {
        println!("metrics scrape on http://{m}/metrics");
    }
    if duration > 0 {
        std::thread::sleep(std::time::Duration::from_secs(duration));
        handle.shutdown();
        let entries = handle.state().stat_entries();
        for (name, value) in entries {
            println!("{name:<20} {value}");
        }
    } else {
        // Run until the process is killed; workers own the listener.
        loop {
            std::thread::park();
        }
    }
    Ok(())
}

/// `pacds loadgen`
pub fn loadgen(args: &Args) -> CliResult {
    args.check_known(&[
        "addr", "duration", "concurrency", "mode", "rate", "n", "radius", "side", "seed",
        "gen-seeds", "policy", "semantics", "no-cache", "deadline-ms", "json",
        "fail-on-errors", "self-host", "workers", "queue", "cache-mb", "shard",
        "shard-threshold", "shards", "mutate-every", "query-every", "obs-jsonl",
    ])?;
    // Optionally host the target server in-process (CI smoke runs).
    let hosted = if args.flag("self-host") {
        Some(pacds_serve::serve("127.0.0.1:0", server_config_of(args)?)?)
    } else {
        None
    };
    let addr = match &hosted {
        Some(h) => h.addr().to_string(),
        None => args.get("addr").unwrap_or("127.0.0.1:7311").to_string(),
    };
    let policy = policy_of(args.get("policy").unwrap_or("nd"))?;
    let mode = match args.get("mode").unwrap_or("closed") {
        "closed" => pacds_serve::Mode::Closed,
        "open" => pacds_serve::Mode::Open {
            rate: args.require("rate")?,
        },
        other => return Err(format!("unknown mode '{other}' (closed|open)").into()),
    };
    let cfg = pacds_serve::LoadgenConfig {
        addr,
        concurrency: args.get_or("concurrency", 8)?,
        duration: std::time::Duration::from_secs_f64(args.get_or("duration", 10.0)?),
        mode,
        cds: cds_config_of(policy, args.get("semantics").unwrap_or("safe"))?,
        n: args.get_or("n", 200)?,
        radius: args.get_or("radius", 15.0)?,
        side: args.get_or("side", 100.0)?,
        seed: args.get_or("seed", 1)?,
        gen_seeds: args.get_or("gen-seeds", 0)?,
        no_cache: args.flag("no-cache"),
        deadline_ms: args.get_or("deadline-ms", 0)?,
        mutate_every: args.get_or("mutate-every", 0)?,
        query_every: args.get_or("query-every", 0)?,
    };
    let mixed = cfg.mutate_every > 0 || cfg.query_every > 0;
    let report = pacds_serve::loadgen::run(&cfg)?;
    println!(
        "loadgen: {} mode, {} conns, {:.1}s — {} requests, {:.0} req/s \
         ({} cache hits, {} rejected, {} deadline, {} protocol err, {} io err)",
        report.mode,
        report.concurrency,
        report.duration_s,
        report.requests,
        report.throughput_rps,
        report.cache_hits,
        report.rejected,
        report.deadline_exceeded,
        report.protocol_errors,
        report.io_errors,
    );
    println!(
        "latency µs: p50={:.1} p99={:.1} p999={:.1} mean={:.1} max={:.1}",
        report.p50_us, report.p99_us, report.p999_us, report.mean_us, report.max_us,
    );
    if mixed {
        for (label, k) in [
            ("compute_cds", &report.compute),
            ("mutate", &report.mutate),
            ("query_tile", &report.query),
        ] {
            println!(
                "  {label:<12} {:>8} req  p50={:.1} p99={:.1} mean={:.1} max={:.1} µs",
                k.requests, k.p50_us, k.p99_us, k.mean_us, k.max_us,
            );
        }
    }
    if let Some(path) = args.get("json") {
        std::fs::write(path, report.to_json() + "\n")?;
        println!("report written to {path}");
    }
    if let Some(path) = args.get("obs-jsonl") {
        let mut f = std::fs::File::create(path)?;
        pacds_obs::write_jsonl(&pacds_obs::Snapshot::capture(), &mut f)?;
        println!("obs snapshot written to {path}");
    }
    drop(hosted);
    if args.flag("fail-on-errors") && report.protocol_errors + report.io_errors > 0 {
        return Err(format!(
            "loadgen saw {} protocol and {} io errors",
            report.protocol_errors, report.io_errors
        )
        .into());
    }
    Ok(())
}

/// `pacds cluster`
pub fn cluster(args: &Args) -> CliResult {
    args.check_known(&[
        "addr", "backends", "self-host", "workers", "queue", "vnodes", "probe-interval-ms",
        "fail-threshold", "rise-threshold", "backend-workers", "cache-mb", "duration",
        "loadgen", "concurrency", "n", "radius", "side", "seed", "gen-seeds", "policy",
        "semantics", "deadline-ms", "kill-after", "drain-after", "expect-failover", "json",
        "fail-on-errors",
    ])?;

    // Backends: external addresses, in-process ones, or a mix. Ids are
    // positional (`b0`, `b1`, …) — stable ids keep ring arcs (and cache
    // locality) stable across restarts.
    let mut hosted: Vec<pacds_serve::ServerHandle> = Vec::new();
    let mut specs: Vec<pacds_cluster::BackendSpec> = Vec::new();
    if let Some(list) = args.get("backends") {
        for addr in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            specs.push(pacds_cluster::BackendSpec::new(format!("b{}", specs.len()), addr));
        }
    }
    let self_host: usize = args.get_or("self-host", 0)?;
    // Backends fronting a coordinator need workers to spare: pacds-serve
    // parks one worker per open connection, and the coordinator holds
    // persistent ones (pooled relays + the prober) — see the sizing note
    // in ARCHITECTURE.md.
    let backend_workers: usize = args.get_or("backend-workers", 8)?;
    let cache_mb: usize = args.get_or("cache-mb", 64)?;
    for _ in 0..self_host {
        let h = pacds_serve::serve(
            "127.0.0.1:0",
            pacds_serve::ServerConfig {
                workers: backend_workers,
                queue: 0,
                cache_bytes: cache_mb << 20,
                shard: Default::default(),
                metrics_addr: None,
            },
        )?;
        specs.push(pacds_cluster::BackendSpec::new(
            format!("b{}", specs.len()),
            h.addr().to_string(),
        ));
        hosted.push(h);
    }
    if specs.is_empty() {
        return Err("no backends: pass --backends <host:port,...> and/or --self-host <n>".into());
    }

    let ccfg = pacds_cluster::ClusterConfig {
        workers: args.get_or("workers", 0)?,
        queue: args.get_or("queue", 0)?,
        vnodes: args.get_or("vnodes", 0)?,
        probe_interval: std::time::Duration::from_millis(args.get_or("probe-interval-ms", 200)?),
        fail_threshold: args.get_or("fail-threshold", 2)?,
        rise_threshold: args.get_or("rise-threshold", 2)?,
        ..Default::default()
    };
    let addr = args.get("addr").unwrap_or("127.0.0.1:7411");
    let mut coord = pacds_cluster::cluster(addr, &specs, ccfg)?;
    println!(
        "pacds-cluster coordinating {} backend(s) on {}; protocol v{}",
        specs.len(),
        coord.addr(),
        pacds_serve::PROTOCOL_VERSION,
    );
    for s in &specs {
        println!("  {:<6} {}", s.id, s.addr);
    }

    // Failure drills for smoke runs: kill the last self-hosted backend
    // and/or drain `b0` partway through a --loadgen window.
    let kill_after: f64 = args.get_or("kill-after", 0.0)?;
    let mut killer = None;
    if kill_after > 0.0 {
        let mut victim = hosted
            .pop()
            .ok_or("--kill-after needs at least one --self-host backend")?;
        println!(
            "  (killing {} after {kill_after}s)",
            specs.last().map(|s| s.id.as_str()).unwrap_or("?")
        );
        killer = Some(std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_secs_f64(kill_after));
            victim.shutdown();
        }));
    }
    let drain_after: f64 = args.get_or("drain-after", 0.0)?;
    if drain_after > 0.0 {
        let state = std::sync::Arc::clone(coord.state());
        println!("  (draining b0 after {drain_after}s)");
        std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_secs_f64(drain_after));
            state.drain("b0");
        });
    }

    let report = if args.flag("loadgen") {
        let policy = policy_of(args.get("policy").unwrap_or("nd"))?;
        let lcfg = pacds_serve::LoadgenConfig {
            addr: coord.addr().to_string(),
            concurrency: args.get_or("concurrency", 8)?,
            duration: std::time::Duration::from_secs_f64(args.get_or("duration", 10.0)?),
            mode: pacds_serve::Mode::Closed,
            cds: cds_config_of(policy, args.get("semantics").unwrap_or("safe"))?,
            n: args.get_or("n", 200)?,
            radius: args.get_or("radius", 15.0)?,
            side: args.get_or("side", 100.0)?,
            seed: args.get_or("seed", 1)?,
            // Distinct GenCompute digests spread the keyspace across the
            // ring; a single replayed request would pin to one backend.
            gen_seeds: args.get_or("gen-seeds", 64)?,
            no_cache: false,
            deadline_ms: args.get_or("deadline-ms", 0)?,
            mutate_every: 0,
            query_every: 0,
        };
        let report = pacds_serve::loadgen::run(&lcfg)?;
        println!(
            "loadgen via coordinator: {} conns, {:.1}s — {} requests, {:.0} req/s \
             ({} cache hits, {} rejected, {} protocol err, {} io err)",
            report.concurrency,
            report.duration_s,
            report.requests,
            report.throughput_rps,
            report.cache_hits,
            report.rejected,
            report.protocol_errors,
            report.io_errors,
        );
        println!(
            "latency µs: p50={:.1} p99={:.1} p999={:.1} mean={:.1} max={:.1}",
            report.p50_us, report.p99_us, report.p999_us, report.mean_us, report.max_us,
        );
        Some(report)
    } else {
        let duration: f64 = args.get_or("duration", 0.0)?;
        if duration > 0.0 {
            std::thread::sleep(std::time::Duration::from_secs_f64(duration));
        } else {
            // Run until the process is killed, like `pacds serve`.
            loop {
                std::thread::park();
            }
        }
        None
    };

    if let Some(k) = killer {
        let _ = k.join();
    }
    let entries = coord.state().stats.entries(&coord.state().backends);
    coord.shutdown();
    drop(hosted);
    for (name, value) in &entries {
        println!("{name:<32} {value}");
    }

    if let Some(path) = args.get("json") {
        // Counter names are plain identifiers, so the object composes
        // textually — the same way LoadReport::to_json builds its body.
        let fields: Vec<String> = entries.iter().map(|(n, v)| format!("\"{n}\":{v}")).collect();
        let mut out = String::from("{");
        if let Some(r) = &report {
            out.push_str("\"loadgen\":");
            out.push_str(&r.to_json());
            out.push(',');
        }
        out.push_str("\"cluster\":{");
        out.push_str(&fields.join(","));
        out.push_str("}}\n");
        std::fs::write(path, out)?;
        println!("report written to {path}");
    }

    let counter = |name: &str| {
        entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    if args.flag("expect-failover") && counter("cluster.failed_over") == 0 {
        return Err("expected a failover, but cluster.failed_over is 0".into());
    }
    if args.flag("fail-on-errors") {
        if let Some(r) = &report {
            if r.protocol_errors + r.io_errors > 0 {
                return Err(format!(
                    "cluster loadgen saw {} protocol and {} io errors",
                    r.protocol_errors, r.io_errors
                )
                .into());
            }
        }
        if counter("cluster.protocol_errors") > 0 {
            return Err("coordinator counted protocol errors".into());
        }
    }
    Ok(())
}

/// `pacds scenario-template`
pub fn scenario_template(args: &Args) -> CliResult {
    args.check_known(&[])?;
    println!(
        "{}",
        serde_json::to_string_pretty(&pacds_sim::Scenario::template())?
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    /// Serialises tests that reset or sample the process-global obs state
    /// (counter table, span ring) against each other.
    static OBS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn policy_names_round_trip() {
        for (name, policy) in [
            ("nr", Policy::NoPruning),
            ("id", Policy::Id),
            ("nd", Policy::Degree),
            ("el1", Policy::Energy),
            ("EL2", Policy::EnergyDegree),
        ] {
            assert_eq!(policy_of(name).unwrap(), policy);
        }
        assert!(policy_of("bogus").is_err());
    }

    #[test]
    fn model_names() {
        assert_eq!(model_of("1").unwrap(), DrainModel::ConstantTotal);
        assert_eq!(model_of("2").unwrap(), DrainModel::LinearInN);
        assert_eq!(model_of("3").unwrap(), DrainModel::QuadraticInN);
        assert!(matches!(
            model_of("d2").unwrap(),
            DrainModel::ConstantPerGateway { .. }
        ));
        assert!(model_of("x").is_err());
    }

    #[test]
    fn topology_generation_is_deterministic() {
        let a = topology(&args("gen --n 20 --seed 9")).unwrap();
        let b = topology(&args("gen --n 20 --seed 9")).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.n(), 20);
    }

    #[test]
    fn connected_flag_yields_connected_graph() {
        let g = topology(&args("gen --n 30 --seed 2 --connected")).unwrap();
        assert!(algo::is_connected(&g));
    }

    #[test]
    fn energy_levels_default_uniform() {
        let a = args("cds");
        assert_eq!(energy_levels(&a, 3).unwrap(), vec![10, 10, 10]);
        let b = args("cds --energy-seed 5");
        let levels = energy_levels(&b, 50).unwrap();
        assert!(levels.iter().any(|&l| l != levels[0]));
    }

    #[test]
    fn commands_run_end_to_end() {
        gen(&args("gen --n 15 --seed 3")).unwrap();
        cds(&args("cds --n 25 --seed 3 --connected --policy el2 --energy-seed 1")).unwrap();
        compare(&args("compare --n 25 --seed 3 --connected")).unwrap();
        route(&args("route --n 25 --seed 3 --connected --from 0 --to 7")).unwrap();
        simulate(&args("simulate --n 15 --trials 2 --model 3")).unwrap();
    }

    #[test]
    fn trace_and_watch_and_robustness_run() {
        let dir = std::env::temp_dir().join("pacds_cli_test_trace.jsonl");
        let out = format!("trace --n 12 --max 5 --out {}", dir.display());
        trace(&args(&out)).unwrap();
        assert!(dir.exists());
        let text = std::fs::read_to_string(&dir).unwrap();
        assert!(text.lines().count() >= 1);
        let _ = std::fs::remove_file(&dir);
        watch(&args("watch --n 12 --intervals 2")).unwrap();
        robustness(&args("robustness --n 25 --seed 3 --connected")).unwrap();
    }

    #[test]
    fn explain_runs_for_all_hosts_and_single_host() {
        explain(&args("explain --n 20 --seed 3 --connected --policy el1 --energy-seed 2")).unwrap();
        explain(&args("explain --n 20 --seed 3 --host 5")).unwrap();
        assert!(explain(&args("explain --n 10 --seed 1 --host 99")).is_err());
    }

    #[test]
    fn scenario_round_trip_through_cli() {
        scenario_template(&args("scenario-template")).unwrap();
        // Write a small scenario and run it.
        let mut sc = pacds_sim::Scenario::template();
        sc.trials = 2;
        sc.sim.n = 12;
        let path = std::env::temp_dir().join("pacds_cli_scenario.json");
        std::fs::write(&path, serde_json::to_string(&sc).unwrap()).unwrap();
        run_scenario(&args(&format!("run --scenario {}", path.display()))).unwrap();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn obs_report_runs_in_all_formats() {
        // One test fn for every invocation: obs_report resets the global
        // counters, so concurrent calls from separate tests would race.
        let _g = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        obs_report(&args("obs-report --n 12 --intervals 3")).unwrap();
        obs_report(&args("obs-report --n 12 --intervals 3 --format jsonl")).unwrap();
        obs_report(&args("obs-report --n 12 --intervals 3 --format prometheus")).unwrap();
        let tpath = std::env::temp_dir().join("pacds_cli_obs_traces.jsonl");
        obs_report(&args(&format!(
            "obs-report --n 12 --intervals 3 --trace-jsonl {}",
            tpath.display()
        )))
        .unwrap();
        let traces = std::fs::read_to_string(&tpath).unwrap();
        let _ = std::fs::remove_file(&tpath);
        if pacds_obs::trace_enabled() {
            assert!(
                traces.lines().any(|l| l.contains("sim.interval")),
                "trace build must record interval spans: {traces}"
            );
        } else {
            assert!(traces.is_empty());
        }
        assert!(obs_report(&args("obs-report --n 12 --intervals 3 --format bogus")).is_err());
        assert!(obs_report(&args("obs-report --bogus 1")).is_err());
        #[cfg(feature = "obs")]
        {
            // The instrumented build must produce a non-empty breakdown for
            // the paper-default scenario.
            let snap = pacds_obs::Snapshot::capture();
            assert!(!snap.phases.is_empty(), "obs build must report phases");
            assert!(snap.counter("sim.intervals") >= 1);
        }
    }

    #[test]
    fn unknown_options_are_rejected() {
        assert!(gen(&args("gen --bogus 3")).is_err());
        assert!(simulate(&args("simulate --radius 3")).is_err());
    }

    #[test]
    fn bad_route_endpoints_error() {
        assert!(route(&args("route --n 10 --seed 3 --from 0 --to 999")).is_err());
    }

    #[test]
    fn server_config_parses_flags() {
        let cfg = server_config_of(&args("serve --workers 3 --queue 7 --cache-mb 2")).unwrap();
        assert_eq!(cfg.workers, 3);
        assert_eq!(cfg.queue, 7);
        assert_eq!(cfg.cache_bytes, 2 << 20);
        assert_eq!(cfg.shard, pacds_serve::ShardPolicy::default());
        assert!(server_config_of(&args("serve --workers zero")).is_err());

        let cfg = server_config_of(&args(
            "serve --shard always --shard-threshold 500 --shards 8",
        ))
        .unwrap();
        assert_eq!(cfg.shard.mode, pacds_serve::ShardMode::Always);
        assert_eq!(cfg.shard.threshold, 500);
        assert_eq!(cfg.shard.shards, 8);
        assert!(server_config_of(&args("serve --shard sometimes")).is_err());
    }

    #[test]
    fn shard_command_checks_identity_and_writes_json() {
        let path = std::env::temp_dir().join("pacds_cli_shard.json");
        shard(&args(&format!(
            "shard --n 400 --seed 7 --shards 4 --threads 1 --policy el2 \
             --energy-seed 3 --check --compare --fail-on-errors --json {}",
            path.display()
        )))
        .unwrap();
        let stats = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert!(stats.contains("\"n\":400"));
        assert!(stats.contains("\"tiles\":4"));
        assert!(stats.contains("\"solve_ns\":"));
        assert!(!stats.contains("\"whole_graph_s\":null"), "--compare ran");
    }

    #[test]
    fn shard_command_rejects_bad_halo_and_unshardable_semantics() {
        assert!(shard(&args("shard --n 50 --halo 1")).is_err(), "halo below minimum");
        assert!(
            shard(&args("shard --n 50 --semantics seq")).is_err(),
            "sequential semantics are typed-rejected"
        );
        // Oversized --check is only fatal under --fail-on-errors.
        assert!(shard(&args("shard --n 200000 --check --fail-on-errors")).is_err());
    }

    #[test]
    fn churn_command_checks_identity_and_writes_json() {
        let path = std::env::temp_dir().join("pacds_cli_churn.json");
        churn(&args(&format!(
            "churn --n 300 --seed 5 --shards 9 --threads 1 --policy el2 \
             --energy-seed 3 --steps 4 --events 12 --check --json {}",
            path.display()
        )))
        .unwrap();
        let stats = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert!(stats.contains("\"n\":300"));
        assert!(stats.contains("\"checked\":true"));
        assert!(stats.contains("\"gateway_flips\":"));
    }

    #[test]
    fn churn_command_rejects_unshardable_semantics_and_bad_locality_gates() {
        assert!(
            churn(&args("churn --n 40 --semantics seq --steps 1")).is_err(),
            "sequential semantics are typed-rejected"
        );
        // An impossible locality gate must fail the run: with every tile
        // dirty on the initial solve, a later step touching most of a tiny
        // grid cannot stay under a 0-fraction ceiling.
        assert!(churn(&args(
            "churn --n 120 --shards 4 --threads 1 --steps 2 --events 40 \
             --max-resolved-frac 0.0"
        ))
        .is_err());
    }

    #[test]
    fn loadgen_rejects_bad_modes_and_options() {
        assert!(loadgen(&args("loadgen --mode sideways")).is_err());
        // Open mode requires --rate.
        assert!(loadgen(&args("loadgen --mode open")).is_err());
        assert!(loadgen(&args("loadgen --bogus 1")).is_err());
    }

    #[test]
    fn obs_diff_reports_counter_and_phase_deltas() {
        use pacds_obs::{PhaseSnapshot, Snapshot};
        let dir = std::env::temp_dir();
        let (old_path, new_path) =
            (dir.join("pacds_cli_diff_old.jsonl"), dir.join("pacds_cli_diff_new.jsonl"));
        let mut old = Snapshot::empty();
        old.counters.push(pacds_obs::export::CounterEntry {
            name: "serve.requests".into(),
            value: 10,
        });
        let mut new = old.clone();
        new.counters[0].value = 25;
        new.phases.push(PhaseSnapshot {
            name: "serve.compute".into(),
            count: 4,
            total_ns: 8_000,
            buckets: vec![4],
        });
        // An interleaved non-snapshot line must be skipped, not fatal.
        std::fs::write(&old_path, old.to_json_line() + "\n").unwrap();
        std::fs::write(
            &new_path,
            format!("{}\n{{\"kind\":\"obs_window\",\"seq\":1}}\n", new.to_json_line()),
        )
        .unwrap();
        obs_report(&args(&format!(
            "obs-report --diff {} {}",
            old_path.display(),
            new_path.display()
        )))
        .unwrap();
        // Missing second path and over-long positional lists are rejected.
        assert!(obs_report(&args(&format!("obs-report --diff {}", old_path.display()))).is_err());
        assert!(obs_report(&args("obs-report --diff a.jsonl b.jsonl c.jsonl")).is_err());
        // A positional without --diff is rejected too.
        assert!(obs_report(&args("obs-report stray.jsonl")).is_err());
        let _ = std::fs::remove_file(&old_path);
        let _ = std::fs::remove_file(&new_path);
    }

    #[test]
    fn obs_live_tails_a_stats_subscription() {
        let cfg = pacds_serve::ServerConfig { workers: 1, ..Default::default() };
        let mut server = pacds_serve::serve("127.0.0.1:0", cfg).unwrap();
        obs_live(
            &server.addr().to_string(),
            &args("obs-report --interval-ms 20 --windows 2"),
        )
        .unwrap();
        server.shutdown();
    }

    #[test]
    fn churn_trace_jsonl_writes_a_file() {
        let _g = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let path = std::env::temp_dir().join("pacds_cli_churn_traces.jsonl");
        churn(&args(&format!(
            "churn --n 120 --shards 4 --threads 1 --steps 2 --events 8 \
             --trace-jsonl {}",
            path.display()
        )))
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        if pacds_obs::trace_enabled() {
            assert!(
                text.lines().any(|l| l.contains("churn.refresh")),
                "trace build must record refresh spans: {text}"
            );
        } else {
            assert!(text.is_empty(), "disabled build writes an empty trace file");
        }
    }

    #[test]
    fn self_hosted_loadgen_round_trips() {
        // End-to-end smoke: in-process server on an ephemeral port, a short
        // closed-loop burst, JSON report on disk, zero protocol errors.
        let path = std::env::temp_dir().join("pacds_cli_loadgen.json");
        loadgen(&args(&format!(
            "loadgen --self-host --workers 2 --cache-mb 8 --n 30 --radius 30 \
             --duration 0.3 --concurrency 2 --fail-on-errors --json {}",
            path.display()
        )))
        .unwrap();
        let report = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert!(report.contains("\"bench\":\"serve_loadgen\""));
        assert!(report.contains("\"protocol_errors\":0"));
    }
}
