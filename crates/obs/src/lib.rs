//! # pacds-obs — zero-overhead-when-off instrumentation
//!
//! The paper's claims are all *measurements*, and the ROADMAP's
//! production-scale target needs to see where time goes before any of it
//! can be tuned. This crate is the metrics substrate the rest of the
//! workspace routes through: phase timers, rule-pass counters, fixed-bucket
//! latency histograms, and exporters (JSON-lines and Prometheus text
//! exposition).
//!
//! ## The two builds
//!
//! Everything hinges on the `enabled` cargo feature (surfaced as `obs` by
//! the downstream crates):
//!
//! * **off** (default) — every recording entry point is an `#[inline]`
//!   empty function or a unit struct, so the optimizer erases the
//!   instrumentation entirely; the hot paths compile as if this crate did
//!   not exist.
//! * **on** — counters are relaxed atomics in `static` fixed arrays and
//!   histograms are fixed power-of-two buckets, so recording **never
//!   allocates**: the workspace-level `tests/zero_alloc.rs` passes with
//!   metrics enabled, counters ticking on every interval.
//!
//! Hot loops do not touch the atomics per element: they accumulate into a
//! stack [`Tally`] (a `u64` when enabled, a zero-sized type when off) and
//! flush once per pass.
//!
//! ## Recording
//!
//! ```
//! use pacds_obs::{Counter, Phase, Tally};
//!
//! // Counted work: accumulate locally, flush once.
//! let mut examined = Tally::new();
//! for _ in 0..100 {
//!     examined.bump();
//! }
//! examined.flush(Counter::Rule1Candidates);
//!
//! // Timed work: the guard records elapsed time on drop.
//! {
//!     let _t = pacds_obs::phase_timer(Phase::Rule1);
//!     // ... the pass ...
//! }
//!
//! let snap = pacds_obs::Snapshot::capture();
//! if pacds_obs::enabled() {
//!     assert!(snap.counter("rule1.candidates") >= 100);
//! } else {
//!     assert_eq!(snap.counter("rule1.candidates"), 0);
//! }
//! ```
//!
//! ## Exporting
//!
//! [`Snapshot::capture`] materialises the statics into a serialisable
//! document (this is the only allocating path, meant for run boundaries,
//! not intervals). [`export::write_jsonl`] appends it as one JSON object
//! per line — the same framing as `pacds-sim`'s trace records, so the two
//! streams can share a file — and [`export::write_prometheus`] renders the
//! text exposition format.
//!
//! ## Logging
//!
//! [`log`] is a dependency-free leveled logger with `tracing`-style spans,
//! always compiled and gated at runtime by `PACDS_LOG` / an explicit level
//! (default: off, one relaxed atomic load per call site). The CLI wires it
//! to `--log-level`.

pub mod export;
pub mod log;
pub mod recorder;
pub mod series;
pub mod trace;

pub use export::{write_jsonl, write_prometheus, PhaseSnapshot, Snapshot};
pub use recorder::{
    counter_value, enabled, par_tick, phase_timer, record_phase_ns, reset,
    shard_thread_tiles_tick, shard_tiles_per_thread, Counter, Phase, PhaseTimer, Tally,
};
pub use series::{SeriesTracker, WindowDelta};
pub use trace::{
    next_trace_id, reset_tracing, sampling, set_sampling, span, take_spans, trace_enabled,
    traces_jsonl, SpanGuard, SpanKind, SpanRecord, TraceId,
};

/// Convenience: increments a counter by 1 (no-op without `enabled`).
#[inline(always)]
pub fn inc(counter: Counter) {
    recorder::add(counter, 1);
}

/// Convenience: adds to a counter (no-op without `enabled`).
#[inline(always)]
pub fn add(counter: Counter, n: u64) {
    recorder::add(counter, n);
}

/// Increments a [`Counter`] by 1, or by an expression.
///
/// Expands to a recording call when the crate is built with `enabled`, and
/// to an expression-discarding no-op otherwise, so disabled builds carry no
/// trace of the instrumentation.
#[macro_export]
macro_rules! obs_count {
    ($counter:expr) => {
        $crate::inc($counter)
    };
    ($counter:expr, $n:expr) => {
        $crate::add($counter, $n as u64)
    };
}

/// Binds a scope guard timing the enclosing scope under a [`Phase`].
///
/// ```
/// # use pacds_obs::Phase;
/// fn work() {
///     pacds_obs::obs_time!(_guard, Phase::Marking);
///     // ... timed to the end of the scope ...
/// }
/// # work();
/// ```
#[macro_export]
macro_rules! obs_time {
    ($binding:ident, $phase:expr) => {
        let $binding = $crate::phase_timer($phase);
    };
}
