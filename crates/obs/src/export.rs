//! Snapshotting and exporters.
//!
//! A [`Snapshot`] is a point-in-time, owned copy of every metric —
//! the only allocating path in the crate, intended for run boundaries.
//! Two wire formats are provided:
//!
//! * **JSON lines** ([`write_jsonl`]) — one self-describing object per
//!   line, the same framing as `pacds-sim`'s `TraceRecorder`, so metric
//!   snapshots and interval traces can interleave in one stream;
//! * **Prometheus text exposition** ([`write_prometheus`]) — counters as
//!   `pacds_*_total`, phases as native histograms with cumulative `le`
//!   buckets plus `_sum`/`_count`.

use crate::recorder::{
    bucket_bound_ns, counter_value, enabled, par_work_per_thread, shard_tiles_per_thread,
    Counter, COUNTER_NAMES, NUM_BUCKETS, NUM_COUNTERS, NUM_PHASES,
};
use serde::{Deserialize, Serialize};
use std::io::{self, Write};

/// One counter's value, by wire label.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterEntry {
    /// Dotted wire label, e.g. `rule1.candidates`.
    pub name: String,
    /// Monotonic count since process start (or the last `reset`).
    pub value: u64,
}

/// One phase's aggregated timings.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseSnapshot {
    /// Dotted wire label, e.g. `sim.cds`.
    pub name: String,
    /// Samples recorded.
    pub count: u64,
    /// Sum of sample durations, nanoseconds.
    pub total_ns: u64,
    /// Per-bucket sample counts (non-cumulative); bucket `i` holds samples
    /// `< 128 << i` ns, last bucket is overflow. Trailing zeros trimmed.
    pub buckets: Vec<u64>,
}

impl PhaseSnapshot {
    /// Mean sample duration in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }
}

/// A point-in-time copy of all metrics, serialisable both ways (the
/// JSONL round-trip is pinned by tests). Entries keep declaration order,
/// zero-valued counters and empty phases are omitted.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Wire-format marker (`"obs_snapshot"`) so snapshot lines are
    /// self-describing when interleaved with other JSONL streams.
    pub kind: String,
    /// Whether the producing build had the recording runtime compiled in.
    pub enabled: bool,
    /// Non-zero counters.
    pub counters: Vec<CounterEntry>,
    /// Non-empty phase timings.
    pub phases: Vec<PhaseSnapshot>,
    /// Per-thread parallel work totals (slot-indexed, first-use order).
    pub par_thread_work: Vec<u64>,
    /// Per-thread sharded tiles solved (same slot identities as
    /// `par_thread_work`); the work-distribution evidence for parallel
    /// shard runs. Absent in older snapshot lines, so deserialisation
    /// defaults it to empty.
    #[serde(default)]
    pub shard_thread_tiles: Vec<u64>,
}

/// The `kind` tag every snapshot line carries.
pub const SNAPSHOT_KIND: &str = "obs_snapshot";

impl Snapshot {
    /// Captures the current metric state. In a disabled build this returns
    /// an empty snapshot with `enabled: false`.
    pub fn capture() -> Self {
        let mut counters = Vec::new();
        #[cfg_attr(not(feature = "enabled"), allow(unused_mut))]
        let mut phases: Vec<PhaseSnapshot> = Vec::new();
        if enabled() {
            for i in 0..NUM_COUNTERS {
                let v = counter_value(ALL_COUNTERS[i]);
                if v > 0 {
                    counters.push(CounterEntry {
                        name: COUNTER_NAMES[i].to_string(),
                        value: v,
                    });
                }
            }
            #[cfg(feature = "enabled")]
            for i in 0..NUM_PHASES {
                let (count, total_ns, mut buckets) = crate::recorder::phase_raw(i);
                if count == 0 {
                    continue;
                }
                while buckets.last() == Some(&0) {
                    buckets.pop();
                }
                phases.push(PhaseSnapshot {
                    name: crate::recorder::PHASE_NAMES[i].to_string(),
                    count,
                    total_ns,
                    buckets,
                });
            }
        }
        let _ = NUM_PHASES;
        Snapshot {
            kind: SNAPSHOT_KIND.to_string(),
            enabled: enabled(),
            counters,
            phases,
            par_thread_work: par_work_per_thread(),
            shard_thread_tiles: shard_tiles_per_thread(),
        }
    }

    /// An empty snapshot (what a disabled build captures).
    pub fn empty() -> Self {
        Snapshot {
            kind: SNAPSHOT_KIND.to_string(),
            enabled: false,
            counters: Vec::new(),
            phases: Vec::new(),
            par_thread_work: Vec::new(),
            shard_thread_tiles: Vec::new(),
        }
    }

    /// A counter's value by label (0 when absent).
    pub fn counter(&self, label: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == label)
            .map_or(0, |c| c.value)
    }

    /// A phase's timings by label.
    pub fn phase(&self, label: &str) -> Option<&PhaseSnapshot> {
        self.phases.iter().find(|p| p.name == label)
    }

    /// Serialises to a single JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        serde_json::to_string(self).expect("snapshot serialises")
    }
}

impl Default for Snapshot {
    fn default() -> Self {
        Snapshot::empty()
    }
}

/// Dense table of counters (index = discriminant); pinned by a test
/// against the enum's own labels.
const ALL_COUNTERS: [Counter; NUM_COUNTERS] = {
    use Counter::*;
    [
        MarkingScanned,
        MarkingMarked,
        Rule1Candidates,
        Rule1PrefilterRejects,
        Rule1WitnessProbes,
        Rule1WitnessRejects,
        Rule1SubsetScans,
        Rule1Unmarked,
        Rule2Vertices,
        Rule2Candidates,
        Rule2PairsProbed,
        Rule2WitnessRejects,
        Rule2CoverageScans,
        Rule2Unmarked,
        WorkspaceComputes,
        WorkspaceBitmapRebuilds,
        WorkspaceKeyRebuilds,
        WorkspaceRounds,
        VerifyRuns,
        VerifyFailures,
        SimIntervals,
        SimGatewayChurn,
        SimDeaths,
        SimTopologyRebuilds,
        DistHelloMessages,
        DistMarkerMessages,
        DistRuns,
        ParVertices,
        ServeRequests,
        ServeCacheHits,
        ServeCacheMisses,
        ServeCacheEvictions,
        ServeRejected,
        ServeProtocolErrors,
        ServeDeadlineExceeded,
        ShardComputes,
        ShardTiles,
        ShardOwnedNodes,
        ShardHaloNodes,
        ShardCrossTileEdges,
        ShardTilesStolen,
        ShardBusyNs,
        ChurnRefreshes,
        ChurnTilesResolved,
        ChurnGatewayFlips,
        ServePushFrames,
        ServePushDropped,
        ServeSubscribersLagged,
        TraceSpans,
        TraceSpansDropped,
        DpPackets,
        DpForwarded,
        DpDelivered,
        DpDropped,
        DpNacks,
        DpRetransmits,
        DpRouteBuilds,
        DpFloodTransmissions,
        DpFloodDuplicates,
        DpMisroutes,
        ClusterRouted,
        ClusterFailedOver,
        ClusterNoBackend,
        ClusterHealthFlips,
        ClusterPushRelayed,
    ]
};

/// Appends `snap` to `w` as one JSON line (TraceRecorder-compatible
/// framing: one object per line, `\n`-terminated).
pub fn write_jsonl<W: Write>(snap: &Snapshot, w: &mut W) -> io::Result<()> {
    w.write_all(snap.to_json_line().as_bytes())?;
    w.write_all(b"\n")
}

/// Renders `snap` in the Prometheus text exposition format.
///
/// Counters become `pacds_<label>_total` (dots mapped to underscores);
/// phases become the histogram family `pacds_phase_duration_ns` with
/// cumulative `le` buckets, `_sum` and `_count`; per-thread parallel work
/// becomes `pacds_par_thread_work_total{thread="i"}` and per-thread shard
/// tile counts `pacds_shard_thread_tiles_total{thread="i"}`.
pub fn write_prometheus<W: Write>(snap: &Snapshot, w: &mut W) -> io::Result<()> {
    for c in &snap.counters {
        let name = c.name.replace('.', "_");
        writeln!(w, "# TYPE pacds_{name}_total counter")?;
        writeln!(w, "pacds_{name}_total {}", c.value)?;
    }
    if !snap.phases.is_empty() {
        writeln!(w, "# TYPE pacds_phase_duration_ns histogram")?;
        for p in &snap.phases {
            let label = &p.name;
            let mut cumulative = 0u64;
            for (i, &b) in p.buckets.iter().enumerate() {
                cumulative += b;
                let le = match bucket_bound_ns(i) {
                    Some(bound) => bound.to_string(),
                    None => "+Inf".to_string(),
                };
                writeln!(
                    w,
                    "pacds_phase_duration_ns_bucket{{phase=\"{label}\",le=\"{le}\"}} {cumulative}"
                )?;
            }
            if p.buckets.len() < NUM_BUCKETS {
                writeln!(
                    w,
                    "pacds_phase_duration_ns_bucket{{phase=\"{label}\",le=\"+Inf\"}} {cumulative}"
                )?;
            }
            writeln!(w, "pacds_phase_duration_ns_sum{{phase=\"{label}\"}} {}", p.total_ns)?;
            writeln!(w, "pacds_phase_duration_ns_count{{phase=\"{label}\"}} {}", p.count)?;
        }
    }
    for (i, work) in snap.par_thread_work.iter().enumerate() {
        if i == 0 {
            writeln!(w, "# TYPE pacds_par_thread_work_total counter")?;
        }
        writeln!(w, "pacds_par_thread_work_total{{thread=\"{i}\"}} {work}")?;
    }
    for (i, tiles) in snap.shard_thread_tiles.iter().enumerate() {
        if i == 0 {
            writeln!(w, "# TYPE pacds_shard_thread_tiles_total counter")?;
        }
        writeln!(w, "pacds_shard_thread_tiles_total{{thread=\"{i}\"}} {tiles}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_table_matches_enum_order() {
        for (i, c) in ALL_COUNTERS.iter().enumerate() {
            assert_eq!(*c as usize, i, "ALL_COUNTERS[{i}] out of order");
            assert_eq!(c.label(), COUNTER_NAMES[i]);
        }
    }

    #[test]
    fn snapshot_round_trips_through_jsonl() {
        let mut snap = Snapshot::empty();
        snap.enabled = true;
        snap.counters.push(CounterEntry {
            name: "rule1.candidates".into(),
            value: 42,
        });
        snap.phases.push(PhaseSnapshot {
            name: "rule1".into(),
            count: 3,
            total_ns: 9_000,
            buckets: vec![0, 1, 2],
        });
        snap.par_thread_work = vec![7, 0, 3];
        snap.shard_thread_tiles = vec![4, 4];
        let mut buf = Vec::new();
        write_jsonl(&snap, &mut buf).unwrap();
        let line = String::from_utf8(buf).unwrap();
        assert!(line.ends_with('\n'));
        let back: Snapshot = serde_json::from_str(line.trim_end()).unwrap();
        assert_eq!(back, snap);
        // Older producers omit the shard tile table; it must default.
        let old: Snapshot =
            serde_json::from_str(r#"{"kind":"obs_snapshot","enabled":false,"counters":[],"phases":[],"par_thread_work":[]}"#)
                .unwrap();
        assert!(old.shard_thread_tiles.is_empty());
        assert_eq!(back.counter("rule1.candidates"), 42);
        assert_eq!(back.counter("rule1.unmarked"), 0);
        assert_eq!(back.phase("rule1").unwrap().count, 3);
        assert!(back.phase("rule2").is_none());
    }

    #[test]
    fn captured_snapshot_round_trips() {
        crate::recorder::add(Counter::MarkingScanned, 5);
        crate::recorder::record_phase_ns(crate::Phase::Marking, 640);
        let snap = Snapshot::capture();
        let back: Snapshot = serde_json::from_str(&snap.to_json_line()).unwrap();
        assert_eq!(back, snap);
        assert_eq!(snap.kind, SNAPSHOT_KIND);
        assert_eq!(snap.enabled, enabled());
        if enabled() {
            assert!(snap.counter("marking.vertices_scanned") >= 5);
            assert!(snap.phase("marking").unwrap().count >= 1);
        } else {
            assert!(snap.counters.is_empty());
            assert!(snap.phases.is_empty());
        }
    }

    #[test]
    fn prometheus_exposition_shape() {
        let mut snap = Snapshot::empty();
        snap.counters.push(CounterEntry {
            name: "rule2.unmarked".into(),
            value: 9,
        });
        snap.phases.push(PhaseSnapshot {
            name: "sim.cds".into(),
            count: 2,
            total_ns: 300,
            buckets: vec![1, 1],
        });
        snap.shard_thread_tiles = vec![3, 2];
        let mut buf = Vec::new();
        write_prometheus(&snap, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("pacds_shard_thread_tiles_total{thread=\"0\"} 3"));
        assert!(text.contains("pacds_shard_thread_tiles_total{thread=\"1\"} 2"));
        assert!(text.contains("pacds_rule2_unmarked_total 9"));
        assert!(text.contains("pacds_phase_duration_ns_bucket{phase=\"sim.cds\",le=\"128\"} 1"));
        assert!(text.contains("pacds_phase_duration_ns_bucket{phase=\"sim.cds\",le=\"256\"} 2"));
        assert!(text.contains("pacds_phase_duration_ns_bucket{phase=\"sim.cds\",le=\"+Inf\"} 2"));
        assert!(text.contains("pacds_phase_duration_ns_sum{phase=\"sim.cds\"} 300"));
        assert!(text.contains("pacds_phase_duration_ns_count{phase=\"sim.cds\"} 2"));
    }

    #[test]
    fn mean_ns_handles_empty() {
        let p = PhaseSnapshot {
            name: "x".into(),
            count: 0,
            total_ns: 0,
            buckets: vec![],
        };
        assert_eq!(p.mean_ns(), 0.0);
    }
}
