//! Dependency-free leveled logging with `tracing`-style spans.
//!
//! The workspace cannot vendor `tracing`/`tracing-subscriber`, so this
//! module provides the slice of that surface the CLI needs: a global
//! runtime level (default **off** — one relaxed atomic load per call
//! site), `error!`/`warn!`/`info!`/`debug!`/`trace!`-shaped macros, and
//! [`span`] guards that log entry on creation and exit-with-elapsed-time
//! on drop. Output goes to stderr so it never corrupts machine-readable
//! stdout (JSONL traces, Prometheus dumps).
//!
//! Unlike the metrics recorder this is *not* feature-gated: logging is
//! off-by-default at runtime, and a single relaxed load is cheap enough
//! for the cold call sites (CLI entry points, interval boundaries) where
//! it is used. Hot loops must use the recorder, never the logger.

use std::sync::atomic::{AtomicU8, Ordering};
use std::time::Instant;

/// Log verbosity, ordered: `Off < Error < Warn < Info < Debug < Trace`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// No output (the default).
    Off = 0,
    /// Unrecoverable problems.
    Error = 1,
    /// Suspicious but tolerated conditions.
    Warn = 2,
    /// High-level progress (command entry, run summaries).
    Info = 3,
    /// Span enter/exit and per-phase detail.
    Debug = 4,
    /// Everything.
    Trace = 5,
}

impl Level {
    /// Short uppercase tag used in log lines.
    pub const fn tag(self) -> &'static str {
        match self {
            Level::Off => "OFF",
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        }
    }
}

/// Parses a level name (case-insensitive). Accepts the `tracing` spellings
/// plus `off`/`none` and `0`–`5`.
pub fn parse_level(s: &str) -> Option<Level> {
    match s.trim().to_ascii_lowercase().as_str() {
        "off" | "none" | "0" => Some(Level::Off),
        "error" | "1" => Some(Level::Error),
        "warn" | "warning" | "2" => Some(Level::Warn),
        "info" | "3" => Some(Level::Info),
        "debug" | "4" => Some(Level::Debug),
        "trace" | "5" => Some(Level::Trace),
        _ => None,
    }
}

static LEVEL: AtomicU8 = AtomicU8::new(Level::Off as u8);

/// Sets the global log level.
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current global log level.
pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        1 => Level::Error,
        2 => Level::Warn,
        3 => Level::Info,
        4 => Level::Debug,
        5 => Level::Trace,
        _ => Level::Off,
    }
}

/// True when a message at `l` would be emitted.
#[inline]
pub fn level_enabled(l: Level) -> bool {
    l as u8 <= LEVEL.load(Ordering::Relaxed) && l != Level::Off
}

/// Initialises the level from the `PACDS_LOG` environment variable.
/// Returns the level that ended up active. Unparseable values are
/// ignored (the level is left unchanged) — a CLI flag should win over
/// the environment, so call this *before* applying `--log-level`.
pub fn init_from_env() -> Level {
    if let Ok(v) = std::env::var("PACDS_LOG") {
        if let Some(l) = parse_level(&v) {
            set_level(l);
        }
    }
    level()
}

/// Emits one log line to stderr if `l` is enabled. Prefer the macros.
pub fn log_at(l: Level, target: &str, msg: std::fmt::Arguments<'_>) {
    if level_enabled(l) {
        eprintln!("[pacds {:5} {target}] {msg}", l.tag());
    }
}

/// A `tracing`-style span: logs `enter` at creation and `exit` with the
/// elapsed time on drop, both at [`Level::Debug`]. Cheap when logging is
/// off (`Instant::now` is only taken when the span will be reported).
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
}

/// Opens a [`Span`] named `name`.
pub fn span(name: &'static str) -> Span {
    let start = if level_enabled(Level::Debug) {
        log_at(Level::Debug, name, format_args!("enter"));
        Some(Instant::now())
    } else {
        None
    };
    Span { name, start }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            log_at(
                Level::Debug,
                self.name,
                format_args!("exit ({:.3?})", start.elapsed()),
            );
        }
    }
}

/// Logs at [`Level::Error`].
#[macro_export]
macro_rules! obs_error {
    ($target:expr, $($arg:tt)*) => {
        $crate::log::log_at($crate::log::Level::Error, $target, format_args!($($arg)*))
    };
}

/// Logs at [`Level::Warn`].
#[macro_export]
macro_rules! obs_warn {
    ($target:expr, $($arg:tt)*) => {
        $crate::log::log_at($crate::log::Level::Warn, $target, format_args!($($arg)*))
    };
}

/// Logs at [`Level::Info`].
#[macro_export]
macro_rules! obs_info {
    ($target:expr, $($arg:tt)*) => {
        $crate::log::log_at($crate::log::Level::Info, $target, format_args!($($arg)*))
    };
}

/// Logs at [`Level::Debug`].
#[macro_export]
macro_rules! obs_debug {
    ($target:expr, $($arg:tt)*) => {
        $crate::log::log_at($crate::log::Level::Debug, $target, format_args!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    /// Tests that touch the global level run serially.
    fn serial() -> MutexGuard<'static, ()> {
        static GUARD: Mutex<()> = Mutex::new(());
        GUARD.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn parse_accepts_tracing_spellings() {
        assert_eq!(parse_level("info"), Some(Level::Info));
        assert_eq!(parse_level("WARN"), Some(Level::Warn));
        assert_eq!(parse_level(" trace "), Some(Level::Trace));
        assert_eq!(parse_level("off"), Some(Level::Off));
        assert_eq!(parse_level("3"), Some(Level::Info));
        assert_eq!(parse_level("verbose"), None);
    }

    #[test]
    fn level_ordering_gates_messages() {
        let _g = serial();
        set_level(Level::Warn);
        assert!(level_enabled(Level::Error));
        assert!(level_enabled(Level::Warn));
        assert!(!level_enabled(Level::Info));
        assert!(!level_enabled(Level::Off));
        set_level(Level::Off);
        assert!(!level_enabled(Level::Error));
    }

    #[test]
    fn span_is_silent_when_off() {
        let _g = serial();
        set_level(Level::Off);
        let s = span("test.span");
        assert!(s.start.is_none());
        drop(s);
    }
}
