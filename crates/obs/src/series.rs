//! Windowed time-series over the lifetime counters and histograms.
//!
//! The recorder's counters and phase histograms are monotone lifetime
//! totals — right for overhead gates, wrong for "what is the server doing
//! *now*". A [`SeriesTracker`] closes that gap: it remembers the raw
//! values at its last tick, and every [`SeriesTracker::tick`] produces a
//! [`WindowDelta`] — requests, request rate, p50/p99 derived from the
//! **delta** of a phase histogram (not the lifetime one), gateway
//! flips/sec, and tiles-resolved/refresh — and pushes it into a
//! fixed-capacity ring of recent windows ([`WINDOW_CAP`]).
//!
//! Ticking is a cold-path operation (it reads every bucket of one
//! histogram); the data path is never touched. In non-`enabled` builds a
//! tracker ticks real wall-clock windows whose metric fields are all
//! zero.

use crate::recorder::{bucket_bound_ns, counter_value, Counter, Phase, NUM_BUCKETS};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::time::Instant;

/// Maximum windows a tracker retains; older windows are dropped.
pub const WINDOW_CAP: usize = 64;

/// One closed window: deltas since the previous tick.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct WindowDelta {
    /// Window sequence number (0-based, per tracker).
    pub seq: u64,
    /// Window length in seconds (wall clock).
    pub dt_s: f64,
    /// Requests completed in the window ([`Counter::ServeRequests`]).
    pub requests: u64,
    /// Requests per second over the window.
    pub req_per_s: f64,
    /// Median of the tracked phase's in-window samples, nanoseconds
    /// (bucket upper bound; 0 when the window saw no samples).
    pub p50_ns: u64,
    /// 99th percentile of the tracked phase's in-window samples, ns.
    pub p99_ns: u64,
    /// Phase samples the percentiles were computed from.
    pub samples: u64,
    /// Gateway verdict flips in the window
    /// ([`Counter::ChurnGatewayFlips`]).
    pub gateway_flips: u64,
    /// Gateway flips per second over the window.
    pub flips_per_s: f64,
    /// Tiles re-solved in the window ([`Counter::ChurnTilesResolved`]).
    pub tiles_resolved: u64,
    /// Churn refreshes in the window ([`Counter::ChurnRefreshes`]).
    pub refreshes: u64,
}

impl WindowDelta {
    /// Mean tiles re-solved per refresh in the window (0 when idle).
    pub fn tiles_per_refresh(&self) -> f64 {
        if self.refreshes == 0 {
            0.0
        } else {
            self.tiles_resolved as f64 / self.refreshes as f64
        }
    }

    /// One self-describing JSON line (no trailing newline), interleavable
    /// with snapshot and trace lines.
    pub fn to_json_line(&self) -> String {
        format!(
            concat!(
                "{{\"kind\":\"obs_window\",\"seq\":{},\"dt_s\":{:.6},",
                "\"requests\":{},\"req_per_s\":{:.1},\"p50_ns\":{},\"p99_ns\":{},",
                "\"samples\":{},\"gateway_flips\":{},\"flips_per_s\":{:.1},",
                "\"tiles_resolved\":{},\"refreshes\":{}}}"
            ),
            self.seq,
            self.dt_s,
            self.requests,
            self.req_per_s,
            self.p50_ns,
            self.p99_ns,
            self.samples,
            self.gateway_flips,
            self.flips_per_s,
            self.tiles_resolved,
            self.refreshes,
        )
    }
}

/// Counters a tracker diffs, in `last_counters` order.
const TRACKED: [Counter; 4] = [
    Counter::ServeRequests,
    Counter::ChurnGatewayFlips,
    Counter::ChurnTilesResolved,
    Counter::ChurnRefreshes,
];

/// Produces [`WindowDelta`]s against a chosen latency phase and keeps the
/// last [`WINDOW_CAP`] of them.
#[derive(Debug, Clone)]
pub struct SeriesTracker {
    phase: Phase,
    seq: u64,
    last: Instant,
    last_counters: [u64; TRACKED.len()],
    last_hist: [u64; NUM_BUCKETS],
    windows: VecDeque<WindowDelta>,
}

impl SeriesTracker {
    /// A tracker whose percentiles follow `phase`'s histogram
    /// (e.g. [`Phase::ServeCompute`] for request latency,
    /// [`Phase::ChurnRefresh`] for refresh latency). Baselines are
    /// snapshotted now; the first `tick` therefore covers activity since
    /// construction.
    pub fn new(phase: Phase) -> Self {
        let mut t = Self {
            phase,
            seq: 0,
            last: Instant::now(),
            last_counters: [0; TRACKED.len()],
            last_hist: [0; NUM_BUCKETS],
            windows: VecDeque::with_capacity(WINDOW_CAP),
        };
        t.rebaseline();
        t
    }

    fn rebaseline(&mut self) {
        self.last = Instant::now();
        for (slot, &c) in self.last_counters.iter_mut().zip(&TRACKED) {
            *slot = counter_value(c);
        }
        self.last_hist = hist_of(self.phase);
    }

    /// Closes the current window: computes deltas since the previous
    /// tick, pushes the window into the ring, and rebaselines.
    pub fn tick(&mut self) -> WindowDelta {
        let dt_s = self.last.elapsed().as_secs_f64().max(1e-9);
        let mut deltas = [0u64; TRACKED.len()];
        for ((d, last), &c) in deltas.iter_mut().zip(&self.last_counters).zip(&TRACKED) {
            *d = counter_value(c).saturating_sub(*last);
        }
        let hist = hist_of(self.phase);
        let mut delta_hist = [0u64; NUM_BUCKETS];
        for i in 0..NUM_BUCKETS {
            delta_hist[i] = hist[i].saturating_sub(self.last_hist[i]);
        }
        let samples: u64 = delta_hist.iter().sum();
        let w = WindowDelta {
            seq: self.seq,
            dt_s,
            requests: deltas[0],
            req_per_s: deltas[0] as f64 / dt_s,
            p50_ns: percentile_ns(&delta_hist, samples, 0.50),
            p99_ns: percentile_ns(&delta_hist, samples, 0.99),
            samples,
            gateway_flips: deltas[1],
            flips_per_s: deltas[1] as f64 / dt_s,
            tiles_resolved: deltas[2],
            refreshes: deltas[3],
        };
        self.seq += 1;
        if self.windows.len() == WINDOW_CAP {
            self.windows.pop_front();
        }
        self.windows.push_back(w);
        self.rebaseline();
        w
    }

    /// The retained windows, oldest first.
    pub fn windows(&self) -> impl Iterator<Item = &WindowDelta> {
        self.windows.iter()
    }

    /// The most recently closed window.
    pub fn latest(&self) -> Option<&WindowDelta> {
        self.windows.back()
    }
}

fn hist_of(phase: Phase) -> [u64; NUM_BUCKETS] {
    #[cfg_attr(not(feature = "enabled"), allow(unused_mut))]
    let mut out = [0u64; NUM_BUCKETS];
    #[cfg(feature = "enabled")]
    {
        let (_, _, buckets) = crate::recorder::phase_raw(phase as usize);
        for (slot, b) in out.iter_mut().zip(buckets) {
            *slot = b;
        }
    }
    #[cfg(not(feature = "enabled"))]
    let _ = phase;
    out
}

/// The `q`-quantile of a bucketed delta histogram, reported as the
/// matched bucket's upper bound in nanoseconds (the overflow bucket
/// reports the last finite bound). 0 for an empty histogram.
fn percentile_ns(delta_hist: &[u64; NUM_BUCKETS], samples: u64, q: f64) -> u64 {
    if samples == 0 {
        return 0;
    }
    let rank = ((samples as f64 * q).ceil() as u64).clamp(1, samples);
    let mut seen = 0u64;
    for (i, &b) in delta_hist.iter().enumerate() {
        seen += b;
        if seen >= rank {
            return bucket_bound_ns(i).unwrap_or(128u64 << (NUM_BUCKETS - 2));
        }
    }
    128u64 << (NUM_BUCKETS - 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_window_is_all_zero() {
        let mut t = SeriesTracker::new(Phase::ServeCompute);
        // No activity attributed because deltas are against the baseline
        // taken at construction — this window may still race other tests'
        // recordings, so only the structural facts are asserted.
        let w = t.tick();
        assert_eq!(w.seq, 0);
        assert!(w.dt_s > 0.0);
        assert_eq!(t.windows().count(), 1);
        assert_eq!(t.latest().unwrap().seq, 0);
    }

    #[test]
    fn percentiles_come_from_the_delta_histogram() {
        let mut h = [0u64; NUM_BUCKETS];
        h[0] = 50; // < 128 ns
        h[3] = 49; // < 1024 ns
        h[10] = 1; // < 131072 ns
        let total: u64 = h.iter().sum();
        assert_eq!(percentile_ns(&h, total, 0.50), 128);
        assert_eq!(percentile_ns(&h, total, 0.99), 1024);
        assert_eq!(percentile_ns(&h, total, 1.0), 131_072);
        assert_eq!(percentile_ns(&h, 0, 0.5), 0);
        // Overflow bucket reports the last finite bound.
        let mut o = [0u64; NUM_BUCKETS];
        o[NUM_BUCKETS - 1] = 1;
        assert_eq!(percentile_ns(&o, 1, 0.5), 128u64 << (NUM_BUCKETS - 2));
    }

    #[test]
    fn ring_caps_at_window_cap() {
        let mut t = SeriesTracker::new(Phase::Marking);
        for _ in 0..(WINDOW_CAP + 5) {
            t.tick();
        }
        assert_eq!(t.windows().count(), WINDOW_CAP);
        assert_eq!(t.latest().unwrap().seq, (WINDOW_CAP + 5 - 1) as u64);
        // Oldest retained window is seq 5.
        assert_eq!(t.windows().next().unwrap().seq, 5);
    }

    #[test]
    fn window_json_line_shape() {
        let w = WindowDelta {
            seq: 2,
            dt_s: 1.0,
            requests: 10,
            req_per_s: 10.0,
            p50_ns: 256,
            p99_ns: 1024,
            samples: 10,
            gateway_flips: 4,
            flips_per_s: 4.0,
            tiles_resolved: 8,
            refreshes: 4,
        };
        let line = w.to_json_line();
        assert!(line.starts_with("{\"kind\":\"obs_window\""));
        for key in ["\"requests\":10", "\"p99_ns\":1024", "\"refreshes\":4"] {
            assert!(line.contains(key), "missing {key} in {line}");
        }
        assert_eq!(w.tiles_per_refresh(), 2.0);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn deltas_track_counter_movement() {
        // Counter movement is delta'd even under concurrent tests: record
        // a known amount and assert the window saw at least that much.
        let mut t = SeriesTracker::new(Phase::ChurnRefresh);
        crate::add(Counter::ChurnGatewayFlips, 7);
        crate::add(Counter::ChurnTilesResolved, 3);
        crate::add(Counter::ChurnRefreshes, 1);
        crate::recorder::record_phase_ns(Phase::ChurnRefresh, 200);
        let w = t.tick();
        assert!(w.gateway_flips >= 7);
        assert!(w.tiles_resolved >= 3);
        assert!(w.refreshes >= 1);
        assert!(w.samples >= 1);
        assert!(w.p50_ns >= 256);
    }
}
