//! Sampled request tracing: trace ids, causally-linked span records, and a
//! fixed-capacity global span ring.
//!
//! A **trace** is one logical request (a serve frame, a churn refresh, a
//! sim interval); a **span** is one timed region attributed to that trace
//! (cache lookup, per-tile solve, merge, ...). Trace ids are handed out by
//! [`next_trace_id`] under a sampling rate set with [`set_sampling`]
//! (every Nth candidate is traced; `0` disables tracing entirely, which is
//! also the default). Unsampled traces carry [`TraceId::NONE`] and every
//! span operation on them is a no-op that never reads the clock.
//!
//! Recording is **zero-allocation**: span records land in a static ring of
//! atomics ([`SPAN_RING_CAP`] slots) via a `fetch_add` cursor; when the
//! ring wraps, the oldest records are overwritten and counted under
//! [`Counter::TraceSpansDropped`]. The ring is diagnostics, not
//! accounting: a drain that races a writer may observe a record mid-write,
//! which at worst misfiles one span — it can never corrupt memory or
//! block the data path.
//!
//! Without the `trace` feature every entry point compiles to a no-op
//! (`SpanGuard` is zero-sized and `Instant`-free), mirroring the
//! `enabled` feature's contract for counters. `trace` implies `enabled`.

#[cfg(feature = "trace")]
use crate::recorder::{add, Counter};
use serde::{Deserialize, Serialize};
#[cfg(feature = "trace")]
use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(feature = "trace")]
use std::time::Instant;

/// Span ring capacity (records). Power of two so the wrap is a mask.
pub const SPAN_RING_CAP: usize = 4096;

/// Whether the tracing runtime is compiled in. `const`, so disabled
/// builds fold every `if pacds_obs::trace_enabled()` block away.
#[inline(always)]
pub const fn trace_enabled() -> bool {
    cfg!(feature = "trace")
}

/// A sampled trace identity. `0` means "not sampled": spans attributed to
/// it are never recorded. Copy/`u64` so it crosses thread and FFI
/// boundaries for free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct TraceId(pub u64);

impl TraceId {
    /// The unsampled id: all span operations on it are no-ops.
    pub const NONE: TraceId = TraceId(0);

    /// Whether spans against this id will be recorded.
    #[inline(always)]
    pub fn is_sampled(self) -> bool {
        trace_enabled() && self.0 != 0
    }
}

/// What a span measured. The discriminant is stored in the ring, the
/// label is the JSONL spelling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[repr(u8)]
pub enum SpanKind {
    /// One serve request end-to-end (detail: request kind byte).
    Request = 0,
    /// Result-cache lookup (detail: 1 = hit, 0 = miss).
    CacheLookup = 1,
    /// Whole-graph or sharded CDS computation (detail: node count, capped).
    Compute = 2,
    /// Sharded dispatch: partition + fan-out over the worker pool
    /// (detail: tile count).
    ShardDispatch = 3,
    /// One tile's halo build + solve on a pool worker (detail: tile id).
    TileSolve = 4,
    /// Ownership-filtered merge of tile verdicts (detail: node count,
    /// capped).
    ShardMerge = 5,
    /// One churn-engine refresh (detail: tiles re-solved).
    ChurnRefresh = 6,
    /// One dirty tile's re-solve inside a churn refresh (detail: tile id).
    ChurnTile = 7,
    /// One simulator update interval (detail: interval index).
    SimInterval = 8,
    /// One dataplane pump sweep over the node graph (detail: packets
    /// admitted this sweep, capped).
    DpPump = 9,
}

/// Number of span kinds (labels table length).
pub const NUM_SPAN_KINDS: usize = 10;

/// JSONL labels, indexed by discriminant.
pub const SPAN_KIND_NAMES: [&str; NUM_SPAN_KINDS] = [
    "serve.request",
    "serve.cache_lookup",
    "serve.compute",
    "shard.dispatch",
    "shard.tile_solve",
    "shard.merge",
    "churn.refresh",
    "churn.tile",
    "sim.interval",
    "dp.pump",
];

impl SpanKind {
    /// The JSONL spelling.
    pub fn label(self) -> &'static str {
        SPAN_KIND_NAMES[self as usize]
    }
}

/// One drained span record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// The owning trace.
    pub trace: u64,
    /// What was measured (JSONL label of [`SpanKind`]).
    pub span: String,
    /// Kind-specific detail (tile id, request kind, hit/miss, ...).
    pub detail: u32,
    /// Recording thread's obs slot (same identities as
    /// `par_thread_work`).
    pub thread: u32,
    /// Start, nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

#[cfg(feature = "trace")]
mod ring {
    use super::*;

    /// Sampling rate: every Nth candidate trace is sampled; 0 = off.
    pub static SAMPLE_EVERY: AtomicU64 = AtomicU64::new(0);
    /// Monotone candidate counter (sampled ids are derived from it).
    pub static TRACE_SEQ: AtomicU64 = AtomicU64::new(0);
    /// Next ring slot (monotone; slot = cursor & (CAP - 1)).
    pub static CURSOR: AtomicU64 = AtomicU64::new(0);

    /// The ring: 4 words per record — trace id, packed
    /// `kind | detail << 8 | thread << 40`, start_ns, dur_ns.
    pub static TRACE_W: [AtomicU64; SPAN_RING_CAP] =
        [const { AtomicU64::new(0) }; SPAN_RING_CAP];
    pub static META_W: [AtomicU64; SPAN_RING_CAP] =
        [const { AtomicU64::new(0) }; SPAN_RING_CAP];
    pub static START_W: [AtomicU64; SPAN_RING_CAP] =
        [const { AtomicU64::new(0) }; SPAN_RING_CAP];
    pub static DUR_W: [AtomicU64; SPAN_RING_CAP] =
        [const { AtomicU64::new(0) }; SPAN_RING_CAP];

    /// Process-wide monotonic epoch all span timestamps are relative to.
    pub fn epoch() -> Instant {
        static EPOCH: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();
        *EPOCH.get_or_init(Instant::now)
    }
}

/// Sets the sampling rate: every `every`-th [`next_trace_id`] call hands
/// out a sampled id; `0` disables tracing. No-op without the `trace`
/// feature.
#[inline]
pub fn set_sampling(every: u64) {
    #[cfg(feature = "trace")]
    ring::SAMPLE_EVERY.store(every, Ordering::Relaxed);
    #[cfg(not(feature = "trace"))]
    let _ = every;
}

/// The current sampling rate (0 when disabled or compiled out).
#[inline]
pub fn sampling() -> u64 {
    #[cfg(feature = "trace")]
    return ring::SAMPLE_EVERY.load(Ordering::Relaxed);
    #[cfg(not(feature = "trace"))]
    0
}

/// Hands out the next trace id under the configured sampling rate.
/// Returns [`TraceId::NONE`] (making every downstream span a no-op) for
/// unsampled candidates, when sampling is 0, and in non-`trace` builds.
#[inline]
pub fn next_trace_id() -> TraceId {
    #[cfg(feature = "trace")]
    {
        let every = ring::SAMPLE_EVERY.load(Ordering::Relaxed);
        if every == 0 {
            return TraceId::NONE;
        }
        let seq = ring::TRACE_SEQ.fetch_add(1, Ordering::Relaxed);
        if seq.is_multiple_of(every) {
            TraceId(seq + 1) // ids are 1-based so 0 stays "unsampled"
        } else {
            TraceId::NONE
        }
    }
    #[cfg(not(feature = "trace"))]
    TraceId::NONE
}

/// Records one finished span. Prefer [`span`] (scope guard) — this is the
/// raw entry point for callers that already measured.
#[inline]
pub fn record_span(trace: TraceId, kind: SpanKind, detail: u32, start_ns: u64, dur_ns: u64) {
    #[cfg(feature = "trace")]
    {
        if trace.0 == 0 {
            return;
        }
        let thread = crate::recorder::par_slot() as u64;
        let at = ring::CURSOR.fetch_add(1, Ordering::Relaxed);
        let slot = (at as usize) & (SPAN_RING_CAP - 1);
        if at >= SPAN_RING_CAP as u64 {
            add(Counter::TraceSpansDropped, 1);
        }
        // Not atomic as a record: a concurrent drain may see a torn
        // record (diagnostics-grade; see the module docs).
        ring::TRACE_W[slot].store(trace.0, Ordering::Relaxed);
        ring::META_W[slot].store(
            kind as u64 | (u64::from(detail) << 8) | (thread.min(255) << 40),
            Ordering::Relaxed,
        );
        ring::START_W[slot].store(start_ns, Ordering::Relaxed);
        ring::DUR_W[slot].store(dur_ns, Ordering::Relaxed);
        add(Counter::TraceSpans, 1);
    }
    #[cfg(not(feature = "trace"))]
    let _ = (trace, kind, detail, start_ns, dur_ns);
}

/// Scope guard started by [`span`]: records on drop. Zero-sized (and
/// clock-free) when the `trace` feature is off or the trace is unsampled.
#[must_use = "the span records on drop; binding it to _ drops immediately"]
pub struct SpanGuard {
    #[cfg(feature = "trace")]
    inner: Option<(TraceId, SpanKind, u32, Instant)>,
}

/// Starts a span under `trace`; the guard records on drop. For
/// [`TraceId::NONE`] this neither reads the clock nor touches the ring.
#[inline(always)]
pub fn span(trace: TraceId, kind: SpanKind, detail: u32) -> SpanGuard {
    #[cfg(feature = "trace")]
    return SpanGuard {
        inner: (trace.0 != 0).then(|| (trace, kind, detail, Instant::now())),
    };
    #[cfg(not(feature = "trace"))]
    {
        let _ = (trace, kind, detail);
        SpanGuard {}
    }
}

impl Drop for SpanGuard {
    #[inline]
    fn drop(&mut self) {
        #[cfg(feature = "trace")]
        if let Some((trace, kind, detail, start)) = self.inner.take() {
            let start_ns = start.duration_since(ring::epoch()).as_nanos() as u64;
            let dur_ns = start.elapsed().as_nanos() as u64;
            record_span(trace, kind, detail, start_ns, dur_ns);
        }
    }
}

/// Drains the ring: every live record, ordered by `(trace, start_ns)`.
/// The ring is cleared; concurrent writers may land records that the next
/// drain picks up. Empty in non-`trace` builds.
pub fn take_spans() -> Vec<SpanRecord> {
    #[cfg(feature = "trace")]
    {
        let mut out = Vec::new();
        for slot in 0..SPAN_RING_CAP {
            let trace = ring::TRACE_W[slot].swap(0, Ordering::Relaxed);
            if trace == 0 {
                continue;
            }
            let meta = ring::META_W[slot].load(Ordering::Relaxed);
            let kind = (meta & 0xff) as usize;
            if kind >= NUM_SPAN_KINDS {
                continue; // torn record
            }
            out.push(SpanRecord {
                trace,
                span: SPAN_KIND_NAMES[kind].to_string(),
                detail: ((meta >> 8) & 0xffff_ffff) as u32,
                thread: ((meta >> 40) & 0xff) as u32,
                start_ns: ring::START_W[slot].load(Ordering::Relaxed),
                dur_ns: ring::DUR_W[slot].load(Ordering::Relaxed),
            });
        }
        out.sort_by_key(|s| (s.trace, s.start_ns));
        out
    }
    #[cfg(not(feature = "trace"))]
    Vec::new()
}

/// Drains the ring and renders one JSON line **per trace**:
/// `{"kind":"trace","trace":N,"spans":[...]}` with spans in start order —
/// one line reconstructs where that request spent its time. Empty string
/// when nothing was recorded.
pub fn traces_jsonl() -> String {
    let spans = take_spans();
    let mut out = String::new();
    let mut i = 0;
    while i < spans.len() {
        let trace = spans[i].trace;
        let mut j = i;
        while j < spans.len() && spans[j].trace == trace {
            j += 1;
        }
        out.push_str(&format!("{{\"kind\":\"trace\",\"trace\":{trace},\"spans\":["));
        for (k, s) in spans[i..j].iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"span\":\"{}\",\"detail\":{},\"thread\":{},\"start_ns\":{},\"dur_ns\":{}}}",
                s.span, s.detail, s.thread, s.start_ns, s.dur_ns
            ));
        }
        out.push_str("]}\n");
        i = j;
    }
    out
}

/// Clears the ring, the candidate counter, and the sampling rate (back to
/// off). Called by [`crate::reset`].
pub fn reset_tracing() {
    #[cfg(feature = "trace")]
    {
        ring::SAMPLE_EVERY.store(0, Ordering::Relaxed);
        ring::TRACE_SEQ.store(0, Ordering::Relaxed);
        ring::CURSOR.store(0, Ordering::Relaxed);
        for slot in 0..SPAN_RING_CAP {
            ring::TRACE_W[slot].store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(all(test, feature = "trace"))]
mod tests {
    use super::*;

    /// The ring is global; tests must not interleave (same discipline as
    /// the recorder tests).
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn sampling_gates_trace_ids() {
        let _g = serial();
        reset_tracing();
        assert_eq!(next_trace_id(), TraceId::NONE);
        set_sampling(1);
        let a = next_trace_id();
        let b = next_trace_id();
        assert!(a.is_sampled() && b.is_sampled() && a != b);
        set_sampling(1000);
        // Candidate counter continues: at most one of the next few samples.
        let sampled = (0..10).filter(|_| next_trace_id().is_sampled()).count();
        assert!(sampled <= 1);
        reset_tracing();
    }

    #[test]
    fn spans_record_and_drain_grouped() {
        let _g = serial();
        reset_tracing();
        set_sampling(1);
        let t1 = next_trace_id();
        let t2 = next_trace_id();
        {
            let _a = span(t1, SpanKind::Request, 1);
            let _b = span(t1, SpanKind::CacheLookup, 0);
            std::thread::sleep(std::time::Duration::from_micros(50));
        }
        record_span(t2, SpanKind::ChurnTile, 7, 100, 40);
        let spans = take_spans();
        assert_eq!(spans.len(), 3);
        assert!(spans.iter().all(|s| s.trace == t1.0 || s.trace == t2.0));
        let req = spans.iter().find(|s| s.span == "serve.request").unwrap();
        assert!(req.dur_ns >= 50_000);
        // Ring cleared by the drain.
        assert!(take_spans().is_empty());
        reset_tracing();
    }

    #[test]
    fn unsampled_spans_are_noops() {
        let _g = serial();
        reset_tracing();
        set_sampling(1);
        {
            let _s = span(TraceId::NONE, SpanKind::Compute, 9);
        }
        record_span(TraceId::NONE, SpanKind::Compute, 9, 0, 1);
        assert!(take_spans().is_empty());
        reset_tracing();
    }

    #[test]
    fn ring_wrap_overwrites_and_counts_drops() {
        let _g = serial();
        crate::reset();
        set_sampling(1);
        let t = next_trace_id();
        for i in 0..(SPAN_RING_CAP as u32 + 10) {
            record_span(t, SpanKind::TileSolve, i, u64::from(i), 1);
        }
        assert!(crate::counter_value(Counter::TraceSpansDropped) >= 10);
        let spans = take_spans();
        assert_eq!(spans.len(), SPAN_RING_CAP);
        // The oldest 10 records were overwritten.
        assert!(spans.iter().all(|s| s.detail >= 10));
        crate::reset();
    }

    #[test]
    fn traces_jsonl_one_line_per_trace() {
        let _g = serial();
        reset_tracing();
        set_sampling(1);
        let t1 = next_trace_id();
        let t2 = next_trace_id();
        record_span(t1, SpanKind::Request, 1, 10, 500);
        record_span(t1, SpanKind::Compute, 0, 20, 400);
        record_span(t2, SpanKind::ChurnRefresh, 3, 30, 100);
        let text = traces_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"kind\":\"trace\""));
        assert!(lines[0].contains("\"serve.request\""));
        assert!(lines[0].contains("\"serve.compute\""));
        assert!(lines[1].contains("\"churn.refresh\""));
        reset_tracing();
    }
}
