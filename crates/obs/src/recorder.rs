//! The recording runtime: static atomic counters, phase timers, and
//! fixed-bucket histograms.
//!
//! Storage is `static` arrays of [`AtomicU64`] indexed by the [`Counter`]
//! and [`Phase`] enums — no registration step, no locks, no heap. All
//! updates use `Ordering::Relaxed`: metrics are monotone sums, so no
//! cross-counter consistency is needed, and a snapshot taken while work is
//! in flight is simply a valid earlier state of each counter.
//!
//! When the `enabled` feature is off, the storage does not exist and every
//! function in this module is an empty `#[inline(always)]` stub.

#[cfg(feature = "enabled")]
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
#[cfg(feature = "enabled")]
use std::time::Instant;

macro_rules! metric_enum {
    ($(#[$doc:meta])* $vis:vis enum $name:ident / $names:ident / $count:ident {
        $($(#[$vdoc:meta])* $variant:ident => $label:literal,)*
    }) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        #[repr(usize)]
        $vis enum $name {
            $($(#[$vdoc])* $variant,)*
        }

        /// Exported label of each variant, indexed by discriminant.
        $vis const $names: &[&str] = &[$($label),*];

        /// Number of variants.
        $vis const $count: usize = $names.len();

        impl $name {
            /// The export label (stable across builds; used by the
            /// JSONL/Prometheus exporters and the CLI report).
            #[inline]
            pub fn label(self) -> &'static str {
                $names[self as usize]
            }
        }
    };
}

metric_enum! {
    /// Monotone event counters.
    ///
    /// Grouped by subsystem; the labels are the wire names. Rule-pass
    /// counters follow the pre-filter cascade of `pacds-core::rules`: a
    /// candidate is *examined*, may be *rejected by the pre-filter*
    /// (degree/marker/priority gate), then *witness-probed* (single-bit
    /// test), and only survivors reach the full *subset scan*.
    pub enum Counter / COUNTER_NAMES / NUM_COUNTERS {
        /// Vertices scanned by the marking process.
        MarkingScanned => "marking.vertices_scanned",
        /// Vertices the marking process marked.
        MarkingMarked => "marking.marked",
        /// Rule 1: neighbour candidates examined for coverage.
        Rule1Candidates => "rule1.candidates",
        /// Rule 1: candidates rejected by the degree/marker/priority gate.
        Rule1PrefilterRejects => "rule1.prefilter_rejects",
        /// Rule 1: witness bit probes performed.
        Rule1WitnessProbes => "rule1.witness_probes",
        /// Rule 1: candidates rejected by the witness probe.
        Rule1WitnessRejects => "rule1.witness_rejects",
        /// Rule 1: full closed-neighbourhood subset scans.
        Rule1SubsetScans => "rule1.subset_scans",
        /// Rule 1: vertices unmarked.
        Rule1Unmarked => "rule1.unmarked",
        /// Rule 2: marked vertices with enough candidates to form a pair.
        Rule2Vertices => "rule2.vertices",
        /// Rule 2: candidate neighbours collected across those vertices.
        Rule2Candidates => "rule2.candidates",
        /// Rule 2: candidate pairs probed.
        Rule2PairsProbed => "rule2.pairs_probed",
        /// Rule 2: pairs rejected by the residual-witness probe.
        Rule2WitnessRejects => "rule2.witness_rejects",
        /// Rule 2: full pair-coverage word scans.
        Rule2CoverageScans => "rule2.coverage_scans",
        /// Rule 2: vertices unmarked.
        Rule2Unmarked => "rule2.unmarked",
        /// Full CDS computations through a workspace.
        WorkspaceComputes => "workspace.computes",
        /// Neighbour-bitmap rebuilds.
        WorkspaceBitmapRebuilds => "workspace.bitmap_rebuilds",
        /// Priority-key rebuilds.
        WorkspaceKeyRebuilds => "workspace.key_rebuilds",
        /// (Rule 1; Rule 2) rounds executed, summed over computations.
        WorkspaceRounds => "workspace.rounds",
        /// CDS verifications performed.
        VerifyRuns => "verify.runs",
        /// CDS verifications that reported a violation.
        VerifyFailures => "verify.failures",
        /// Simulator update intervals completed.
        SimIntervals => "sim.intervals",
        /// Hosts whose gateway role flipped versus the previous interval.
        SimGatewayChurn => "sim.gateway_churn",
        /// Host deaths observed by the simulator.
        SimDeaths => "sim.deaths",
        /// Topology (CSR) rebuilds in the simulator.
        SimTopologyRebuilds => "sim.topology_rebuilds",
        /// Distributed protocol: hello messages sent.
        DistHelloMessages => "dist.hello_messages",
        /// Distributed protocol: marker messages sent.
        DistMarkerMessages => "dist.marker_messages",
        /// Distributed protocol executions.
        DistRuns => "dist.runs",
        /// Vertices processed by data-parallel sweeps (all threads).
        ParVertices => "par.vertices",
        /// Serve: requests fully read and dispatched to a handler.
        ServeRequests => "serve.requests",
        /// Serve: result-cache hits.
        ServeCacheHits => "serve.cache_hits",
        /// Serve: result-cache misses (request computed fresh).
        ServeCacheMisses => "serve.cache_misses",
        /// Serve: result-cache entries evicted to make room.
        ServeCacheEvictions => "serve.cache_evictions",
        /// Serve: connections rejected by backpressure (queue full).
        ServeRejected => "serve.rejected",
        /// Serve: protocol errors (bad version/kind/frame/body).
        ServeProtocolErrors => "serve.protocol_errors",
        /// Serve: requests that blew their deadline before a reply.
        ServeDeadlineExceeded => "serve.deadline_exceeded",
        /// Shard: full sharded CDS computations.
        ShardComputes => "shard.computes",
        /// Shard: tiles solved, summed over computations.
        ShardTiles => "shard.tiles",
        /// Shard: owned nodes across all tiles (equals n per computation).
        ShardOwnedNodes => "shard.owned_nodes",
        /// Shard: halo (non-owned) nodes replicated into tiles.
        ShardHaloNodes => "shard.halo_nodes",
        /// Shard: undirected edges crossing a tile-ownership boundary.
        ShardCrossTileEdges => "shard.cross_tile_edges",
        /// Shard: tiles a worker took from another worker's queue.
        ShardTilesStolen => "shard.tiles_stolen",
        /// Shard: nanoseconds workers spent solving tiles (summed CPU
        /// time across workers, not wall time).
        ShardBusyNs => "shard.busy_ns",
        /// Churn engine: refreshes run.
        ChurnRefreshes => "churn.refreshes",
        /// Churn engine: tiles re-solved across refreshes.
        ChurnTilesResolved => "churn.tiles_resolved",
        /// Churn engine: gateway verdict flips across refreshes.
        ChurnGatewayFlips => "churn.gateway_flips",
        /// Serve: push frames delivered to subscribers.
        ServePushFrames => "serve.push_frames",
        /// Serve: push frames dropped because a subscriber queue was full.
        ServePushDropped => "serve.push_dropped",
        /// Serve: subscribers disconnected for lagging behind the stream.
        ServeSubscribersLagged => "serve.subscribers_lagged",
        /// Trace: spans recorded into the span ring.
        TraceSpans => "trace.spans",
        /// Trace: ring slots overwritten before being drained.
        TraceSpansDropped => "trace.spans_dropped",
        /// Dataplane: packets admitted at the ingress node.
        DpPackets => "dp.packets",
        /// Dataplane: per-hop forward operations (aggregate transmissions
        /// across all relay nodes — the "packets/sec forwarded" number).
        DpForwarded => "dp.forwarded",
        /// Dataplane: packets delivered at the egress node.
        DpDelivered => "dp.delivered",
        /// Dataplane: packets terminally dropped (unroutable).
        DpDropped => "dp.dropped",
        /// Dataplane: packets NACKed on a stale route (dead next hop).
        DpNacks => "dp.nacks",
        /// Dataplane: NACKed packets re-injected after a table rebuild.
        DpRetransmits => "dp.retransmits",
        /// Dataplane: source routes assembled (backbone lookups).
        DpRouteBuilds => "dp.route_builds",
        /// Dataplane: flood transmissions (blind + gateway relays).
        DpFloodTransmissions => "dp.flood_transmissions",
        /// Dataplane: duplicate flood receptions suppressed.
        DpFloodDuplicates => "dp.flood_duplicates",
        /// Dataplane: packets forwarded into a dead node. The NACK path
        /// makes this structurally impossible; benches assert it stays 0.
        DpMisroutes => "dp.misroutes",
        /// Cluster: requests routed to a backend by the coordinator.
        ClusterRouted => "cluster.routed",
        /// Cluster: requests that failed over to another backend after the
        /// ring owner died under them.
        ClusterFailedOver => "cluster.failed_over",
        /// Cluster: requests rejected because no healthy backend remained.
        ClusterNoBackend => "cluster.no_backend",
        /// Cluster: backend health transitions (up→down and down→up).
        ClusterHealthFlips => "cluster.health_flips",
        /// Cluster: push frames relayed to subscribed clients.
        ClusterPushRelayed => "cluster.push_relayed",
    }
}

metric_enum! {
    /// Timed phases. Each records a call count, a total, and a
    /// power-of-two latency histogram.
    pub enum Phase / PHASE_NAMES / NUM_PHASES {
        /// The marking scan.
        Marking => "marking",
        /// Neighbour-bitmap rebuild.
        BitmapRebuild => "bitmap_rebuild",
        /// Priority-key rebuild.
        KeyRebuild => "key_rebuild",
        /// One Rule 1 pass.
        Rule1 => "rule1",
        /// One Rule 2 pass.
        Rule2 => "rule2",
        /// CDS verification.
        Verify => "verify",
        /// Simulator: mobility / placement step.
        SimPlacement => "sim.placement",
        /// Simulator: unit-disk CSR (+ adjacency view) rebuild.
        SimCsrRebuild => "sim.csr_rebuild",
        /// Simulator: full gateway-set computation.
        SimCds => "sim.cds",
        /// Simulator: battery drain + death collection.
        SimDrain => "sim.drain",
        /// Serve: request frame decode + cache keying.
        ServeDecode => "serve.decode",
        /// Serve: CDS computation on a cache miss.
        ServeCompute => "serve.compute",
        /// Serve: response encoding (including cached-bytes copy).
        ServeEncode => "serve.encode",
        /// Shard: tile partition of the point set.
        ShardPartition => "shard.partition",
        /// Shard: halo gathering + per-tile subgraph extraction.
        ShardHaloBuild => "shard.halo_build",
        /// Shard: per-tile marking + rule passes (summed across workers).
        ShardSolve => "shard.solve",
        /// Shard: ownership-filtered merge into the output masks.
        ShardMerge => "shard.merge",
        /// Churn engine: one incremental refresh (dirty-tile re-solve).
        ChurnRefresh => "churn.refresh",
        /// Dataplane: one pump sweep over the node graph.
        DpPump => "dp.pump",
        /// Dataplane: backbone route-table (re)build + source-route
        /// assembly.
        DpRouteBuild => "dp.route_build",
        /// Dataplane: one broadcast flood.
        DpFlood => "dp.flood",
        /// Cluster: request classification + ring lookup.
        ClusterRoute => "cluster.route",
        /// Cluster: backend round trip (forward request, await response).
        ClusterRelay => "cluster.relay",
    }
}

/// Histogram bucket count. Bucket `i < NUM_BUCKETS - 1` holds samples with
/// `elapsed_ns < 128 << i` (128 ns … ~8.6 s); the last bucket is overflow.
pub const NUM_BUCKETS: usize = 27;

/// Upper bound (exclusive, in ns) of bucket `i`; `None` for the overflow
/// bucket.
pub fn bucket_bound_ns(i: usize) -> Option<u64> {
    (i + 1 < NUM_BUCKETS).then(|| 128u64 << i)
}

/// Maximum number of per-thread slots tracked for parallel work counts.
/// Threads beyond this many share the last slots (sums stay exact).
pub const NUM_PAR_SLOTS: usize = 64;

/// Whether the recording runtime is compiled in. `const`, so
/// `if pacds_obs::enabled() { ... }` blocks vanish from disabled builds.
#[inline(always)]
pub const fn enabled() -> bool {
    cfg!(feature = "enabled")
}

#[cfg(feature = "enabled")]
mod storage {
    use super::*;

    pub static COUNTERS: [AtomicU64; NUM_COUNTERS] =
        [const { AtomicU64::new(0) }; NUM_COUNTERS];
    pub static PHASE_COUNT: [AtomicU64; NUM_PHASES] =
        [const { AtomicU64::new(0) }; NUM_PHASES];
    pub static PHASE_TOTAL_NS: [AtomicU64; NUM_PHASES] =
        [const { AtomicU64::new(0) }; NUM_PHASES];
    #[allow(clippy::declare_interior_mutable_const)]
    pub static PHASE_HIST: [[AtomicU64; NUM_BUCKETS]; NUM_PHASES] =
        [const { [const { AtomicU64::new(0) }; NUM_BUCKETS] }; NUM_PHASES];
    pub static PAR_WORK: [AtomicU64; NUM_PAR_SLOTS] =
        [const { AtomicU64::new(0) }; NUM_PAR_SLOTS];
    pub static SHARD_TILES: [AtomicU64; NUM_PAR_SLOTS] =
        [const { AtomicU64::new(0) }; NUM_PAR_SLOTS];

    /// Monotone id source for per-thread parallel-work slots.
    pub static NEXT_SLOT: AtomicUsize = AtomicUsize::new(0);

    thread_local! {
        /// This thread's slot in [`PAR_WORK`], assigned on first use.
        /// Rayon pool threads live for the process, so each worker keeps
        /// one slot and the table reads as per-thread totals.
        pub static PAR_SLOT: usize = NEXT_SLOT
            .fetch_add(1, Ordering::Relaxed)
            .min(NUM_PAR_SLOTS - 1);
    }
}

/// Adds `n` to `counter`.
#[inline(always)]
pub fn add(counter: Counter, n: u64) {
    #[cfg(feature = "enabled")]
    storage::COUNTERS[counter as usize].fetch_add(n, Ordering::Relaxed);
    #[cfg(not(feature = "enabled"))]
    let _ = (counter, n);
}

/// Reads a counter's current value (always 0 when disabled).
#[inline]
pub fn counter_value(counter: Counter) -> u64 {
    #[cfg(feature = "enabled")]
    return storage::COUNTERS[counter as usize].load(Ordering::Relaxed);
    #[cfg(not(feature = "enabled"))]
    {
        let _ = counter;
        0
    }
}

/// Records one sample of `ns` nanoseconds under `phase`.
#[inline]
pub fn record_phase_ns(phase: Phase, ns: u64) {
    #[cfg(feature = "enabled")]
    {
        let i = phase as usize;
        storage::PHASE_COUNT[i].fetch_add(1, Ordering::Relaxed);
        storage::PHASE_TOTAL_NS[i].fetch_add(ns, Ordering::Relaxed);
        let mut b = 0usize;
        while b + 1 < NUM_BUCKETS && ns >= (128u64 << b) {
            b += 1;
        }
        storage::PHASE_HIST[i][b].fetch_add(1, Ordering::Relaxed);
    }
    #[cfg(not(feature = "enabled"))]
    let _ = (phase, ns);
}

/// Adds `n` vertices of data-parallel work to the calling thread's slot
/// (and to [`Counter::ParVertices`]).
#[inline]
pub fn par_tick(n: u64) {
    #[cfg(feature = "enabled")]
    {
        add(Counter::ParVertices, n);
        storage::PAR_SLOT.with(|&slot| {
            storage::PAR_WORK[slot].fetch_add(n, Ordering::Relaxed);
        });
    }
    #[cfg(not(feature = "enabled"))]
    let _ = n;
}

/// Per-thread parallel work totals (empty when disabled). Slots are
/// assigned in first-use order and trailing zero slots are trimmed.
pub fn par_work_per_thread() -> Vec<u64> {
    #[cfg(feature = "enabled")]
    return trimmed(&storage::PAR_WORK);
    #[cfg(not(feature = "enabled"))]
    Vec::new()
}

/// Adds `n` sharded tiles solved to the calling thread's slot (and to
/// [`Counter::ShardTiles`] via the engine's own totals, not here) —
/// the work-distribution evidence CI uses where wall-clock scaling
/// cannot be trusted: on a 2-thread run, two slots must be non-zero.
#[inline]
pub fn shard_thread_tiles_tick(n: u64) {
    #[cfg(feature = "enabled")]
    storage::PAR_SLOT.with(|&slot| {
        storage::SHARD_TILES[slot].fetch_add(n, Ordering::Relaxed);
    });
    #[cfg(not(feature = "enabled"))]
    let _ = n;
}

/// Per-thread sharded-tiles-solved totals (empty when disabled); same
/// slot identities as [`par_work_per_thread`].
pub fn shard_tiles_per_thread() -> Vec<u64> {
    #[cfg(feature = "enabled")]
    return trimmed(&storage::SHARD_TILES);
    #[cfg(not(feature = "enabled"))]
    Vec::new()
}

#[cfg(feature = "enabled")]
fn trimmed(slots: &[AtomicU64; NUM_PAR_SLOTS]) -> Vec<u64> {
    let mut v: Vec<u64> = slots.iter().map(|s| s.load(Ordering::Relaxed)).collect();
    while v.last() == Some(&0) {
        v.pop();
    }
    v
}

/// Scope guard started by [`phase_timer`]: records the elapsed time under
/// its phase when dropped. Zero-sized (and `Instant`-free) when disabled.
#[must_use = "the timer records on drop; binding it to _ drops immediately"]
pub struct PhaseTimer {
    #[cfg(feature = "enabled")]
    inner: Option<(Phase, Instant)>,
}

/// Starts timing `phase`; the returned guard records on drop.
#[inline(always)]
pub fn phase_timer(phase: Phase) -> PhaseTimer {
    #[cfg(feature = "enabled")]
    return PhaseTimer {
        inner: Some((phase, Instant::now())),
    };
    #[cfg(not(feature = "enabled"))]
    {
        let _ = phase;
        PhaseTimer {}
    }
}

impl Drop for PhaseTimer {
    #[inline]
    fn drop(&mut self) {
        #[cfg(feature = "enabled")]
        if let Some((phase, start)) = self.inner.take() {
            record_phase_ns(phase, start.elapsed().as_nanos() as u64);
        }
    }
}

/// A stack-local accumulator for hot loops: bump per element, flush once
/// per pass. A plain `u64` when enabled, a zero-sized no-op when off —
/// either way the inner loop never touches an atomic.
#[derive(Debug, Default, Clone, Copy)]
pub struct Tally {
    #[cfg(feature = "enabled")]
    n: u64,
}

impl Tally {
    /// A zeroed tally.
    #[inline(always)]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline(always)]
    pub fn bump(&mut self) {
        #[cfg(feature = "enabled")]
        {
            self.n += 1;
        }
    }

    /// Adds `n`.
    #[inline(always)]
    pub fn add(&mut self, n: u64) {
        #[cfg(feature = "enabled")]
        {
            self.n += n;
        }
        #[cfg(not(feature = "enabled"))]
        let _ = n;
    }

    /// Current value (always 0 when disabled).
    #[inline(always)]
    pub fn get(&self) -> u64 {
        #[cfg(feature = "enabled")]
        return self.n;
        #[cfg(not(feature = "enabled"))]
        0
    }

    /// Flushes the accumulated value into `counter` and re-zeroes.
    #[inline(always)]
    pub fn flush(&mut self, counter: Counter) {
        #[cfg(feature = "enabled")]
        {
            if self.n > 0 {
                add(counter, self.n);
                self.n = 0;
            }
        }
        #[cfg(not(feature = "enabled"))]
        let _ = counter;
    }
}

/// Zeroes every counter, phase, histogram, and parallel-work slot.
///
/// Thread slots keep their assignment (slots are identities, not data).
pub fn reset() {
    #[cfg(feature = "enabled")]
    {
        for c in &storage::COUNTERS {
            c.store(0, Ordering::Relaxed);
        }
        for p in 0..NUM_PHASES {
            storage::PHASE_COUNT[p].store(0, Ordering::Relaxed);
            storage::PHASE_TOTAL_NS[p].store(0, Ordering::Relaxed);
            for b in &storage::PHASE_HIST[p] {
                b.store(0, Ordering::Relaxed);
            }
        }
        for s in &storage::PAR_WORK {
            s.store(0, Ordering::Relaxed);
        }
        for s in &storage::SHARD_TILES {
            s.store(0, Ordering::Relaxed);
        }
    }
    crate::trace::reset_tracing();
}

/// The calling thread's parallel-work slot id (shared with the trace
/// ring's `thread` field).
#[cfg(feature = "enabled")]
#[cfg_attr(not(feature = "trace"), allow(dead_code))]
pub(crate) fn par_slot() -> usize {
    storage::PAR_SLOT.with(|&slot| slot)
}

#[cfg(feature = "enabled")]
pub(crate) fn phase_raw(i: usize) -> (u64, u64, Vec<u64>) {
    (
        storage::PHASE_COUNT[i].load(Ordering::Relaxed),
        storage::PHASE_TOTAL_NS[i].load(Ordering::Relaxed),
        storage::PHASE_HIST[i]
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The storage is global; tests that reset or assert exact values must
    /// not interleave.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn labels_are_unique_and_nonempty() {
        for names in [COUNTER_NAMES, PHASE_NAMES] {
            for (i, a) in names.iter().enumerate() {
                assert!(!a.is_empty());
                for b in &names[i + 1..] {
                    assert_ne!(a, b);
                }
            }
        }
    }

    #[test]
    fn bucket_bounds_are_monotone() {
        let mut prev = 0;
        for i in 0..NUM_BUCKETS - 1 {
            let b = bucket_bound_ns(i).unwrap();
            assert!(b > prev);
            prev = b;
        }
        assert_eq!(bucket_bound_ns(NUM_BUCKETS - 1), None);
    }

    #[test]
    fn tally_flush_and_counters_match_mode() {
        let _guard = serial();
        reset();
        let mut t = Tally::new();
        t.bump();
        t.add(4);
        assert_eq!(t.get(), if enabled() { 5 } else { 0 });
        t.flush(Counter::Rule1Candidates);
        assert_eq!(t.get(), 0);
        assert_eq!(
            counter_value(Counter::Rule1Candidates),
            if enabled() { 5 } else { 0 }
        );
        reset();
        assert_eq!(counter_value(Counter::Rule1Candidates), 0);
    }

    #[test]
    fn phase_timer_records_iff_enabled() {
        let _guard = serial();
        reset();
        {
            let _t = phase_timer(Phase::Marking);
            std::hint::black_box(0u64);
        }
        record_phase_ns(Phase::Marking, 1_000);
        let snap = crate::Snapshot::capture();
        let marking = snap.phase("marking");
        if enabled() {
            let p = marking.expect("phase present when enabled");
            assert!(p.count >= 2);
            assert!(p.total_ns >= 1_000);
            assert_eq!(p.buckets.iter().sum::<u64>(), p.count);
        } else {
            assert!(marking.is_none() || marking.unwrap().count == 0);
        }
        reset();
    }

    #[test]
    fn histogram_edges_boundaries_zero_and_saturation() {
        let _guard = serial();
        reset();
        // Zero lands in the first bucket; a value exactly on a bucket's
        // upper bound (128 << i, exclusive) lands in the *next* bucket;
        // anything past the last finite bound saturates into the overflow
        // bucket.
        record_phase_ns(Phase::Verify, 0);
        record_phase_ns(Phase::Verify, 127);
        record_phase_ns(Phase::Verify, 128);
        record_phase_ns(Phase::Verify, (128u64 << 5) - 1);
        record_phase_ns(Phase::Verify, 128u64 << 5);
        record_phase_ns(Phase::Verify, 128u64 << (NUM_BUCKETS - 2));
        record_phase_ns(Phase::Verify, u64::MAX);
        if !enabled() {
            assert!(crate::Snapshot::capture().phase("verify").is_none());
        }
        #[cfg(feature = "enabled")]
        {
            let (count, _total, hist) = phase_raw(Phase::Verify as usize);
            assert_eq!(count, 7);
            assert_eq!(hist[0], 2, "0 and 127 share bucket 0");
            assert_eq!(hist[1], 1, "exact 128 spills into bucket 1");
            assert_eq!(hist[5], 1, "(128<<5)-1 stays in bucket 5");
            assert_eq!(hist[6], 1, "exact 128<<5 spills into bucket 6");
            assert_eq!(hist[NUM_BUCKETS - 1], 2, "last bound and u64::MAX overflow");
            assert_eq!(hist.iter().sum::<u64>(), count);

            // The snapshot round-trips those exact buckets bit-identically.
            let snap = crate::Snapshot::capture();
            let back: crate::Snapshot =
                serde_json::from_str(&snap.to_json_line()).expect("snapshot parses");
            assert_eq!(back, snap);
            let p = back.phase("verify").expect("verify phase present");
            assert_eq!(p.count, 7);
            assert_eq!(p.buckets[0], 2);
            assert_eq!(p.buckets[p.buckets.len() - 1], 2);
            reset();
        }
    }

    #[test]
    fn par_tick_accumulates_per_thread() {
        let _guard = serial();
        reset();
        par_tick(10);
        par_tick(5);
        if enabled() {
            assert_eq!(counter_value(Counter::ParVertices), 15);
            assert_eq!(par_work_per_thread().iter().sum::<u64>(), 15);
        } else {
            assert_eq!(counter_value(Counter::ParVertices), 0);
            assert!(par_work_per_thread().is_empty());
        }
        reset();
    }
}
