//! Batched broadcast flooding with retained duplicate suppression.
//!
//! Semantically identical to [`pacds_routing::flood_cost`] — the source
//! always transmits, a host retransmits the first time it hears the
//! message iff it is a relay — but built for repeated floods at scale:
//! "already heard" is an epoch stamp compared against a per-flood
//! sequence number, so consecutive floods share the same buffers and
//! clear nothing. The conformance suite pins the two implementations to
//! identical `(transmissions, reached, depth)` on the whole testkit
//! corpus.

use pacds_graph::{Neighbors, NodeId};
use pacds_routing::FloodCost;

/// Retained flood state. One instance serves any number of floods over
/// graphs of the same node count; `run` allocates nothing once the
/// buffers have reached `n`.
#[derive(Debug, Default)]
pub struct FloodEngine {
    /// Flood sequence number at which each host last *received*.
    heard: Vec<u32>,
    /// Flood sequence number at which each host last *transmitted*.
    sent: Vec<u32>,
    /// Current flood sequence number.
    stamp: u32,
    /// Level-synchronous frontier buffers.
    cur: Vec<NodeId>,
    nxt: Vec<NodeId>,
    /// Duplicate receptions suppressed by the last flood.
    last_duplicates: u64,
}

impl FloodEngine {
    /// An empty engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Duplicate receptions the most recent flood suppressed (receptions
    /// by hosts that had already heard the message).
    pub fn last_duplicates(&self) -> u64 {
        self.last_duplicates
    }

    /// Floods from `source`. `relays` gates retransmission (`None` =
    /// blind flooding); `alive` masks dead hosts out entirely — they
    /// neither receive nor relay (`None` = everyone is up). The source
    /// must be in range and alive.
    pub fn run<G: Neighbors>(
        &mut self,
        g: &G,
        source: NodeId,
        relays: Option<&[bool]>,
        alive: Option<&[bool]>,
    ) -> FloodCost {
        let n = g.n();
        assert!((source as usize) < n, "source out of range");
        if let Some(r) = relays {
            assert_eq!(r.len(), n);
        }
        if let Some(a) = alive {
            assert_eq!(a.len(), n);
            assert!(a[source as usize], "flood source must be alive");
        }
        if self.heard.len() != n {
            self.heard.clear();
            self.heard.resize(n, 0);
            self.sent.clear();
            self.sent.resize(n, 0);
            self.stamp = 0;
        }
        // On sequence wrap the stamps are ambiguous; a full clear once
        // every 2^32 floods keeps the steady state allocation- and
        // clear-free.
        self.stamp = self.stamp.wrapping_add(1);
        if self.stamp == 0 {
            self.heard.iter_mut().for_each(|s| *s = 0);
            self.sent.iter_mut().for_each(|s| *s = 0);
            self.stamp = 1;
        }
        let stamp = self.stamp;
        let up = |v: NodeId| alive.is_none_or(|a| a[v as usize]);

        let mut transmissions = 0usize;
        let mut reached = 0usize;
        let mut duplicates = 0u64;
        let mut depth = 0u32;
        let mut level = 0u32;
        self.cur.clear();
        self.nxt.clear();
        self.sent[source as usize] = stamp;
        self.cur.push(source);
        while !self.cur.is_empty() {
            level += 1;
            for i in 0..self.cur.len() {
                let v = self.cur[i];
                transmissions += 1;
                for &u in g.neighbors(v) {
                    let ui = u as usize;
                    if u == source || !up(u) {
                        continue;
                    }
                    if self.heard[ui] == stamp {
                        duplicates += 1;
                        continue;
                    }
                    self.heard[ui] = stamp;
                    reached += 1;
                    depth = level;
                    if relays.is_none_or(|r| r[ui]) && self.sent[ui] != stamp {
                        self.sent[ui] = stamp;
                        self.nxt.push(u);
                    }
                }
            }
            std::mem::swap(&mut self.cur, &mut self.nxt);
            self.nxt.clear();
        }
        self.last_duplicates = duplicates;
        FloodCost {
            transmissions,
            reached,
            depth,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacds_core::{compute_cds, CdsConfig, CdsInput, Policy};
    use pacds_graph::gen;
    use pacds_routing::flood_cost;
    use rand::SeedableRng;

    #[test]
    fn matches_flood_cost_on_small_families() {
        let mut eng = FloodEngine::new();
        for g in [
            gen::path(7),
            gen::cycle(8),
            gen::star(6),
            gen::complete(5),
            gen::grid(4, 5),
        ] {
            for src in 0..g.n() as NodeId {
                assert_eq!(eng.run(&g, src, None, None), flood_cost(&g, src, None));
            }
        }
    }

    #[test]
    fn matches_flood_cost_with_gateway_relays() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let bounds = pacds_geom::Rect::paper_arena();
        let mut eng = FloodEngine::new();
        for _ in 0..10 {
            let pts = pacds_geom::placement::uniform_points(&mut rng, bounds, 60);
            let full = gen::unit_disk(bounds, 25.0, &pts);
            let keep = pacds_graph::algo::largest_component(&full);
            let (g, _) = full.induced(&keep);
            if g.n() < 10 {
                continue;
            }
            let cds = compute_cds(&CdsInput::new(&g), &CdsConfig::policy(Policy::Degree));
            for src in [0, (g.n() / 2) as NodeId] {
                assert_eq!(
                    eng.run(&g, src, Some(&cds), None),
                    flood_cost(&g, src, Some(&cds))
                );
                assert_eq!(eng.run(&g, src, None, None), flood_cost(&g, src, None));
            }
        }
    }

    #[test]
    fn dead_hosts_neither_receive_nor_relay() {
        // Path 0-1-2-3-4 with 2 dead: the flood stops at 1.
        let g = gen::path(5);
        let alive = vec![true, true, false, true, true];
        let mut eng = FloodEngine::new();
        let c = eng.run(&g, 0, None, Some(&alive));
        assert_eq!(c.reached, 1, "only host 1 hears it");
        assert_eq!(c.transmissions, 2, "0 and 1 transmit");
    }

    #[test]
    fn duplicates_are_counted_not_redelivered() {
        // Complete K4 blind flood: every pair edge redelivers.
        let g = gen::complete(4);
        let mut eng = FloodEngine::new();
        let c = eng.run(&g, 0, None, None);
        assert_eq!(c.reached, 3);
        assert_eq!(c.transmissions, 4);
        assert!(eng.last_duplicates() > 0);
        // A second flood reuses the stamps with no clearing.
        let c2 = eng.run(&g, 0, None, None);
        assert_eq!(c, c2);
    }
}
