//! The live network under the dataplane: a [`ChurnEngine`] control plane
//! plus the retained CSR adjacency the forwarding engine actually walks.
//!
//! `ChurnNet` makes the control-plane/data-plane staleness window
//! explicit. A [`ChurnNet::kill`] updates the *current* liveness mask
//! immediately — the radio is off the moment the host dies, which is
//! what [`crate::Dataplane::pump`] checks before every transmission —
//! but the gateway backbone and the adjacency only change at the next
//! [`ChurnNet::refresh`], exactly as the incremental CDS engine
//! re-solves its dirty tiles. The gap between those two moments is the
//! window the NACK/retransmit path exists to close.

use pacds_core::CdsConfig;
use pacds_geom::{Point2, Rect};
use pacds_graph::gen::{unit_disk_csr, UnitDiskScratch};
use pacds_graph::CsrGraph;
use pacds_shard::{ChurnEngine, ChurnError, ChurnEvent, ChurnStats, ShardSpec};

/// A churn-driven unit-disk network with retained adjacency and masks.
#[derive(Debug)]
pub struct ChurnNet {
    engine: ChurnEngine,
    graph: CsrGraph,
    scratch: UnitDiskScratch,
    bounds: Rect,
    radius: f64,
    /// Current liveness — updated by [`Self::kill`] *immediately*.
    alive: Vec<bool>,
    /// Gateway mask as of the last refresh (the control plane's view).
    gateway: Vec<bool>,
    /// Off-mask scratch for adjacency rebuilds.
    off: Vec<bool>,
}

impl ChurnNet {
    /// Opens the network: solves the initial CDS and builds the adjacency.
    pub fn open(
        spec: ShardSpec,
        bounds: Rect,
        radius: f64,
        points: &[Point2],
        energy: &[u64],
        cfg: &CdsConfig,
    ) -> Result<Self, ChurnError> {
        let engine = ChurnEngine::open(spec, bounds, radius, points, energy, cfg)?;
        let mut net = Self {
            graph: CsrGraph::default(),
            scratch: UnitDiskScratch::default(),
            bounds,
            radius,
            alive: engine.alive().to_vec(),
            gateway: engine.gateways().clone(),
            off: vec![false; points.len()],
            engine,
        };
        net.rebuild_graph();
        Ok(net)
    }

    fn rebuild_graph(&mut self) {
        let n = self.engine.positions().len();
        self.off.clear();
        self.off
            .extend(self.engine.alive().iter().map(|&a| !a));
        debug_assert_eq!(self.off.len(), n);
        unit_disk_csr(
            self.bounds,
            self.radius,
            self.engine.positions(),
            Some(&self.off),
            &mut self.graph,
            &mut self.scratch,
        );
    }

    /// Kills `node`: the control plane records the event (dirty tiles,
    /// deferred re-solve) and the *current* liveness mask flips at once.
    /// Tables and adjacency stay stale until [`Self::refresh`].
    pub fn kill(&mut self, node: u32) -> Result<(), ChurnError> {
        self.engine.apply(&ChurnEvent::KillNode { node })?;
        self.alive[node as usize] = false;
        Ok(())
    }

    /// Re-solves the dirty tiles and brings adjacency, liveness, and the
    /// gateway mask back in sync with the control plane.
    pub fn refresh(&mut self) -> ChurnStats {
        let stats = self.engine.refresh();
        self.alive.clear();
        self.alive.extend_from_slice(self.engine.alive());
        self.gateway.clear();
        self.gateway.extend_from_slice(self.engine.gateways());
        self.rebuild_graph();
        stats
    }

    /// The adjacency as of the last refresh.
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// Current per-host liveness (fresher than the installed tables
    /// between a kill and the next refresh).
    pub fn alive(&self) -> &[bool] {
        &self.alive
    }

    /// Gateway mask as of the last refresh.
    pub fn gateway(&self) -> &[bool] {
        &self.gateway
    }

    /// Number of gateways as of the last refresh.
    pub fn gateway_count(&self) -> usize {
        self.gateway.iter().filter(|&&b| b).count()
    }

    /// Host count (including dead id slots).
    pub fn n(&self) -> usize {
        self.alive.len()
    }

    /// The underlying control-plane engine.
    pub fn engine(&self) -> &ChurnEngine {
        &self.engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacds_core::Policy;
    use pacds_geom::placement;
    use pacds_shard::REQUIRED_HALO;
    use rand::SeedableRng;

    fn small_net() -> ChurnNet {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let bounds = Rect::paper_arena();
        let pts = placement::uniform_points(&mut rng, bounds, 80);
        let energy = vec![100u64; pts.len()];
        let spec = ShardSpec {
            shards: 4,
            halo: REQUIRED_HALO,
            threads: 1,
        };
        ChurnNet::open(
            spec,
            bounds,
            25.0,
            &pts,
            &energy,
            &CdsConfig::policy(Policy::Degree),
        )
        .unwrap()
    }

    #[test]
    fn kill_is_immediate_but_backbone_waits_for_refresh() {
        let mut net = small_net();
        let gw = net
            .gateway()
            .iter()
            .position(|&b| b)
            .expect("some gateway exists") as u32;
        net.kill(gw).unwrap();
        assert!(!net.alive()[gw as usize], "liveness flips at once");
        assert!(net.gateway()[gw as usize], "backbone still lists it");
        assert!(
            !net.graph().neighbors(gw).is_empty() || net.graph().degree(gw) == 0,
            "adjacency untouched until refresh"
        );
        net.refresh();
        assert!(!net.gateway()[gw as usize], "refresh evicts the dead gateway");
        assert_eq!(net.graph().degree(gw), 0, "dead host is isolated");
    }

    #[test]
    fn refresh_masks_match_the_engine() {
        let mut net = small_net();
        net.kill(3).unwrap();
        net.kill(9).unwrap();
        net.refresh();
        assert_eq!(net.alive(), net.engine().alive());
        assert_eq!(net.gateway(), net.engine().gateways().as_slice());
        assert_eq!(net.gateway_count(), net.engine().gateway_count());
    }
}
