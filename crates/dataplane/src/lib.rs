//! # pacds-dataplane — packet-level forwarding over the CDS backbone
//!
//! Everything below this crate computes and maintains the gateway
//! backbone; this crate runs *traffic* over it. The design goal is to
//! demonstrate, at the packet level, the paper's two routing claims:
//! that dominating-set-based routing confines route search to the small
//! backbone (§ "CDS based routing": member → source gateway → destination
//! gateway → member), and that gateway-relayed broadcast cuts
//! transmissions versus blind flooding.
//!
//! The engine is a vector-dispatch forwarding graph in the style of
//! modular software routers: a fixed set of processing nodes
//! (ingress → classify → backbone-lookup → forward/flood → egress, plus
//! NACK and drop legs), with batches of packet indices pushed between
//! them and each node draining its whole input queue per sweep. Packets
//! live in a structure-of-arrays [`PacketBatch`]; source routes live in a
//! retained [`RouteArena`]; all buffers survive across waves, so the warm
//! forwarding loop performs zero steady-state allocations (pinned by
//! `tests/zero_alloc.rs` at the workspace root).
//!
//! Module map:
//!
//! * [`packet`] — SoA packet storage, dispositions, the route arena.
//! * [`routes`] — [`BackboneRoutes`]: per-destination-gateway BFS trees
//!   over the live backbone, lazily built, epoch-invalidated; assembles
//!   the same member→gateway→gateway→member walks as
//!   [`pacds_routing::route`] without the O(gateways × n) dense tables.
//! * [`flood`] — [`FloodEngine`]: retained duplicate-suppression flooding,
//!   semantics pinned to [`pacds_routing::flood_cost`].
//! * [`engine`] — [`Dataplane`]: the node graph, the pump loop, the
//!   NACK/retransmit path.
//! * [`net`] — [`ChurnNet`]: the live network (churn control plane plus
//!   retained CSR adjacency) the benches and CLI drive traffic over.
//!
//! The liveness contract, end to end: a kill flips the *current* alive
//! mask immediately; backbone tables only change at the next churn
//! refresh; the forward node checks the current mask before every
//! transmission and NACKs on a dead next hop, so no packet is ever
//! forwarded into a dead node — the `dp.misroutes` counter is a
//! compiled-in invariant check that the benches assert stays zero.

pub mod engine;
pub mod flood;
pub mod net;
pub mod packet;
pub mod routes;

pub use engine::{Dataplane, DpNode, DpStats, NodeCounters, DP_NODE_NAMES, NUM_DP_NODES};
pub use flood::FloodEngine;
pub use net::ChurnNet;
pub use packet::{Disposition, PacketBatch, PacketKind, RouteArena, ROUTE_NONE};
pub use routes::BackboneRoutes;
