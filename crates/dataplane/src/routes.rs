//! Scalable backbone route tables: per-destination-gateway BFS trees.
//!
//! [`pacds_routing::RoutingState`] materialises the paper's Figure-2
//! tables densely — `O(gateways × n)` words — which is exact and fine at
//! corpus scale but infeasible at n = 10⁵⁻⁶ (tens of gigabytes). The
//! dataplane instead keeps one BFS tree *per destination gateway actually
//! in use*: `toward[u]` is the next gateway from `u` on a shortest
//! gateway-only path towards the destination gateway, `O(n)` words per
//! active destination, built lazily and pooled across epochs.
//!
//! [`BackboneRoutes::assemble`] runs the same three-step procedure as
//! [`pacds_routing::route`]: member → source gateway → gateway walk →
//! destination. Routes are shortest within the gateway subgraph, so hop
//! counts match `route()` exactly (the conformance suite pins this); the
//! specific shortest path may differ because the trees are rooted at the
//! destination rather than the source.
//!
//! Staleness model: the masks are snapshots taken at [`BackboneRoutes::
//! install`] — the control plane's view. A node that dies afterwards is
//! still routed through until the next install (churn refresh), which is
//! exactly the window the forward node's liveness check + NACK closes.

use pacds_graph::{Neighbors, NodeId};
use pacds_obs::{obs_count, obs_time, Counter, Phase};
use pacds_routing::RouteError;

/// One destination gateway's shortest-path tree over the live gateway
/// subgraph.
#[derive(Debug, Default)]
struct DestTree {
    dest: NodeId,
    /// Hop distance from each gateway to `dest` within the gateway
    /// subgraph; `u32::MAX` = unreachable or not a live gateway.
    dist: Vec<u32>,
    /// Next gateway towards `dest` (the BFS parent); undefined where
    /// `dist` is `u32::MAX`.
    toward: Vec<NodeId>,
}

/// The dataplane's routing tables: gateway + liveness masks plus a pool
/// of lazily-built [`DestTree`]s. All storage is retained; once every
/// buffer has hit its high-water mark, `install` + `assemble` perform
/// zero heap allocations.
#[derive(Debug, Default)]
pub struct BackboneRoutes {
    n: usize,
    gateway: Vec<bool>,
    alive: Vec<bool>,
    epoch: u32,
    /// Dense destination → tree-slot map; `u32::MAX` = no tree yet.
    slot_of: Vec<u32>,
    trees: Vec<DestTree>,
    /// Tree-pool slots in use this epoch (`trees[..used]`).
    used: usize,
    /// BFS frontier scratch.
    queue: Vec<NodeId>,
}

impl BackboneRoutes {
    /// Empty tables; [`Self::install`] must run before [`Self::assemble`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a new epoch of tables from the control plane's gateway
    /// and liveness masks (snapshot copies). Invalidates every tree from
    /// the previous epoch in O(trees used), not O(n).
    pub fn install(&mut self, gateway: &[bool], alive: &[bool]) {
        assert_eq!(gateway.len(), alive.len());
        let n = gateway.len();
        if n != self.n {
            self.n = n;
            self.slot_of.clear();
            self.slot_of.resize(n, u32::MAX);
        } else {
            for t in &self.trees[..self.used] {
                self.slot_of[t.dest as usize] = u32::MAX;
            }
        }
        self.used = 0;
        self.gateway.clear();
        self.gateway.extend_from_slice(gateway);
        self.alive.clear();
        self.alive.extend_from_slice(alive);
        self.epoch = self.epoch.wrapping_add(1);
    }

    /// The current table epoch; bumped by every [`Self::install`]. Flow
    /// caches compare this to decide whether a cached route is current.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Number of nodes the installed tables cover.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The installed gateway mask (the control plane's snapshot); the
    /// flood node uses this as the relay set for gateway broadcast.
    pub fn gateway_mask(&self) -> &[bool] {
        &self.gateway
    }

    /// Destination trees built since the last install.
    pub fn trees_built(&self) -> usize {
        self.used
    }

    /// The gateway whose domain contains `v`: itself for gateways, else
    /// the smallest-id adjacent gateway (the same choice
    /// [`pacds_routing::RoutingState::gateway_of`] makes).
    pub fn gateway_of<G: Neighbors>(&self, g: &G, v: NodeId) -> Option<NodeId> {
        if self.gateway[v as usize] {
            return Some(v);
        }
        g.neighbors(v)
            .iter()
            .copied()
            .find(|&u| self.gateway[u as usize])
    }

    /// Returns the tree slot for destination gateway `dg`, building the
    /// BFS tree on first use this epoch. `dg` must be a live gateway.
    fn tree_slot<G: Neighbors>(&mut self, g: &G, dg: NodeId) -> usize {
        if self.slot_of[dg as usize] != u32::MAX {
            return self.slot_of[dg as usize] as usize;
        }
        obs_time!(_t, Phase::DpRouteBuild);
        obs_count!(Counter::DpRouteBuilds);
        let slot = self.used;
        if self.trees.len() == slot {
            self.trees.push(DestTree::default());
        }
        self.used += 1;
        self.slot_of[dg as usize] = slot as u32;

        let tree = &mut self.trees[slot];
        tree.dest = dg;
        tree.dist.clear();
        tree.dist.resize(self.n, u32::MAX);
        tree.toward.clear();
        tree.toward.resize(self.n, NodeId::MAX);
        self.queue.clear();
        tree.dist[dg as usize] = 0;
        tree.toward[dg as usize] = dg;
        self.queue.push(dg);
        let mut head = 0;
        while head < self.queue.len() {
            let v = self.queue[head];
            head += 1;
            let dv = tree.dist[v as usize];
            for &u in g.neighbors(v) {
                let ui = u as usize;
                if self.gateway[ui] && self.alive[ui] && tree.dist[ui] == u32::MAX {
                    tree.dist[ui] = dv + 1;
                    // The BFS parent is one hop closer to dg: forwarding
                    // from u towards dg goes through v.
                    tree.toward[ui] = v;
                    self.queue.push(u);
                }
            }
        }
        slot
    }

    /// Assembles the three-step source route `src → dst` into `out`
    /// (cleared first). Error taxonomy matches
    /// [`pacds_routing::route_alive_into`]: dead endpoints or dead chosen
    /// gateways yield [`RouteError::StaleGateway`], a disconnected live
    /// backbone yields [`RouteError::GatewayPathMissing`].
    pub fn assemble<G: Neighbors>(
        &mut self,
        g: &G,
        src: NodeId,
        dst: NodeId,
        out: &mut Vec<NodeId>,
    ) -> Result<(), RouteError> {
        out.clear();
        if (src as usize) >= self.n || (dst as usize) >= self.n {
            return Err(RouteError::OutOfRange);
        }
        if !self.alive[src as usize] || !self.alive[dst as usize] {
            return Err(RouteError::StaleGateway);
        }
        if src == dst {
            out.push(src);
            return Ok(());
        }
        if g.has_edge(src, dst) {
            out.push(src);
            out.push(dst);
            return Ok(());
        }

        let sg = self
            .gateway_of(g, src)
            .ok_or(RouteError::SourceNotDominated)?;
        let dg = self
            .gateway_of(g, dst)
            .ok_or(RouteError::DestinationNotDominated)?;
        if !self.alive[sg as usize] || !self.alive[dg as usize] {
            return Err(RouteError::StaleGateway);
        }

        let slot = self.tree_slot(g, dg);
        let tree = &self.trees[slot];
        if tree.dist[sg as usize] == u32::MAX {
            return Err(RouteError::GatewayPathMissing);
        }
        out.push(src);
        if sg != src {
            out.push(sg);
        }
        let mut cur = sg;
        while cur != dg {
            cur = tree.toward[cur as usize];
            out.push(cur);
        }
        if dg != dst {
            out.push(dst);
        }
        Ok(())
    }

    /// Whether every hop of `path` is alive under the *installed* masks
    /// (the control plane's view; used by tests and self-checks).
    pub fn path_alive(&self, path: &[NodeId]) -> bool {
        path.iter().all(|&v| self.alive[v as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacds_core::{compute_cds, CdsConfig, CdsInput, Policy};
    use pacds_graph::{gen, Graph};
    use pacds_routing::{hop_count, is_valid_walk, route, RoutingState};
    use rand::SeedableRng;

    fn fig1() -> (Graph, Vec<bool>) {
        let g = Graph::from_edges(5, &[(0, 1), (0, 4), (1, 2), (1, 4), (2, 3)]);
        let cds = compute_cds(&CdsInput::new(&g), &CdsConfig::policy(Policy::Id));
        (g, cds)
    }

    #[test]
    fn figure1_route_matches_the_paper() {
        let (g, cds) = fig1();
        let mut br = BackboneRoutes::new();
        br.install(&cds, &[true; 5]);
        let mut out = Vec::new();
        br.assemble(&g, 4, 3, &mut out).unwrap();
        assert_eq!(out, vec![4, 1, 2, 3]);
        br.assemble(&g, 0, 4, &mut out).unwrap();
        assert_eq!(out, vec![0, 4], "direct neighbours bypass the overlay");
        br.assemble(&g, 3, 3, &mut out).unwrap();
        assert_eq!(out, vec![3]);
    }

    #[test]
    fn hop_counts_match_routing_state_on_random_unit_disks() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let bounds = pacds_geom::Rect::paper_arena();
        for _ in 0..8 {
            let pts = pacds_geom::placement::uniform_points(&mut rng, bounds, 50);
            let full = gen::unit_disk(bounds, 25.0, &pts);
            let keep = pacds_graph::algo::largest_component(&full);
            let (g, _) = full.induced(&keep);
            if g.n() < 3 || g.is_complete() {
                continue;
            }
            let cds = compute_cds(&CdsInput::new(&g), &CdsConfig::policy(Policy::Degree));
            let state = RoutingState::build(&g, &cds);
            let mut br = BackboneRoutes::new();
            br.install(&cds, &vec![true; g.n()]);
            let mut out = Vec::new();
            for s in 0..g.n() as NodeId {
                for t in 0..g.n() as NodeId {
                    let reference = route(&g, &state, s, t).unwrap();
                    br.assemble(&g, s, t, &mut out).unwrap();
                    assert!(is_valid_walk(&g, &out), "{s}->{t}: {out:?}");
                    assert_eq!(out.first(), Some(&s));
                    assert_eq!(out.last(), Some(&t));
                    assert_eq!(
                        hop_count(&out),
                        hop_count(&reference),
                        "{s}->{t}: {out:?} vs {reference:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn error_taxonomy_matches_route_alive_into() {
        // Path 0-1-2 plus isolated 3.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2)]);
        let gw = vec![false, true, false, false];
        let mut br = BackboneRoutes::new();
        br.install(&gw, &[true; 4]);
        let mut out = Vec::new();
        assert_eq!(
            br.assemble(&g, 3, 0, &mut out),
            Err(RouteError::SourceNotDominated)
        );
        assert_eq!(
            br.assemble(&g, 0, 3, &mut out),
            Err(RouteError::DestinationNotDominated)
        );
        assert_eq!(br.assemble(&g, 0, 9, &mut out), Err(RouteError::OutOfRange));

        // Dead destination gateway → stale.
        let (g, cds) = fig1();
        let mut alive = vec![true; 5];
        alive[2] = false;
        br.install(&cds, &alive);
        assert_eq!(
            br.assemble(&g, 4, 3, &mut out),
            Err(RouteError::StaleGateway)
        );
    }

    #[test]
    fn install_invalidates_trees_and_reroutes() {
        // Cycle C6, all gateways: 0 -> 3 can go either way (3 hops).
        let g = gen::cycle(6);
        let gw = vec![true; 6];
        let mut br = BackboneRoutes::new();
        br.install(&gw, &[true; 6]);
        let mut out = Vec::new();
        br.assemble(&g, 0, 3, &mut out).unwrap();
        assert_eq!(hop_count(&out), 3);
        assert_eq!(br.trees_built(), 1);
        // Kill node 1: the control plane refreshes, and the new tables
        // must route the long way round, never through 1.
        let alive = vec![true, false, true, true, true, true];
        let epoch = br.epoch();
        br.install(&gw, &alive);
        assert_ne!(br.epoch(), epoch);
        assert_eq!(br.trees_built(), 0);
        br.assemble(&g, 0, 3, &mut out).unwrap();
        assert_eq!(out, vec![0, 5, 4, 3]);
        assert!(br.path_alive(&out));
    }
}
