//! The vector-dispatch forwarding engine: a fixed graph of processing
//! nodes pumping batches of packet indices.
//!
//! ```text
//!             ┌──────────> flood ─────────┐
//!   ingress → classify                    ├→ egress
//!             └→ lookup ──→ forward ──────┘
//!                  │            │
//!                  ├──→ drop    └──→ nack ──(requeue after refresh)──→ lookup
//!                  └──→ nack
//! ```
//!
//! Dispatch is vectorised in the R2 style: each node drains its entire
//! input queue per sweep, touching one packet field array at a time, and a
//! [`Dataplane::pump`] runs sweeps until every queue is empty. Because a
//! pump always runs to quiescence, every packet ends a pump in a terminal
//! state (`Delivered`/`Dropped`) or parked in the NACK retransmit list —
//! which is what lets a table rebuild clear the route arena wholesale
//! without chasing in-flight route handles.
//!
//! The NACK path guarantees (pinned by the benches, not just measured):
//! the forward node checks the next hop against the *current* liveness
//! mask before every transmission, so **no packet is ever forwarded into
//! a dead node** — a route that has gone stale is NACKed at the last live
//! hop, parked, and retransmitted over fresh tables after the next churn
//! refresh ([`Dataplane::requeue_nacked`]).
//!
//! Hot-loop counters accumulate in stack locals and flush to the obs
//! layer once per pump, so the per-packet path never touches an atomic.

use crate::packet::{Disposition, PacketBatch, PacketKind, RouteArena, ROUTE_NONE};
use crate::routes::BackboneRoutes;
use crate::FloodEngine;
use pacds_graph::{Neighbors, NodeId};
use pacds_obs::{obs_count, obs_time, Counter, Phase, SpanKind, TraceId};
use pacds_routing::{FloodCost, RouteError};

/// Processing nodes of the forwarding graph, in dispatch order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum DpNode {
    /// Admits injected packets and stamps ingress accounting.
    Ingress = 0,
    /// Splits unicast from broadcast traffic.
    Classify = 1,
    /// Backbone lookup: resolves the flow's source route (three-step
    /// assembly via [`BackboneRoutes`]), or fails typed.
    Lookup = 2,
    /// Hop-by-hop relay along the stamped source route.
    Forward = 3,
    /// Broadcast execution through the [`FloodEngine`].
    Flood = 4,
    /// Delivery point.
    Egress = 5,
    /// Stale-route NACKs parked for retransmission (AP-server style
    /// error-to-receiver signalling).
    Nack = 6,
    /// Terminal drops (unroutable traffic).
    Drop = 7,
}

/// Number of processing nodes.
pub const NUM_DP_NODES: usize = 8;

/// Display labels, indexed by [`DpNode`] discriminant.
pub const DP_NODE_NAMES: [&str; NUM_DP_NODES] = [
    "ingress", "classify", "lookup", "forward", "flood", "egress", "nack", "drop",
];

/// Per-node typed counters: the engine's own dispatch accounting, always
/// compiled in (the obs layer additionally gets per-pump flushes when
/// enabled).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NodeCounters {
    /// Packets this node accepted from its input queue.
    pub in_packets: u64,
    /// Packets this node handed to a successor node.
    pub out_packets: u64,
    /// Packets that failed at this node (route errors, stale hops).
    pub errors: u64,
}

/// One registered unicast flow: a (src, dst) pair with a cached route.
#[derive(Debug, Clone, Copy)]
struct Flow {
    src: NodeId,
    dst: NodeId,
    /// Cached route handle, valid iff `epoch` matches the tables.
    route: u32,
    epoch: u32,
}

/// Cumulative engine statistics (monotone; diff two snapshots for a
/// per-wave view).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DpStats {
    /// Packets admitted at ingress (including retransmissions).
    pub injected: u64,
    /// Packets delivered at egress (unicast + completed broadcasts).
    pub delivered: u64,
    /// Packets terminally dropped.
    pub dropped: u64,
    /// Packets NACKed on a stale route.
    pub nacked: u64,
    /// NACKed packets re-injected after a table rebuild.
    pub retransmits: u64,
    /// Per-hop forward operations (aggregate transmissions).
    pub forwarded_hops: u64,
    /// Packets forwarded into a dead node — structurally zero; the
    /// benches and `--fail-on-errors` assert it stays that way.
    pub misroutes: u64,
    /// Flood transmissions across all broadcasts.
    pub flood_transmissions: u64,
    /// Duplicate flood receptions suppressed.
    pub flood_duplicates: u64,
    /// Hosts reached across all broadcasts.
    pub flood_reached: u64,
}

/// The forwarding engine. See the module docs for the node-graph shape
/// and the batch invariants.
#[derive(Debug, Default)]
pub struct Dataplane {
    batch: PacketBatch,
    arena: RouteArena,
    routes: BackboneRoutes,
    flood: FloodEngine,
    flows: Vec<Flow>,
    queues: [Vec<u32>; NUM_DP_NODES],
    /// Drain scratch: a node's input queue is swapped here before the
    /// sweep so successors can enqueue without aliasing.
    work: Vec<u32>,
    counters: [NodeCounters; NUM_DP_NODES],
    /// NACKed packets awaiting fresh tables.
    retransmit: Vec<u32>,
    stats: DpStats,
    path_buf: Vec<NodeId>,
    last_flood: Option<FloodCost>,
    trace: TraceId,
}

impl Dataplane {
    /// An empty engine; [`Self::install_tables`] must run before traffic.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a new epoch of backbone tables from the control plane's
    /// gateway and liveness masks, invalidating every cached route (the
    /// arena is cleared wholesale; flow caches miss on the epoch bump).
    ///
    /// # Panics
    /// Panics if packets are still queued inside the node graph — pump to
    /// quiescence first (NACK-parked packets are fine; that is the
    /// retransmit path).
    pub fn install_tables(&mut self, gateway: &[bool], alive: &[bool]) {
        assert!(
            self.queues.iter().all(Vec::is_empty),
            "install_tables with packets in flight; pump to quiescence first"
        );
        self.routes.install(gateway, alive);
        self.arena.clear();
    }

    /// Registers a unicast flow and returns its id.
    pub fn add_flow(&mut self, src: NodeId, dst: NodeId) -> u32 {
        self.flows.push(Flow {
            src,
            dst,
            route: ROUTE_NONE,
            epoch: 0,
        });
        (self.flows.len() - 1) as u32
    }

    /// Number of registered flows.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Injects `count` packets on flow `flow` into the ingress queue.
    pub fn inject(&mut self, flow: u32, count: usize) {
        let f = self.flows[flow as usize];
        for _ in 0..count {
            let id = self.batch.push(f.src, f.dst, PacketKind::Unicast, flow);
            self.queues[DpNode::Ingress as usize].push(id);
        }
    }

    /// Injects one broadcast packet from `src` (blind or gateway-relayed).
    pub fn inject_broadcast(&mut self, src: NodeId, blind: bool) {
        let kind = if blind {
            PacketKind::BlindBroadcast
        } else {
            PacketKind::GatewayBroadcast
        };
        let id = self.batch.push(src, NodeId::MAX, kind, u32::MAX);
        self.queues[DpNode::Ingress as usize].push(id);
    }

    /// Attributes subsequent pump spans to `trace` (no-op unless the
    /// `trace` feature is on and the id is sampled).
    pub fn set_trace(&mut self, trace: TraceId) {
        self.trace = trace;
    }

    /// Pumps the node graph to quiescence against the *current* network
    /// state: `g` for adjacency, `alive` for per-transmission liveness
    /// (may be fresher than the installed tables — that gap is exactly
    /// what the NACK path handles). Returns the cumulative stats.
    pub fn pump<G: Neighbors>(&mut self, g: &G, alive: &[bool]) -> DpStats {
        obs_time!(_t, Phase::DpPump);
        let admitted = self.queues[DpNode::Ingress as usize].len();
        let _span = pacds_obs::span(self.trace, SpanKind::DpPump, admitted as u32);
        let tally = self.pump_loop(g, alive);
        self.stats.injected += tally.ingressed;
        self.stats.forwarded_hops += tally.forwarded;
        self.stats.delivered += tally.delivered;
        self.stats.dropped += tally.dropped;
        self.stats.nacked += tally.nacked;
        self.stats.misroutes += tally.misroutes;
        obs_count!(Counter::DpPackets, tally.ingressed);
        obs_count!(Counter::DpForwarded, tally.forwarded);
        obs_count!(Counter::DpDelivered, tally.delivered);
        obs_count!(Counter::DpDropped, tally.dropped);
        obs_count!(Counter::DpNacks, tally.nacked);
        obs_count!(Counter::DpMisroutes, tally.misroutes);
        self.stats
    }

    /// The sweep loop proper, kept out of [`Self::pump`]'s frame on
    /// purpose: the forward sweep runs at ~1 ns/hop, where even the
    /// frame-layout shifts caused by the (feature-gated) instrumentation
    /// in `pump` register as double-digit relative overhead in
    /// `bench_obs`. Out of line, the hot code compiles identically in
    /// both builds and the per-pump obs cost stays amortised across the
    /// whole batch.
    #[inline(never)]
    fn pump_loop<G: Neighbors>(&mut self, g: &G, alive: &[bool]) -> PumpTally {
        let mut tally = PumpTally::default();
        loop {
            let mut moved = false;
            for node in 0..NUM_DP_NODES {
                if self.queues[node].is_empty() {
                    continue;
                }
                moved = true;
                std::mem::swap(&mut self.queues[node], &mut self.work);
                self.counters[node].in_packets += self.work.len() as u64;
                match node {
                    n if n == DpNode::Ingress as usize => self.sweep_ingress(&mut tally),
                    n if n == DpNode::Classify as usize => self.sweep_classify(),
                    n if n == DpNode::Lookup as usize => self.sweep_lookup(g),
                    n if n == DpNode::Forward as usize => self.sweep_forward(alive, &mut tally),
                    n if n == DpNode::Flood as usize => self.sweep_flood(g, alive),
                    n if n == DpNode::Egress as usize => self.sweep_egress(&mut tally),
                    n if n == DpNode::Nack as usize => self.sweep_nack(&mut tally),
                    _ => self.sweep_drop(&mut tally),
                }
                self.work.clear();
            }
            if !moved {
                break;
            }
        }
        tally
    }

    fn sweep_ingress(&mut self, tally: &mut PumpTally) {
        for i in 0..self.work.len() {
            let id = self.work[i];
            tally.ingressed += 1;
            self.counters[DpNode::Ingress as usize].out_packets += 1;
            self.queues[DpNode::Classify as usize].push(id);
        }
    }

    fn sweep_classify(&mut self) {
        for i in 0..self.work.len() {
            let id = self.work[i];
            let next = match self.batch.kind[id as usize] {
                PacketKind::Unicast => DpNode::Lookup,
                _ => DpNode::Flood,
            };
            self.counters[DpNode::Classify as usize].out_packets += 1;
            self.queues[next as usize].push(id);
        }
    }

    fn sweep_lookup<G: Neighbors>(&mut self, g: &G) {
        for i in 0..self.work.len() {
            let id = self.work[i];
            let fid = self.batch.flow[id as usize] as usize;
            let flow = self.flows[fid];
            let route = if flow.route != ROUTE_NONE && flow.epoch == self.routes.epoch() {
                Ok(flow.route)
            } else {
                self.routes
                    .assemble(g, flow.src, flow.dst, &mut self.path_buf)
                    .map(|()| {
                        let r = self.arena.push_route(&self.path_buf);
                        self.flows[fid].route = r;
                        self.flows[fid].epoch = self.routes.epoch();
                        r
                    })
            };
            match route {
                Ok(r) => {
                    self.batch.route[id as usize] = r;
                    self.batch.hop[id as usize] = 0;
                    self.counters[DpNode::Lookup as usize].out_packets += 1;
                    self.queues[DpNode::Forward as usize].push(id);
                }
                Err(RouteError::StaleGateway) | Err(RouteError::GatewayPathMissing) => {
                    // Transient: the backbone will be rebuilt by the next
                    // churn refresh; park for retransmission.
                    self.counters[DpNode::Lookup as usize].errors += 1;
                    self.queues[DpNode::Nack as usize].push(id);
                }
                Err(_) => {
                    // OutOfRange / undominated: no refresh will fix it.
                    self.counters[DpNode::Lookup as usize].errors += 1;
                    self.queues[DpNode::Drop as usize].push(id);
                }
            }
        }
    }

    fn sweep_forward(&mut self, alive: &[bool], tally: &mut PumpTally) {
        for i in 0..self.work.len() {
            let id = self.work[i] as usize;
            let span = self.arena.get(self.batch.route[id]);
            let mut h = self.batch.hop[id] as usize;
            // The host currently holding the packet may itself have died
            // since the last sweep; it cannot transmit.
            if !alive[span[h] as usize] {
                self.counters[DpNode::Forward as usize].errors += 1;
                self.queues[DpNode::Nack as usize].push(id as u32);
                continue;
            }
            // A single-hop route (src == dst) is already at its
            // destination; nothing to transmit.
            if h + 1 == span.len() {
                self.counters[DpNode::Forward as usize].out_packets += 1;
                self.queues[DpNode::Egress as usize].push(id as u32);
                continue;
            }
            loop {
                let next = span[h + 1];
                if !alive[next as usize] {
                    // Stale route: NACK from the last live hop instead of
                    // transmitting into a dead host.
                    self.batch.hop[id] = h as u32;
                    self.counters[DpNode::Forward as usize].errors += 1;
                    self.queues[DpNode::Nack as usize].push(id as u32);
                    break;
                }
                h += 1;
                tally.forwarded += 1;
                // Invariant check, compiled into every build: the hop we
                // advanced onto was verified alive before transmission.
                if !alive[span[h] as usize] {
                    tally.misroutes += 1;
                }
                if h + 1 == span.len() {
                    self.batch.hop[id] = h as u32;
                    self.counters[DpNode::Forward as usize].out_packets += 1;
                    self.queues[DpNode::Egress as usize].push(id as u32);
                    break;
                }
            }
        }
    }

    // Out of line for the same reason as `pump_loop`: this sweep carries
    // its own obs instrumentation, which must not leak into the unicast
    // sweeps' codegen by inlining.
    #[inline(never)]
    fn sweep_flood<G: Neighbors>(&mut self, g: &G, alive: &[bool]) {
        obs_time!(_t, Phase::DpFlood);
        for i in 0..self.work.len() {
            let id = self.work[i];
            let src = self.batch.src[id as usize];
            let relays = match self.batch.kind[id as usize] {
                PacketKind::GatewayBroadcast => Some(self.routes.gateway_mask()),
                _ => None,
            };
            let cost = self.flood.run(g, src, relays, Some(alive));
            self.stats.flood_transmissions += cost.transmissions as u64;
            self.stats.flood_reached += cost.reached as u64;
            self.stats.flood_duplicates += self.flood.last_duplicates();
            obs_count!(Counter::DpFloodTransmissions, cost.transmissions);
            obs_count!(Counter::DpFloodDuplicates, self.flood.last_duplicates());
            self.last_flood = Some(cost);
            self.counters[DpNode::Flood as usize].out_packets += 1;
            self.queues[DpNode::Egress as usize].push(id);
        }
    }

    fn sweep_egress(&mut self, tally: &mut PumpTally) {
        for i in 0..self.work.len() {
            let id = self.work[i];
            self.batch.disposition[id as usize] = Disposition::Delivered;
            tally.delivered += 1;
            self.counters[DpNode::Egress as usize].out_packets += 1;
        }
    }

    fn sweep_nack(&mut self, tally: &mut PumpTally) {
        for i in 0..self.work.len() {
            let id = self.work[i];
            self.batch.disposition[id as usize] = Disposition::Nacked;
            self.batch.route[id as usize] = ROUTE_NONE;
            self.batch.hop[id as usize] = 0;
            tally.nacked += 1;
            self.retransmit.push(id);
        }
    }

    fn sweep_drop(&mut self, tally: &mut PumpTally) {
        for i in 0..self.work.len() {
            let id = self.work[i];
            self.batch.disposition[id as usize] = Disposition::Dropped;
            tally.dropped += 1;
        }
    }

    /// Re-injects every NACK-parked packet at the lookup node (their
    /// flows re-resolve against the current tables). Call after
    /// [`Self::install_tables`]; the next pump completes the
    /// kill → refresh → retransmit → first-delivery sequence.
    pub fn requeue_nacked(&mut self) -> usize {
        let n = self.retransmit.len();
        for i in 0..n {
            let id = self.retransmit[i];
            self.batch.disposition[id as usize] = Disposition::InFlight;
            self.queues[DpNode::Lookup as usize].push(id);
        }
        self.retransmit.clear();
        self.stats.retransmits += n as u64;
        obs_count!(Counter::DpRetransmits, n);
        n
    }

    /// NACK-parked packets currently awaiting retransmission.
    pub fn nacked_pending(&self) -> usize {
        self.retransmit.len()
    }

    /// Drops all packet state (terminal and parked), retaining capacity.
    /// Flows, tables, and cumulative stats survive; per-wave callers use
    /// this to keep the batch bounded.
    ///
    /// # Panics
    /// Panics if packets are still queued inside the node graph.
    pub fn reset_packets(&mut self) {
        assert!(
            self.queues.iter().all(Vec::is_empty),
            "reset_packets with packets in flight"
        );
        self.batch.clear();
        self.retransmit.clear();
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> DpStats {
        self.stats
    }

    /// Per-node dispatch counters, indexed by [`DpNode`].
    pub fn node_counters(&self) -> &[NodeCounters; NUM_DP_NODES] {
        &self.counters
    }

    /// The installed backbone tables.
    pub fn routes(&self) -> &BackboneRoutes {
        &self.routes
    }

    /// Mutable access to the tables, e.g. to probe routability with
    /// [`BackboneRoutes::assemble`] before registering a flow. Trees
    /// built through this handle stay valid for the current epoch.
    pub fn routes_mut(&mut self) -> &mut BackboneRoutes {
        &mut self.routes
    }

    /// Outcome of the most recent broadcast, if any.
    pub fn last_flood(&self) -> Option<FloodCost> {
        self.last_flood
    }

    /// The packet store (terminal dispositions are readable until the
    /// next [`Self::reset_packets`]).
    pub fn packets(&self) -> &PacketBatch {
        &self.batch
    }
}

/// Stack accumulator for one pump: the hot loops bump these plain `u64`s
/// and the pump flushes them into [`DpStats`] and the obs counters once.
#[derive(Debug, Default, Clone, Copy)]
struct PumpTally {
    ingressed: u64,
    forwarded: u64,
    delivered: u64,
    dropped: u64,
    nacked: u64,
    misroutes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacds_core::{compute_cds, CdsConfig, CdsInput, Policy};
    use pacds_graph::{gen, Graph};
    use pacds_routing::{flood_cost, hop_count, route, RoutingState};
    use rand::SeedableRng;

    fn fig1() -> (Graph, Vec<bool>) {
        let g = Graph::from_edges(5, &[(0, 1), (0, 4), (1, 2), (1, 4), (2, 3)]);
        let cds = compute_cds(&CdsInput::new(&g), &CdsConfig::policy(Policy::Id));
        (g, cds)
    }

    #[test]
    fn unicast_delivery_matches_route_hop_counts() {
        let (g, cds) = fig1();
        let state = RoutingState::build(&g, &cds);
        let alive = vec![true; 5];
        let mut dp = Dataplane::new();
        dp.install_tables(&cds, &alive);
        let f = dp.add_flow(4, 3);
        dp.inject(f, 10);
        let stats = dp.pump(&g, &alive);
        assert_eq!(stats.injected, 10);
        assert_eq!(stats.delivered, 10);
        assert_eq!(stats.misroutes, 0);
        let reference = route(&g, &state, 4, 3).unwrap();
        assert_eq!(stats.forwarded_hops, 10 * hop_count(&reference) as u64);
        // The flow cache resolved the route once for all ten packets.
        assert_eq!(dp.routes().trees_built(), 1);
    }

    #[test]
    fn undominated_destination_is_dropped_not_nacked() {
        // Path 0-1-2 plus isolated 3: no refresh can route to 3.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2)]);
        let gw = vec![false, true, false, false];
        let alive = vec![true; 4];
        let mut dp = Dataplane::new();
        dp.install_tables(&gw, &alive);
        let f = dp.add_flow(0, 3);
        dp.inject(f, 3);
        let stats = dp.pump(&g, &alive);
        assert_eq!(stats.dropped, 3);
        assert_eq!(stats.delivered, 0);
        assert_eq!(dp.nacked_pending(), 0);
        assert_eq!(dp.node_counters()[DpNode::Lookup as usize].errors, 3);
    }

    #[test]
    fn kill_nack_refresh_retransmit_delivers_without_misroutes() {
        // Cycle C6, all gateways; route 0 -> 3 initially through 1 or 5.
        let g = gen::cycle(6);
        let gw = vec![true; 6];
        let mut alive = vec![true; 6];
        let mut dp = Dataplane::new();
        dp.install_tables(&gw, &alive);
        let f = dp.add_flow(0, 3);
        dp.inject(f, 4);
        let s0 = dp.pump(&g, &alive);
        assert_eq!(s0.delivered, 4);
        // Find which way the installed tables route, and kill that hop.
        dp.inject(f, 1);
        dp.pump(&g, &alive);
        let via = {
            let id = dp.packets().len() as u32 - 1;
            let r = dp.batch.route[id as usize];
            dp.arena.get(r)[1]
        };
        alive[via as usize] = false;

        // Stale window: the tables still route through `via`, but the
        // forward node sees the current mask and NACKs.
        dp.inject(f, 5);
        let s1 = dp.pump(&g, &alive);
        assert_eq!(s1.misroutes, 0, "never forwarded into the dead node");
        assert_eq!(s1.nacked, 5);
        assert_eq!(dp.nacked_pending(), 5);
        assert_eq!(s1.delivered - s0.delivered, 1);

        // Control-plane refresh: new masks, retransmit, delivery.
        let mut gw2 = gw.clone();
        gw2[via as usize] = false;
        dp.install_tables(&gw2, &alive);
        assert_eq!(dp.requeue_nacked(), 5);
        let s2 = dp.pump(&g, &alive);
        assert_eq!(s2.delivered, s1.delivered + 5);
        assert_eq!(s2.misroutes, 0);
        assert_eq!(s2.retransmits, 5);
        // Every delivered packet's final route avoids the dead node.
        for id in 0..dp.packets().len() as u32 {
            if dp.packets().disposition(id) == Disposition::Delivered {
                assert!(dp.arena.get(dp.batch.route[id as usize]).iter().all(|&v| alive[v as usize]));
            }
        }
    }

    #[test]
    fn broadcast_kinds_match_flood_cost_and_gateway_saves() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let bounds = pacds_geom::Rect::paper_arena();
        let pts = pacds_geom::placement::uniform_points(&mut rng, bounds, 80);
        let full = gen::unit_disk(bounds, 25.0, &pts);
        let keep = pacds_graph::algo::largest_component(&full);
        let (g, _) = full.induced(&keep);
        let cds = compute_cds(&CdsInput::new(&g), &CdsConfig::policy(Policy::Degree));
        let alive = vec![true; g.n()];
        let mut dp = Dataplane::new();
        dp.install_tables(&cds, &alive);

        dp.inject_broadcast(0, true);
        dp.pump(&g, &alive);
        let blind = dp.last_flood().unwrap();
        assert_eq!(blind, flood_cost(&g, 0, None));

        dp.inject_broadcast(0, false);
        let stats = dp.pump(&g, &alive);
        let gateway = dp.last_flood().unwrap();
        assert_eq!(gateway, flood_cost(&g, 0, Some(&cds)));
        assert!(gateway.transmissions <= blind.transmissions);
        assert_eq!(gateway.reached, blind.reached, "same coverage");
        assert_eq!(
            stats.flood_transmissions,
            (blind.transmissions + gateway.transmissions) as u64
        );
        assert_eq!(stats.delivered, 2, "both broadcasts completed");
    }

    #[test]
    #[should_panic(expected = "packets in flight")]
    fn install_tables_refuses_in_flight_packets() {
        let (g, cds) = fig1();
        let alive = vec![true; 5];
        let mut dp = Dataplane::new();
        dp.install_tables(&cds, &alive);
        let f = dp.add_flow(4, 3);
        dp.inject(f, 1);
        let _ = g; // never pumped: the packet sits in the ingress queue
        dp.install_tables(&cds, &alive);
    }

    #[test]
    fn reset_packets_retains_flows_and_stats() {
        let (g, cds) = fig1();
        let alive = vec![true; 5];
        let mut dp = Dataplane::new();
        dp.install_tables(&cds, &alive);
        let f = dp.add_flow(0, 3);
        dp.inject(f, 2);
        let s = dp.pump(&g, &alive);
        dp.reset_packets();
        assert!(dp.packets().is_empty());
        assert_eq!(dp.flow_count(), 1);
        assert_eq!(dp.stats(), s, "stats are cumulative across resets");
        dp.inject(f, 2);
        let s2 = dp.pump(&g, &alive);
        assert_eq!(s2.delivered, s.delivered + 2);
    }
}
