//! Structure-of-arrays packet storage and the retained route arena.
//!
//! Packets never exist as individual heap objects: a [`PacketBatch`] holds
//! one parallel `Vec` per field and a packet is just an index into them
//! (the R2 router's vector representation). The engine's queues carry
//! those indices, so moving a packet between processing nodes is a `u32`
//! push. All buffers are retained across waves — `clear()` keeps
//! capacity — which is what makes the warm forwarding loop allocation-free
//! past its high-water mark.

use pacds_graph::NodeId;

/// Sentinel route handle: the packet has not been through backbone lookup.
pub const ROUTE_NONE: u32 = u32::MAX;

/// Terminal (or in-flight) state of a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Disposition {
    /// Still somewhere in the node graph.
    InFlight,
    /// Reached its destination through the egress node.
    Delivered,
    /// Terminally unroutable (undominated endpoint, out of range).
    Dropped,
    /// NACKed on a stale route; parked for retransmission after the next
    /// table rebuild.
    Nacked,
}

/// Traffic class, set at injection and read by the classify node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum PacketKind {
    /// Source-routed unicast over the gateway backbone.
    Unicast,
    /// Broadcast where every host retransmits (the baseline the paper
    /// argues against).
    BlindBroadcast,
    /// Broadcast where only gateway hosts retransmit.
    GatewayBroadcast,
}

/// The SoA packet store. Field vectors are index-parallel; `pub(crate)`
/// so the engine's dispatch loops read them without bounds-checked
/// accessor calls in the hot path.
#[derive(Debug, Default)]
pub struct PacketBatch {
    pub(crate) src: Vec<NodeId>,
    pub(crate) dst: Vec<NodeId>,
    pub(crate) kind: Vec<PacketKind>,
    /// Owning flow id (`u32::MAX` for flowless broadcast packets).
    pub(crate) flow: Vec<u32>,
    /// Route handle into the [`RouteArena`]; [`ROUTE_NONE`] pre-lookup.
    pub(crate) route: Vec<u32>,
    /// Index of the hop currently holding the packet, within its route.
    pub(crate) hop: Vec<u32>,
    pub(crate) disposition: Vec<Disposition>,
}

impl PacketBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Packets currently stored (all states).
    pub fn len(&self) -> usize {
        self.src.len()
    }

    /// Whether the batch holds no packets.
    pub fn is_empty(&self) -> bool {
        self.src.is_empty()
    }

    /// Drops all packets, retaining capacity.
    pub fn clear(&mut self) {
        self.src.clear();
        self.dst.clear();
        self.kind.clear();
        self.flow.clear();
        self.route.clear();
        self.hop.clear();
        self.disposition.clear();
    }

    /// Appends a packet and returns its index.
    pub fn push(&mut self, src: NodeId, dst: NodeId, kind: PacketKind, flow: u32) -> u32 {
        let id = self.src.len() as u32;
        self.src.push(src);
        self.dst.push(dst);
        self.kind.push(kind);
        self.flow.push(flow);
        self.route.push(ROUTE_NONE);
        self.hop.push(0);
        self.disposition.push(Disposition::InFlight);
        id
    }

    /// Source of packet `id`.
    pub fn src(&self, id: u32) -> NodeId {
        self.src[id as usize]
    }

    /// Destination of packet `id`.
    pub fn dst(&self, id: u32) -> NodeId {
        self.dst[id as usize]
    }

    /// Current state of packet `id`.
    pub fn disposition(&self, id: u32) -> Disposition {
        self.disposition[id as usize]
    }
}

/// Retained arena of source routes: hop sequences packed end-to-end in one
/// `Vec`, addressed by `(offset, len)` spans. A route handle is a span
/// index. [`RouteArena::clear`] (called on every table rebuild) drops all
/// routes at once while keeping capacity, so assembling the next epoch's
/// routes allocates nothing once warm.
#[derive(Debug, Default)]
pub struct RouteArena {
    hops: Vec<NodeId>,
    spans: Vec<(u32, u32)>,
}

impl RouteArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of routes stored.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether no routes are stored.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Drops every route, retaining capacity. Outstanding handles become
    /// invalid — the engine only calls this when no in-flight packet
    /// holds one (the pump-drains-everything invariant).
    pub fn clear(&mut self) {
        self.hops.clear();
        self.spans.clear();
    }

    /// Copies `path` in and returns its handle.
    pub fn push_route(&mut self, path: &[NodeId]) -> u32 {
        let offset = self.hops.len() as u32;
        self.hops.extend_from_slice(path);
        self.spans.push((offset, path.len() as u32));
        (self.spans.len() - 1) as u32
    }

    /// The hop sequence of route `id`.
    pub fn get(&self, id: u32) -> &[NodeId] {
        let (offset, len) = self.spans[id as usize];
        &self.hops[offset as usize..(offset + len) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_push_and_clear_retain_capacity() {
        let mut b = PacketBatch::new();
        let id = b.push(3, 7, PacketKind::Unicast, 0);
        assert_eq!(id, 0);
        assert_eq!(b.src(id), 3);
        assert_eq!(b.dst(id), 7);
        assert_eq!(b.disposition(id), Disposition::InFlight);
        assert_eq!(b.len(), 1);
        let cap = b.src.capacity();
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.src.capacity(), cap);
    }

    #[test]
    fn arena_spans_round_trip() {
        let mut a = RouteArena::new();
        let r0 = a.push_route(&[1, 2, 3]);
        let r1 = a.push_route(&[9]);
        assert_eq!(a.get(r0), &[1, 2, 3]);
        assert_eq!(a.get(r1), &[9]);
        assert_eq!(a.len(), 2);
        a.clear();
        assert!(a.is_empty());
        let r2 = a.push_route(&[5, 6]);
        assert_eq!(a.get(r2), &[5, 6]);
    }
}
