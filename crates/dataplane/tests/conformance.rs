//! Dataplane conformance against the routing oracles, over the
//! adversarial topology corpus.
//!
//! Two pins, per corpus case:
//!
//! * **Unicast**: pumping one packet per sampled (src, dst) pair through
//!   the full node graph delivers every packet with an aggregate hop
//!   count exactly equal to the sum of [`pacds_routing::route`] oracle
//!   hop counts (the dense-table implementation the dataplane's BFS-tree
//!   tables must match), with zero misroutes.
//! * **Broadcast**: the flood node's blind and gateway floods reproduce
//!   [`pacds_routing::flood_cost`] exactly, and gateway flooding never
//!   transmits more than blind flooding.

use pacds_core::{compute_cds, CdsConfig, CdsInput, Policy};
use pacds_dataplane::Dataplane;
use pacds_graph::NodeId;
use pacds_routing::{flood_cost, hop_count, route, RoutingState};
use pacds_testkit::corpus;

/// Sampled ordered pairs: everything for small graphs, a deterministic
/// stride otherwise.
fn pairs(n: usize) -> Vec<(NodeId, NodeId)> {
    let mut out = Vec::new();
    if n <= 12 {
        for s in 0..n as NodeId {
            for t in 0..n as NodeId {
                out.push((s, t));
            }
        }
    } else {
        for i in 0..64usize {
            let s = ((i * 31 + 7) % n) as NodeId;
            let t = ((i * 17 + 3) % n) as NodeId;
            out.push((s, t));
        }
    }
    out
}

#[test]
fn unicast_hop_counts_match_the_route_oracle_on_the_corpus() {
    let mut cases = corpus::named_families();
    cases.extend(corpus::random_unit_disk_cases(0xDA7A, 20));
    let mut checked = 0usize;
    for case in &cases {
        if !case.connected || case.graph.n() < 2 {
            continue;
        }
        let g = &case.graph;
        let cds = compute_cds(&CdsInput::new(g), &CdsConfig::policy(Policy::Degree));
        let state = RoutingState::build(g, &cds);
        let alive = vec![true; g.n()];
        let mut dp = Dataplane::new();
        dp.install_tables(&cds, &alive);

        let mut expected_hops = 0u64;
        let mut injected = 0u64;
        for (s, t) in pairs(g.n()) {
            let reference = match route(g, &state, s, t) {
                Ok(p) => p,
                // The corpus has no undominated vertices in connected
                // graphs; any error here is a real regression.
                Err(e) => panic!("{}: oracle route {s}->{t} failed: {e}", case.name),
            };
            expected_hops += hop_count(&reference) as u64;
            let f = dp.add_flow(s, t);
            dp.inject(f, 1);
            injected += 1;
        }
        let stats = dp.pump(g, &alive);
        assert_eq!(stats.delivered, injected, "{}", case.name);
        assert_eq!(stats.dropped, 0, "{}", case.name);
        assert_eq!(stats.nacked, 0, "{}", case.name);
        assert_eq!(stats.misroutes, 0, "{}", case.name);
        assert_eq!(
            stats.forwarded_hops, expected_hops,
            "{}: aggregate hops diverge from the dense-table oracle",
            case.name
        );
        checked += 1;
    }
    assert!(checked >= 30, "corpus shrank? only {checked} cases checked");
}

#[test]
fn broadcasts_match_flood_cost_on_the_corpus() {
    let mut cases = corpus::named_families();
    cases.extend(corpus::random_unit_disk_cases(0xF100D, 12));
    let mut checked = 0usize;
    for case in &cases {
        let g = &case.graph;
        if g.n() == 0 {
            continue;
        }
        let cds = compute_cds(&CdsInput::new(g), &CdsConfig::policy(Policy::Degree));
        let alive = vec![true; g.n()];
        let mut dp = Dataplane::new();
        dp.install_tables(&cds, &alive);
        for src in [0, (g.n() / 2) as NodeId, g.n() as NodeId - 1] {
            dp.inject_broadcast(src, true);
            dp.pump(g, &alive);
            let blind = dp.last_flood().unwrap();
            assert_eq!(blind, flood_cost(g, src, None), "{} blind {src}", case.name);

            dp.inject_broadcast(src, false);
            dp.pump(g, &alive);
            let gateway = dp.last_flood().unwrap();
            assert_eq!(
                gateway,
                flood_cost(g, src, Some(&cds)),
                "{} gateway {src}",
                case.name
            );
            assert!(
                gateway.transmissions <= blind.transmissions,
                "{}: gateway flood transmitted more than blind",
                case.name
            );
            if case.connected {
                assert_eq!(
                    gateway.reached, blind.reached,
                    "{}: gateway flood lost coverage",
                    case.name
                );
            }
        }
        checked += 1;
    }
    assert!(checked >= 30, "corpus shrank? only {checked} cases checked");
}
