//! # PACDS — Power-Aware Connected Dominating Sets
//!
//! Meta-crate for the reproduction of *"On Calculating Power-Aware
//! Connected Dominating Sets for Efficient Routing in Ad Hoc Wireless
//! Networks"* (Wu, Gao, Stojmenovic; ICPP 2001).
//!
//! This crate re-exports the whole workspace under one namespace and hosts
//! the runnable examples (`examples/`) and cross-crate integration tests
//! (`tests/`). Library users normally depend on the individual crates:
//!
//! * [`core`](pacds_core) — marking process and selective-removal rules.
//! * [`graph`](pacds_graph) — graph substrate.
//! * [`sim`](pacds_sim) — the ad hoc network simulator and experiments.
//! * [`routing`](pacds_routing) — dominating-set-based routing.
//! * [`dataplane`](pacds_dataplane) — packet-level forwarding engine over
//!   the gateway backbone: vector-dispatch node graph, source-routed
//!   unicast, gateway-flood broadcast, churn-driven retransmit.
//! * [`distributed`](pacds_distributed) — message-passing protocol.
//! * [`obs`](pacds_obs) — instrumentation layer (phase timers, rule-pass
//!   counters, JSONL/Prometheus export); compiled to no-ops unless the
//!   `obs` feature is on.
//! * [`serve`](pacds_serve) — the CDS query service: TCP server with a
//!   binary protocol, sharded result cache, worker pool, load generator.
//! * [`shard`](pacds_shard) — the spatially-sharded CDS engine for
//!   million-node unit-disk instances, bit-identical to the whole-graph
//!   pipeline.
//! * [`baselines`](pacds_baselines), [`energy`](pacds_energy),
//!   [`mobility`](pacds_mobility), [`geom`](pacds_geom) — supporting
//!   substrates.

pub use pacds_baselines as baselines;
pub use pacds_core as core;
pub use pacds_dataplane as dataplane;
pub use pacds_distributed as distributed;
pub use pacds_energy as energy;
pub use pacds_geom as geom;
pub use pacds_graph as graph;
pub use pacds_mobility as mobility;
pub use pacds_obs as obs;
pub use pacds_routing as routing;
pub use pacds_serve as serve;
pub use pacds_shard as shard;
pub use pacds_sim as sim;
