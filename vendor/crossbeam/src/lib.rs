//! Offline stub of `crossbeam`: mpmc-ish channels over a shared
//! Mutex<VecDeque> + Condvar (the workspace only needs clonable senders,
//! one receiver per channel, `send`/`recv`/`try_recv`).

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Chan<T> {
        queue: Mutex<(VecDeque<T>, usize)>, // (messages, live sender count)
        cv: Condvar,
    }

    pub struct Sender<T>(Arc<Chan<T>>);
    pub struct Receiver<T>(Arc<Chan<T>>);

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.queue.lock().unwrap().1 += 1;
            Sender(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            self.0.queue.lock().unwrap().1 -= 1;
            self.0.cv.notify_all();
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, t: T) -> Result<(), SendError<T>> {
            self.0.queue.lock().unwrap().0.push_back(t);
            self.0.cv.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(self.0.clone())
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut guard = self.0.queue.lock().unwrap();
            loop {
                if let Some(t) = guard.0.pop_front() {
                    return Ok(t);
                }
                if guard.1 == 0 {
                    return Err(RecvError);
                }
                guard = self.0.cv.wait(guard).unwrap();
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut guard = self.0.queue.lock().unwrap();
            match guard.0.pop_front() {
                Some(t) => Ok(t),
                None if guard.1 == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            queue: Mutex::new((VecDeque::new(), 1)),
            cv: Condvar::new(),
        });
        (Sender(chan.clone()), Receiver(chan))
    }

    pub fn bounded<T>(_cap: usize) -> (Sender<T>, Receiver<T>) {
        unbounded()
    }
}
