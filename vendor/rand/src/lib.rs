//! Offline stub of `rand` 0.9 exposing the subset of the API this
//! workspace uses: `Rng::random_range`, `SeedableRng::seed_from_u64`,
//! and `rngs::StdRng`. The generator is xoroshiro128++ seeded via
//! SplitMix64 — deterministic and statistically fine for tests, but the
//! streams do NOT match the real `rand` crate.

pub trait RngCore {
    fn next_u64(&mut self) -> u64;
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types uniformly sampleable from a half-open or inclusive interval.
/// One blanket `SampleRange` impl per range shape keeps integer-literal
/// inference working exactly like the real crate's.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    fn sample_interval<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R)
        -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_interval<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + if inclusive { 1 } else { 0 };
                if span == 0 {
                    // Full u64/i64 domain, inclusive.
                    return (lo as i128 + rng.next_u64() as i128) as $t;
                }
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_interval<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let denom = if inclusive { ((1u64 << 53) - 1) as f64 } else { (1u64 << 53) as f64 };
                let unit = (rng.next_u64() >> 11) as f64 / denom;
                lo + (unit as $t) * (hi - lo)
            }
        }
    )*};
}
uniform_float!(f32, f64);

pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_interval(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_interval(lo, hi, true, rng)
    }
}

pub trait Rng: RngCore {
    fn random_range<T: SampleUniform, RA: SampleRange<T>>(&mut self, range: RA) -> T {
        range.sample_from(self)
    }
    fn random_bool(&mut self, p: f64) -> bool {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoroshiro128++ (not the real StdRng stream).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s0: u64,
        s1: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s0 = splitmix64(&mut sm);
            let s1 = splitmix64(&mut sm);
            Self { s0, s1 }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let (s0, mut s1) = (self.s0, self.s1);
            let out = s0
                .wrapping_add(s1)
                .rotate_left(17)
                .wrapping_add(s0);
            s1 ^= s0;
            self.s0 = s0.rotate_left(49) ^ s1 ^ (s1 << 21);
            self.s1 = s1.rotate_left(28);
            out
        }
    }
}
