//! Offline stub of `serde_json` over the stub serde's `Json` tree:
//! `to_string`, `to_string_pretty`, `from_str`, and `Value`.

pub type Value = serde::Json;
pub type Error = serde::Error;
pub type Result<T> = std::result::Result<T, Error>;

pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.to_json().render(false))
}

pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.to_json().render(true))
}

pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_json())
}

pub fn from_str<T: for<'de> serde::Deserialize<'de>>(s: &str) -> Result<T> {
    let v = Parser { b: s.as_bytes(), i: 0 }.parse_document()?;
    T::from_json(&v)
}

pub fn from_value<T: for<'de> serde::Deserialize<'de>>(v: Value) -> Result<T> {
    T::from_json(&v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn parse_document(mut self) -> Result<Value> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.i != self.b.len() {
            return Err(Error::msg("trailing characters"));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Result<u8> {
        self.skip_ws();
        self.b.get(self.i).copied().ok_or_else(|| Error::msg("unexpected end of input"))
    }

    fn eat(&mut self, c: u8) -> Result<()> {
        if self.peek()? == c {
            self.i += 1;
            Ok(())
        } else {
            Err(Error::msg(format!("expected `{}`", c as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek()? {
            b'n' => self.keyword("null", Value::Null),
            b't' => self.keyword("true", Value::Bool(true)),
            b'f' => self.keyword("false", Value::Bool(false)),
            b'"' => Ok(Value::Str(self.parse_string()?)),
            b'[' => {
                self.i += 1;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.i += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    match self.peek()? {
                        b',' => self.i += 1,
                        b']' => {
                            self.i += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::msg("expected `,` or `]`")),
                    }
                }
            }
            b'{' => {
                self.i += 1;
                let mut fields = Vec::new();
                if self.peek()? == b'}' {
                    self.i += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.eat(b':')?;
                    let val = self.parse_value()?;
                    fields.push((key, val));
                    match self.peek()? {
                        b',' => self.i += 1,
                        b'}' => {
                            self.i += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return Err(Error::msg("expected `,` or `}`")),
                    }
                }
            }
            c if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            c => Err(Error::msg(format!("unexpected character `{}`", c as char))),
        }
    }

    fn keyword(&mut self, word: &str, v: Value) -> Result<Value> {
        self.skip_ws();
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(Error::msg(format!("expected `{word}`")))
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let c = *self
                .b
                .get(self.i)
                .ok_or_else(|| Error::msg("unterminated string"))?;
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = *self
                        .b
                        .get(self.i)
                        .ok_or_else(|| Error::msg("bad escape"))?;
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.i..self.i + 4)
                                .ok_or_else(|| Error::msg("bad \\u escape"))?;
                            self.i += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| Error::msg("bad hex"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("bad hex"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(Error::msg("unknown escape")),
                    }
                }
                _ => {
                    // Re-sync to char boundary for multi-byte UTF-8.
                    let start = self.i - 1;
                    let mut end = self.i;
                    while end < self.b.len() && (self.b[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.b[start..end])
                            .map_err(|_| Error::msg("invalid utf-8"))?,
                    );
                    self.i = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        self.skip_ws();
        let start = self.i;
        if self.b[self.i] == b'-' {
            self.i += 1;
        }
        let mut float = false;
        while self.i < self.b.len() {
            match self.b[self.i] {
                b'0'..=b'9' => self.i += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.i += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).unwrap();
        if float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::msg("bad number"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error::msg("bad number"))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::msg("bad number"))
        }
    }
}
