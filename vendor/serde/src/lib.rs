//! Offline stub of `serde` built around a concrete JSON value tree
//! (`Json`). `Serialize`/`Deserialize` convert to/from `Json`; the
//! companion `serde_derive` stub generates field-by-field impls and the
//! `serde_json` stub renders/parses text. Externally-tagged enum encoding
//! matches real serde's default, so round-trips through this stub are
//! self-consistent (but no serde data-model guarantees beyond that).

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The value tree every stub (de)serialization goes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (`serde_json::Value::get`).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn render(&self, pretty: bool) -> String {
        let mut out = String::new();
        self.render_into(&mut out, pretty, 0);
        out
    }

    fn render_into(&self, out: &mut String, pretty: bool, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => out.push_str(&n.to_string()),
            Json::I64(n) => out.push_str(&n.to_string()),
            Json::F64(x) => {
                if x.is_finite() {
                    out.push_str(&format!("{x:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if pretty {
                        newline_indent(out, depth + 1);
                    }
                    v.render_into(out, pretty, depth + 1);
                }
                if pretty && !items.is_empty() {
                    newline_indent(out, depth);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if pretty {
                        newline_indent(out, depth + 1);
                    }
                    escape_into(k, out);
                    out.push(':');
                    if pretty {
                        out.push(' ');
                    }
                    v.render_into(out, pretty, depth + 1);
                }
                if pretty && !fields.is_empty() {
                    newline_indent(out, depth);
                }
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, depth: usize) {
    out.push('\n');
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde stub error: {}", self.0)
    }
}

impl std::error::Error for Error {}

pub trait Serialize {
    fn to_json(&self) -> Json;
}

pub trait Deserialize<'de>: Sized {
    fn from_json(v: &Json) -> Result<Self, Error>;
}

// ---------- primitive impls ----------

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json { Json::U64(*self as u64) }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_json(v: &Json) -> Result<Self, Error> {
                match v {
                    Json::U64(n) => <$t>::try_from(*n).map_err(|_| Error::msg("uint out of range")),
                    Json::I64(n) => <$t>::try_from(*n).map_err(|_| Error::msg("uint out of range")),
                    Json::F64(x) if x.fract() == 0.0 && *x >= 0.0 => Ok(*x as $t),
                    _ => Err(Error::msg(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json { Json::I64(*self as i64) }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_json(v: &Json) -> Result<Self, Error> {
                match v {
                    Json::I64(n) => <$t>::try_from(*n).map_err(|_| Error::msg("int out of range")),
                    Json::U64(n) => <$t>::try_from(*n).map_err(|_| Error::msg("int out of range")),
                    Json::F64(x) if x.fract() == 0.0 => Ok(*x as $t),
                    _ => Err(Error::msg(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

macro_rules! ser_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json { Json::F64(*self as f64) }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_json(v: &Json) -> Result<Self, Error> {
                match v {
                    Json::F64(x) => Ok(*x as $t),
                    Json::U64(n) => Ok(*n as $t),
                    Json::I64(n) => Ok(*n as $t),
                    Json::Null => Ok(<$t>::NAN),
                    _ => Err(Error::msg("expected number")),
                }
            }
        }
    )*};
}
ser_float!(f32, f64);

impl Serialize for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}
impl<'de> Deserialize<'de> for bool {
    fn from_json(v: &Json) -> Result<Self, Error> {
        match v {
            Json::Bool(b) => Ok(*b),
            _ => Err(Error::msg("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}
impl<'de> Deserialize<'de> for String {
    fn from_json(v: &Json) -> Result<Self, Error> {
        match v {
            Json::Str(s) => Ok(s.clone()),
            _ => Err(Error::msg("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}
impl<'de> Deserialize<'de> for char {
    fn from_json(v: &Json) -> Result<Self, Error> {
        match v {
            Json::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::msg("expected single-char string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(t) => t.to_json(),
            None => Json::Null,
        }
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_json(v: &Json) -> Result<Self, Error> {
        match v {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(Serialize::to_json).collect())
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, Error> {
        match v {
            Json::Array(items) => items.iter().map(T::from_json).collect(),
            // A missing struct field reaches us as Null (the derive stub has
            // no `#[serde(default)]` support); real serde would default the
            // field, so mirror that for the one shape it matters here.
            Json::Null => Ok(Vec::new()),
            _ => Err(Error::msg("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V>
where
    K: std::fmt::Display,
{
    fn to_json(&self) -> Json {
        Json::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_json()))
                .collect(),
        )
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_json(&self) -> Json {
                Json::Array(vec![$(self.$n.to_json()),+])
            }
        }
        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn from_json(v: &Json) -> Result<Self, Error> {
                match v {
                    Json::Array(items) => Ok(($(
                        $t::from_json(items.get($n).ok_or_else(|| Error::msg("tuple too short"))?)?,
                    )+)),
                    _ => Err(Error::msg("expected tuple array")),
                }
            }
        }
    )*};
}
ser_tuple!(
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
);

impl Serialize for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}
impl<'de> Deserialize<'de> for Json {
    fn from_json(v: &Json) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

/// Minimal `serde::de` shim: `DeserializeOwned` alias used in bounds.
pub mod de {
    pub trait DeserializeOwned: for<'de> super::Deserialize<'de> {}
    impl<T: for<'de> super::Deserialize<'de>> DeserializeOwned for T {}
}
