//! Offline stub of `rayon`: the parallel-iterator entry points used by
//! this workspace, executed sequentially. Results are identical (the
//! workspace's uses are order-preserving maps); only wall-clock differs.

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

pub struct Par<I>(I);

pub trait IntoParallelIterator: IntoIterator + Sized {
    fn into_par_iter(self) -> Par<Self::IntoIter> {
        Par(self.into_iter())
    }
}
impl<T: IntoIterator + Sized> IntoParallelIterator for T {}

pub trait IntoParallelRefIterator<'a> {
    type Iter: Iterator;
    fn par_iter(&'a self) -> Par<Self::Iter>;
}
impl<'a, T: 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = std::slice::Iter<'a, T>;
    fn par_iter(&'a self) -> Par<Self::Iter> {
        Par(self.iter())
    }
}
impl<'a, T: 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = std::slice::Iter<'a, T>;
    fn par_iter(&'a self) -> Par<Self::Iter> {
        Par(self.iter())
    }
}

impl<I: Iterator> Par<I> {
    pub fn map<T, F: FnMut(I::Item) -> T>(self, f: F) -> Par<std::iter::Map<I, F>> {
        Par(self.0.map(f))
    }
    pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> Par<std::iter::Filter<I, F>> {
        Par(self.0.filter(f))
    }
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }
    pub fn collect_into_vec(self, out: &mut Vec<I::Item>) {
        out.clear();
        out.extend(self.0);
    }
    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }
    pub fn count(self) -> usize {
        self.0.count()
    }
    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f)
    }
}

pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// Stub of `rayon::ThreadPoolBuilder`: configuration is recorded but the
/// "pool" executes everything on the calling thread.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error (stub)")
    }
}
impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: if self.num_threads == 0 { 1 } else { self.num_threads },
        })
    }
}

pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        op()
    }
}
