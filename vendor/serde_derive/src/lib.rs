//! Offline stub of `serde_derive`: hand-rolled TokenStream parsing (no
//! syn/quote available) generating `Serialize`/`Deserialize` impls against
//! the stub serde's `Json` tree. Supports non-generic named structs, unit
//! structs, tuple structs, and enums with unit / tuple / struct variants —
//! the shapes this workspace actually derives. `#[serde(...)]` attributes
//! are accepted and ignored.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    generate(input, true)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    generate(input, false)
}

enum Shape {
    UnitStruct,
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

fn generate(input: TokenStream, ser: bool) -> TokenStream {
    let (name, shape) = parse(input);
    let code = match (&shape, ser) {
        (Shape::UnitStruct, true) => format!(
            "impl ::serde::Serialize for {name} {{
                fn to_json(&self) -> ::serde::Json {{ ::serde::Json::Null }}
            }}"
        ),
        (Shape::UnitStruct, false) => format!(
            "impl<'de> ::serde::Deserialize<'de> for {name} {{
                fn from_json(_v: &::serde::Json) -> Result<Self, ::serde::Error> {{ Ok({name}) }}
            }}"
        ),
        (Shape::NamedStruct(fields), true) => {
            let pushes: String = fields
                .iter()
                .map(|f| format!(
                    "(String::from(\"{f}\"), ::serde::Serialize::to_json(&self.{f})),"
                ))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{
                    fn to_json(&self) -> ::serde::Json {{
                        ::serde::Json::Object(vec![{pushes}])
                    }}
                }}"
            )
        }
        (Shape::NamedStruct(fields), false) => {
            let reads: String = fields
                .iter()
                .map(|f| format!(
                    "{f}: ::serde::Deserialize::from_json(
                        v.get(\"{f}\").unwrap_or(&::serde::Json::Null))?,"
                ))
                .collect();
            format!(
                "impl<'de> ::serde::Deserialize<'de> for {name} {{
                    fn from_json(v: &::serde::Json) -> Result<Self, ::serde::Error> {{
                        Ok({name} {{ {reads} }})
                    }}
                }}"
            )
        }
        (Shape::TupleStruct(n), true) => {
            let items: String = (0..*n)
                .map(|i| format!("::serde::Serialize::to_json(&self.{i}),"))
                .collect();
            let body = if *n == 1 {
                "::serde::Serialize::to_json(&self.0)".to_string()
            } else {
                format!("::serde::Json::Array(vec![{items}])")
            };
            format!(
                "impl ::serde::Serialize for {name} {{
                    fn to_json(&self) -> ::serde::Json {{ {body} }}
                }}"
            )
        }
        (Shape::TupleStruct(n), false) => {
            let body = if *n == 1 {
                format!("Ok({name}(::serde::Deserialize::from_json(v)?))")
            } else {
                let reads: String = (0..*n)
                    .map(|i| format!(
                        "::serde::Deserialize::from_json(
                            items.get({i}).unwrap_or(&::serde::Json::Null))?,"
                    ))
                    .collect();
                format!(
                    "match v {{
                        ::serde::Json::Array(items) => Ok({name}({reads})),
                        _ => Err(::serde::Error::msg(\"expected array\")),
                    }}"
                )
            };
            format!(
                "impl<'de> ::serde::Deserialize<'de> for {name} {{
                    fn from_json(v: &::serde::Json) -> Result<Self, ::serde::Error> {{ {body} }}
                }}"
            )
        }
        (Shape::Enum(variants), true) => {
            let arms: String = variants.iter().map(|var| {
                let v = &var.name;
                match &var.kind {
                    VariantKind::Unit => format!(
                        "{name}::{v} => ::serde::Json::Str(String::from(\"{v}\")),"
                    ),
                    VariantKind::Tuple(n) => {
                        let binds: String = (0..*n).map(|i| format!("__f{i},")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::to_json(__f0)".to_string()
                        } else {
                            let items: String = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_json(__f{i}),"))
                                .collect();
                            format!("::serde::Json::Array(vec![{items}])")
                        };
                        format!(
                            "{name}::{v}({binds}) => ::serde::Json::Object(vec![
                                (String::from(\"{v}\"), {payload})]),"
                        )
                    }
                    VariantKind::Struct(fields) => {
                        let binds: String = fields.iter().map(|f| format!("{f},")).collect();
                        let items: String = fields
                            .iter()
                            .map(|f| format!(
                                "(String::from(\"{f}\"), ::serde::Serialize::to_json({f})),"
                            ))
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Json::Object(vec![
                                (String::from(\"{v}\"), ::serde::Json::Object(vec![{items}]))]),"
                        )
                    }
                }
            }).collect();
            format!(
                "impl ::serde::Serialize for {name} {{
                    fn to_json(&self) -> ::serde::Json {{
                        match self {{ {arms} }}
                    }}
                }}"
            )
        }
        (Shape::Enum(variants), false) => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{0}\" => Ok({name}::{0}),", v.name))
                .collect();
            let tagged_arms: String = variants.iter().map(|var| {
                let v = &var.name;
                match &var.kind {
                    VariantKind::Unit => String::new(),
                    VariantKind::Tuple(n) => {
                        let body = if *n == 1 {
                            format!("Ok({name}::{v}(::serde::Deserialize::from_json(payload)?))")
                        } else {
                            let reads: String = (0..*n)
                                .map(|i| format!(
                                    "::serde::Deserialize::from_json(
                                        items.get({i}).unwrap_or(&::serde::Json::Null))?,"
                                ))
                                .collect();
                            format!(
                                "match payload {{
                                    ::serde::Json::Array(items) => Ok({name}::{v}({reads})),
                                    _ => Err(::serde::Error::msg(\"expected array payload\")),
                                }}"
                            )
                        };
                        format!("\"{v}\" => {{ {body} }}")
                    }
                    VariantKind::Struct(fields) => {
                        let reads: String = fields
                            .iter()
                            .map(|f| format!(
                                "{f}: ::serde::Deserialize::from_json(
                                    payload.get(\"{f}\").unwrap_or(&::serde::Json::Null))?,"
                            ))
                            .collect();
                        format!("\"{v}\" => Ok({name}::{v} {{ {reads} }}),")
                    }
                }
            }).collect();
            format!(
                "impl<'de> ::serde::Deserialize<'de> for {name} {{
                    fn from_json(v: &::serde::Json) -> Result<Self, ::serde::Error> {{
                        match v {{
                            ::serde::Json::Str(s) => match s.as_str() {{
                                {unit_arms}
                                _ => Err(::serde::Error::msg(\"unknown variant\")),
                            }},
                            ::serde::Json::Object(m) if m.len() == 1 => {{
                                let (tag, payload) = &m[0];
                                match tag.as_str() {{
                                    {tagged_arms}
                                    _ => Err(::serde::Error::msg(\"unknown variant\")),
                                }}
                            }}
                            _ => Err(::serde::Error::msg(\"expected enum encoding\")),
                        }}
                    }}
                }}"
            )
        }
    };
    code.parse().expect("serde_derive stub generated invalid Rust")
}

// ---------- parsing ----------

fn parse(input: TokenStream) -> (String, Shape) {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip attributes and visibility before `struct` / `enum`.
    let kind = loop {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2, // #[...]
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate)
                    }
                }
            }
            TokenTree::Ident(id) if id.to_string() == "struct" || id.to_string() == "enum" => {
                let k = id.to_string();
                i += 1;
                break k;
            }
            _ => i += 1,
        }
    };
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive stub: expected type name, got {other}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive stub: generic types are not supported ({name})");
        }
    }
    // Unit struct: `struct Name;`
    if kind == "struct" {
        match tokens.get(i) {
            None => return (name, Shape::UnitStruct),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                return (name, Shape::UnitStruct)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = split_top_level(g.stream()).len();
                return (name, Shape::TupleStruct(n));
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = split_top_level(g.stream())
                    .iter()
                    .map(|chunk| field_name(chunk))
                    .collect();
                return (name, Shape::NamedStruct(fields));
            }
            other => panic!("serde_derive stub: unexpected struct body {other:?}"),
        }
    }
    // Enum body.
    match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let variants = split_top_level(g.stream())
                .iter()
                .map(|chunk| parse_variant(chunk))
                .collect();
            (name, Shape::Enum(variants))
        }
        other => panic!("serde_derive stub: unexpected enum body {other:?}"),
    }
}

/// Splits a brace/paren body on top-level commas (tracking `<...>` depth,
/// which arrives as loose punctuation).
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = Vec::new();
    let mut cur = Vec::new();
    let mut angle = 0i32;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                if !cur.is_empty() {
                    chunks.push(std::mem::take(&mut cur));
                }
                continue;
            }
            _ => {}
        }
        cur.push(tt);
    }
    if !cur.is_empty() {
        chunks.push(cur);
    }
    chunks
}

/// Skips attributes/visibility, returns the leading identifier.
fn leading_ident(chunk: &[TokenTree]) -> (String, usize) {
    let mut i = 0;
    loop {
        match &chunk[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = chunk.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            TokenTree::Ident(id) => return (id.to_string(), i + 1),
            other => panic!("serde_derive stub: expected identifier, got {other}"),
        }
    }
}

fn field_name(chunk: &[TokenTree]) -> String {
    let (name, next) = leading_ident(chunk);
    match chunk.get(next) {
        Some(TokenTree::Punct(p)) if p.as_char() == ':' => name,
        other => panic!("serde_derive stub: expected `:` after field `{name}`, got {other:?}"),
    }
}

fn parse_variant(chunk: &[TokenTree]) -> Variant {
    let (name, next) = leading_ident(chunk);
    let kind = match chunk.get(next) {
        None => VariantKind::Unit,
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            VariantKind::Tuple(split_top_level(g.stream()).len())
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => VariantKind::Struct(
            split_top_level(g.stream())
                .iter()
                .map(|c| field_name(c))
                .collect(),
        ),
        Some(TokenTree::Punct(p)) if p.as_char() == '=' => VariantKind::Unit,
        other => panic!("serde_derive stub: unexpected variant body {other:?}"),
    };
    Variant { name, kind }
}
