//! Offline stub of `parking_lot`: `Mutex`/`RwLock` over std, with the
//! poison-free parking_lot API shape.

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(t: T) -> Self {
        Self(std::sync::Mutex::new(t))
    }
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(t: T) -> Self {
        Self(std::sync::RwLock::new(t))
    }
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}
