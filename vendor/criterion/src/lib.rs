//! Offline stub of `criterion`: each benchmark closure runs a handful of
//! iterations and reports wall-clock per iteration — enough to smoke-test
//! that benches compile and run, with none of criterion's statistics.

use std::fmt::Display;
use std::time::Instant;

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- --test` smoke mode runs each body once.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { iters: if test_mode { 1 } else { 10 } }
    }
}

pub struct Bencher {
    iters: u64,
}

impl Bencher {
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        let per = start.elapsed().as_secs_f64() / self.iters as f64;
        println!("    {:>12.3} us/iter ({} iters)", per * 1e6, self.iters);
    }
}

pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(group: impl Display, param: impl Display) -> Self {
        BenchmarkId(format!("{group}/{param}"))
    }
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId(param.to_string())
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    c: &'a mut Criterion,
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), c: self }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) -> &mut Self {
        println!("bench {id}");
        f(&mut Bencher { iters: self.iters });
        self
    }
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) -> &mut Self {
        println!("bench {}/{id}", self.name);
        f(&mut Bencher { iters: self.c.iters });
        self
    }
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        println!("bench {}/{id}", self.name);
        f(&mut Bencher { iters: self.c.iters }, input);
        self
    }
    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $cfg;
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
