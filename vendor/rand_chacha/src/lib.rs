//! Offline stub of `rand_chacha` 0.9: a deterministic PRNG under the
//! ChaCha8Rng name (xoshiro256**, NOT the real ChaCha stream).

use rand::{RngCore, SeedableRng};

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    s: [u64; 4],
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed ^ 0xDEAD_BEEF_CAFE_F00D;
        let mut s = [0u64; 4];
        for slot in &mut s {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *slot = z ^ (z >> 31);
        }
        Self { s }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}

pub type ChaCha12Rng = ChaCha8Rng;
pub type ChaCha20Rng = ChaCha8Rng;
