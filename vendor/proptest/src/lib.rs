//! Offline stub of `proptest`: strategies sample from a deterministic
//! PRNG, `proptest!` runs each property for `cases` random inputs. No
//! shrinking, no persistence — failures report the raw assert.

use std::ops::{Range, RangeInclusive};

/// Deterministic generator handed to strategies.
pub struct TestRng {
    s: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        Self { s: seed ^ 0x5DEECE66D }
    }
    pub fn next_u64(&mut self) -> u64 {
        self.s = self.s.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.s;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F>(self, _reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}
impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

pub struct Filter<S, F> {
    inner: S,
    f: F,
}
impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("proptest stub: filter rejected 1000 consecutive samples");
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}
impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);
impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span == 0 {
                    return (lo as i128 + rng.next_u64() as i128) as $t;
                }
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                self.start() + (rng.unit_f64() as $t) * (self.end() - self.start())
            }
        }
    )*};
}
float_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($t:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($t,)+) = self;
                ($($t.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy!((A)(A, B)(A, B, C)(A, B, C, D)(A, B, C, D, E)(A, B, C, D, E, F));

pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t { rng.next_u64() as $t }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}
impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64() * 2e3 - 1e3
    }
}
impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        (rng.unit_f64() * 2e3 - 1e3) as f32
    }
}

pub struct Any<T>(std::marker::PhantomData<T>);
impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(std::marker::PhantomData)
    }
}
impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub struct Union<T>(pub Vec<BoxedStrategy<T>>);
impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = (rng.next_u64() % self.0.len() as u64) as usize;
        self.0[i].sample(rng)
    }
}

#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}
impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}
impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end);
        SizeRange { lo: r.start, hi: r.end - 1 }
    }
}
impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange { lo: *r.start(), hi: *r.end() }
    }
}

pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }

    impl<S> Clone for VecStrategy<S>
    where
        S: Clone,
    {
        fn clone(&self) -> Self {
            VecStrategy { elem: self.elem.clone(), size: self.size.clone() }
        }
    }
}

#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}
impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}
impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

pub mod test_runner {
    pub use super::ProptestConfig as Config;
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            // Skip this case (runs inside the per-case closure).
            return Ok(());
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strat)),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            // The user-supplied attrs already include `#[test]`.
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __seed = 0x9E3779B97F4A7C15u64;
                for __b in stringify!($name).bytes() {
                    __seed = __seed.rotate_left(7) ^ (__b as u64);
                }
                let mut __rng = $crate::TestRng::new(__seed);
                #[allow(clippy::redundant_closure_call)]
                for __case in 0..__cfg.cases {
                    let _ = __case;
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    // Per-case closure so bodies may `return Ok(())` like real proptest.
                    let __res: ::std::result::Result<(), ::std::string::String> =
                        (|| { $body Ok(()) })();
                    __res.unwrap();
                }
            }
        )*
    };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy,
    };
    pub mod prop {
        pub use crate::collection;
    }
}
