//! Integration tests that re-enact the paper's worked examples.
//!
//! * Figure 1 — the 5-node marking example (§2.2).
//! * Figures 3–4 — the Rule 1 / Rule 2 mini-examples.
//! * §3.3 / Figures 6–9 — the 27-node walkthrough. The full topology is not
//!   printed in the paper, but the neighbour sets it quotes pin down two
//!   clusters exactly (hosts 1–11 around nodes 2/4/9, and hosts 20–27
//!   around nodes 21/22/27); we rebuild those and check every rule-by-rule
//!   claim the text makes about them.

use pacds::core::{
    compute_cds_trace, marking, rule1_pass, rule2_pass, CdsConfig, CdsInput, Policy, PriorityKey,
    Rule2Semantics,
};
use pacds::graph::{mask_to_vec, Graph, NeighborBitmap};

// ---------------------------------------------------------------- Figure 1

/// Figure 1: u, v, w, x, y with v, w the only marked hosts.
/// Encoding: u=0, v=1, w=2, x=3, y=4.
#[test]
fn figure1_marking_yields_v_and_w() {
    let g = Graph::from_edges(5, &[(0, 1), (0, 4), (1, 2), (1, 4), (2, 3)]);
    assert_eq!(mask_to_vec(&marking(&g)), vec![1, 2]);
    // And the marked set is a CDS with intact shortest paths (Props 1-3).
    let m = marking(&g);
    assert!(pacds::core::verify_cds(&g, &m).is_ok());
    assert!(pacds::core::verify::preserves_shortest_paths(&g, &m));
}

// ------------------------------------------------------------ Figures 3, 4

/// Figure 3(a): `N[v] ⊆ N[u]` with distinct neighbourhoods — only `u`
/// remains a gateway under Rule 1.
#[test]
fn figure3a_rule1_removes_covered_vertex() {
    // v=0, u=1; v's closed neighbourhood {0,1,2} inside u's {0,1,2,3}.
    let g = Graph::from_edges(4, &[(0, 1), (0, 2), (1, 2), (1, 3)]);
    let bm = NeighborBitmap::build(&g);
    let key = PriorityKey::build(Policy::Id, &g, None);
    // Both marked (hand-forced, as in the figure's snapshot).
    let out = rule1_pass(&g, &bm, &[true, true, false, false], &key, None);
    assert_eq!(mask_to_vec(&out), vec![1]);
}

/// Figure 3(b): `N[v] = N[u]` — exactly one of the twins is removed, and
/// the smaller id loses.
#[test]
fn figure3b_rule1_breaks_twin_tie_by_id() {
    let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3)]);
    let bm = NeighborBitmap::build(&g);
    let key = PriorityKey::build(Policy::Id, &g, None);
    let out = rule1_pass(&g, &bm, &[true, true, false, false], &key, None);
    assert_eq!(mask_to_vec(&out), vec![1]);
}

/// Figure 4: `v` covered by two marked neighbours `u, w` — Rule 2 removes
/// `v` when it has the minimum id.
#[test]
fn figure4_rule2_removes_min_id_covered_vertex() {
    // v=0 adjacent to u=1, w=2 (u-w adjacent); v's other neighbour 3 is
    // covered by u; pendant 4 keeps w marked.
    let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 4)]);
    let bm = NeighborBitmap::build(&g);
    let key = PriorityKey::build(Policy::Id, &g, None);
    let marked = marking(&g);
    let out = rule2_pass(&g, &bm, &marked, &key, Rule2Semantics::MinOfThree, None);
    assert!(!out[0], "v has the minimum id and is covered");
    assert!(out[1] && out[2]);
}

// ------------------------------------------- §3.3, hosts 1..11 (Figure 6)

/// The §3.3 neighbourhoods around hosts 2, 4, 9:
/// `N(1) = {2,4}`, `N(2) = {1,3,4,5,6,7,8,9}`, `N(4) = {1,2,3,9,10,11}`,
/// `N(9) = {2,4,5,6,7,8,10}`; hosts 3, 5–8, 10, 11 have no edges among
/// themselves. Host ids used verbatim (0 unused).
fn section33_low_cluster() -> Graph {
    let mut edges = vec![(1, 2), (1, 4), (2, 4)];
    edges.extend([(2, 3), (2, 5), (2, 6), (2, 7), (2, 8), (2, 9)]);
    edges.extend([(4, 3), (4, 9), (4, 10), (4, 11)]);
    edges.extend([(9, 5), (9, 6), (9, 7), (9, 8), (9, 10)]);
    Graph::from_edges(12, &edges)
}

#[test]
fn section33_neighbor_sets_match_the_paper() {
    let g = section33_low_cluster();
    assert_eq!(g.neighbors(2), &[1, 3, 4, 5, 6, 7, 8, 9]);
    assert_eq!(g.neighbors(4), &[1, 2, 3, 9, 10, 11]);
    assert_eq!(g.neighbors(9), &[2, 4, 5, 6, 7, 8, 10]);
    assert_eq!(g.neighbors(1), &[2, 4]);
}

/// "Node 1 will not mark itself ... node 4 will mark itself" (§3.3), and
/// the hub trio 2, 4, 9 are exactly the marked hosts of this cluster.
#[test]
fn section33_marking_marks_the_hubs() {
    let g = section33_low_cluster();
    assert_eq!(mask_to_vec(&marking(&g)), vec![2, 4, 9]);
}

/// "Node 2 can unmark itself by applying Rule 2" — `N(2) ⊆ N(4) ∪ N(9)`
/// and 2 has the minimum id among {2, 4, 9}.
#[test]
fn section33_rule2_id_unmarks_node_2() {
    let g = section33_low_cluster();
    let bm = NeighborBitmap::build(&g);
    let key = PriorityKey::build(Policy::Id, &g, None);
    let marked = marking(&g);
    let out = rule2_pass(&g, &bm, &marked, &key, Rule2Semantics::MinOfThree, None);
    assert_eq!(mask_to_vec(&out), vec![4, 9]);
}

/// "Node 9 can unmark itself by applying Rule 2a": 9 and 2 are covered,
/// 4 is not (host 11 is private to it), and `nd(9) = 7 < nd(2) = 8`.
#[test]
fn section33_rule2a_unmarks_node_9_not_node_2() {
    let g = section33_low_cluster();
    let bm = NeighborBitmap::build(&g);
    let key = PriorityKey::build(Policy::Degree, &g, None);
    let marked = marking(&g);
    let out = rule2_pass(&g, &bm, &marked, &key, Rule2Semantics::CaseAnalysis, None);
    assert!(!out[9], "node 9 has the smaller degree among the covered pair");
    assert!(out[2], "node 2 outdegrees node 9 and must stay");
    assert!(out[4], "node 4 is not covered");
}

/// Rule 2b at the paper's energy snapshot: el(2) = el(9), so the id
/// tie-break removes node 2 (the text's Figure 8(h) narrative).
#[test]
fn section33_rule2b_unmarks_node_2_on_energy_tie() {
    let g = section33_low_cluster();
    let bm = NeighborBitmap::build(&g);
    let mut energy = vec![5u64; 12];
    energy[4] = 9; // node 4's level is irrelevant: it is not covered
    let key = PriorityKey::build(Policy::Energy, &g, Some(&energy));
    let marked = marking(&g);
    let out = rule2_pass(&g, &bm, &marked, &key, Rule2Semantics::CaseAnalysis, None);
    assert!(!out[2], "energy tie, id(2) < id(9)");
    assert!(out[9] && out[4]);
}

// ----------------------------------------- §3.3, hosts 20..27 (Figures 6-9)

/// The §3.3 cluster around hosts 21, 22, 27:
/// `N[21] = {21,22,23,24}`, `N[22] = {20,...,27}`, `N[27] = {22,25,26,27}`,
/// with 23-24 and 25-26 unconnected so 21, 22 and 27 are all marked.
fn section33_high_cluster() -> Graph {
    let mut edges = vec![(21, 22), (21, 23), (21, 24)];
    edges.extend([(22, 20), (22, 23), (22, 24), (22, 25), (22, 26), (22, 27)]);
    edges.extend([(27, 25), (27, 26)]);
    Graph::from_edges(28, &edges)
}

#[test]
fn section33_high_cluster_marks_21_22_27() {
    let g = section33_high_cluster();
    let marked: Vec<u32> = mask_to_vec(&marking(&g))
        .into_iter()
        .filter(|&v| v >= 20)
        .collect();
    assert_eq!(marked, vec![21, 22, 27]);
}

/// "After applying Rule 1, node 21 will be unmarked" — and 27 survives the
/// id comparison (id(27) > id(22)).
#[test]
fn section33_rule1_id_unmarks_only_21() {
    let g = section33_high_cluster();
    let bm = NeighborBitmap::build(&g);
    let key = PriorityKey::build(Policy::Id, &g, None);
    let out = rule1_pass(&g, &bm, &marking(&g), &key, None);
    assert!(!out[21]);
    assert!(out[22]);
    assert!(out[27], "id(27) > id(22): Rule 1 keeps node 27");
}

/// "After applying Rule 1a, both nodes 21 and 27 will be unmarked" —
/// degree priority removes both covered low-degree hosts.
#[test]
fn section33_rule1a_unmarks_21_and_27() {
    let g = section33_high_cluster();
    let bm = NeighborBitmap::build(&g);
    let key = PriorityKey::build(Policy::Degree, &g, None);
    let out = rule1_pass(&g, &bm, &marking(&g), &key, None);
    assert!(!out[21] && !out[27]);
    assert!(out[22]);
}

/// "After applying Rule 1b, node 21 will be unmarked" (el(21) < el(22)),
/// while 27 stays because el(27) = el(22) and id(27) > id(22).
#[test]
fn section33_rule1b_unmarks_only_21() {
    let g = section33_high_cluster();
    let bm = NeighborBitmap::build(&g);
    let mut energy = vec![5u64; 28];
    energy[21] = 1;
    let key = PriorityKey::build(Policy::Energy, &g, Some(&energy));
    let out = rule1_pass(&g, &bm, &marking(&g), &key, None);
    assert!(!out[21]);
    assert!(out[22] && out[27]);
}

/// "After applying Rule 1b', both nodes 21 and 27 will be unmarked" —
/// the energy tie between 22 and 27 now falls through to node degree.
#[test]
fn section33_rule1b_prime_unmarks_21_and_27() {
    let g = section33_high_cluster();
    let bm = NeighborBitmap::build(&g);
    let mut energy = vec![5u64; 28];
    energy[21] = 1;
    let key = PriorityKey::build(Policy::EnergyDegree, &g, Some(&energy));
    let out = rule1_pass(&g, &bm, &marking(&g), &key, None);
    assert!(!out[21] && !out[27]);
    assert!(out[22]);
}

// ------------------------------------------------------- end-to-end traces

/// The full pipeline on the low cluster: each policy's final gateway set is
/// a valid CDS of the (connected) cluster.
#[test]
fn section33_full_pipeline_verifies_for_every_policy() {
    // Drop the isolated vertex 0 to get a connected graph.
    let g = section33_low_cluster();
    let keep: Vec<bool> = (0..12).map(|v| v != 0).collect();
    let (sub, _) = g.induced(&keep);
    let energy = vec![5u64; sub.n()];
    for policy in Policy::ALL {
        for cfg in [CdsConfig::policy(policy), CdsConfig::paper(policy)] {
            let trace = compute_cds_trace(&CdsInput::with_energy(&sub, &energy), &cfg);
            assert!(
                pacds::core::verify_cds(&sub, &trace.after_rule2).is_ok(),
                "{policy:?} {cfg:?}"
            );
        }
    }
}

// ---------------------------------------------- §4, broadcast reduction

/// Gateway-relayed broadcast on the §3.3 clusters: the paper's claim that
/// "only dominating nodes need to relay" cuts transmissions by well over
/// half at these densities. Blind flooding costs one transmission per
/// host; gateway flooding costs the source plus the reached gateways —
/// pinned exactly, with full coverage retained.
#[test]
fn section33_gateway_flood_reduction_is_pinned() {
    use pacds::routing::flood_cost;
    let low = {
        let g = section33_low_cluster();
        let keep: Vec<bool> = (0..12).map(|v| v != 0).collect();
        g.induced(&keep).0
    };
    let high = {
        let g = section33_high_cluster();
        let keep: Vec<bool> = (0..28).map(|v| v >= 20).collect();
        g.induced(&keep).0
    };
    // (graph, policy, blind transmissions, gateway transmissions): Id
    // keeps {4,9} / {22,27} as gateways, Degree keeps {2,4,9} / {22}.
    let cases: [(&Graph, Policy, usize, usize); 4] = [
        (&low, Policy::Id, 11, 3),
        (&low, Policy::Degree, 11, 4),
        (&high, Policy::Id, 8, 3),
        (&high, Policy::Degree, 8, 2),
    ];
    for (g, policy, blind_tx, gw_tx) in cases {
        let cds = pacds::core::compute_cds(&CdsInput::new(g), &CdsConfig::policy(policy));
        for src in 0..g.n() as pacds::graph::NodeId {
            let blind = flood_cost(g, src, None);
            let gateway = flood_cost(g, src, Some(&cds));
            assert_eq!(blind.transmissions, blind_tx, "{policy:?} src={src}");
            // A gateway source double-counts as source-transmitter and
            // relay, saving one more transmission.
            let expect = gw_tx - usize::from(cds[src as usize]);
            assert_eq!(gateway.transmissions, expect, "{policy:?} src={src}");
            assert_eq!(gateway.reached, blind.reached, "{policy:?} src={src}");
        }
        // ≥ 60% reduction — the bound the n = 10⁵ bench gates on.
        assert!((blind_tx - gw_tx) as f64 / blind_tx as f64 >= 0.60);
    }
}
