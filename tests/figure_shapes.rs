//! Statistical shape checks for the paper's figures, at reduced scale so
//! they run in test time. The full-scale regeneration lives in
//! `pacds-bench` (`cargo run -p pacds-bench --release --bin fig10` etc.);
//! these tests pin the *orderings* the paper reports so a regression in any
//! crate shows up as a failed shape. EXPERIMENTS.md records the calibration
//! behind each expectation.

use pacds::core::Policy;
use pacds::energy::DrainModel;
use pacds::sim::experiments::{cds_size_experiment, lifetime_experiment, SweepConfig};

fn sweep() -> SweepConfig {
    SweepConfig {
        sizes: vec![40, 80],
        trials: 16,
        seed: 0xFEED,
        policies: Policy::ALL.to_vec(),
    }
}

fn mean_of(series: &[pacds::sim::experiments::Series], label: &str, n: usize) -> f64 {
    series
        .iter()
        .find(|s| s.label == label)
        .unwrap_or_else(|| panic!("missing series {label}"))
        .points
        .iter()
        .find(|(sz, _)| *sz == n)
        .unwrap_or_else(|| panic!("missing size {n}"))
        .1
        .mean
}

/// Figure 10 ordering: NR is by far the largest set; ND prunes hardest;
/// EL2's degree tie-break keeps it at or below EL1.
#[test]
fn fig10_shape_nr_largest_nd_smallest() {
    let series = cds_size_experiment(&sweep());
    for &n in &[40usize, 80] {
        let nr = mean_of(&series, "NR", n);
        let id = mean_of(&series, "ID", n);
        let nd = mean_of(&series, "ND", n);
        let el1 = mean_of(&series, "EL1", n);
        let el2 = mean_of(&series, "EL2", n);
        assert!(
            nr > id && nr > nd && nr > el1 && nr > el2,
            "n={n}: NR must dominate ({nr} vs {id}/{nd}/{el1}/{el2})"
        );
        assert!(nd <= id, "n={n}: ND {nd} must not exceed ID {id}");
        assert!(nd <= el1 && nd <= el2, "n={n}: ND is the strongest reducer");
        assert!(el2 <= el1 + 0.5, "n={n}: EL2 {el2} at or below EL1 {el1}");
    }
}

/// Figure 10 growth: the unpruned marking tracks network size; the pruned
/// backbones stay much smaller at high density.
#[test]
fn fig10_marking_grows_and_pruning_saturates() {
    let series = cds_size_experiment(&sweep());
    let nr40 = mean_of(&series, "NR", 40);
    let nr80 = mean_of(&series, "NR", 80);
    assert!(nr80 > nr40 * 1.5, "marking grows with N: {nr40} -> {nr80}");
    for label in ["ID", "ND", "EL1", "EL2"] {
        let at80 = mean_of(&series, label, 80);
        assert!(
            at80 < nr80 * 0.6,
            "{label} should stay well below NR at n=80: {at80} vs {nr80}"
        );
    }
}

/// Figures 12–13 headline: under the N-dependent drain models, the
/// energy-aware policies clearly outlive the static ID priority, even
/// though EL1 does not produce the smallest gateway set.
#[test]
fn fig12_13_energy_rotation_beats_static_ids() {
    for model in [DrainModel::LinearInN, DrainModel::QuadraticInN] {
        let series = lifetime_experiment(&sweep(), model);
        for &n in &[40usize, 80] {
            let id = mean_of(&series, "ID", n);
            let el1 = mean_of(&series, "EL1", n);
            let el2 = mean_of(&series, "EL2", n);
            assert!(
                el1 > id,
                "{}: EL1 {el1} must beat ID {id} at n={n}",
                model.label()
            );
            assert!(
                el2 > id * 0.95,
                "{}: EL2 {el2} must at least match ID {id} at n={n}",
                model.label()
            );
        }
    }
}

/// The paper's remark "EL1 ... does not generate the smallest connected
/// dominating set": the lifetime winner is not the size winner.
#[test]
fn el1_wins_lifetime_without_smallest_set() {
    let s_size = cds_size_experiment(&sweep());
    let s_life = lifetime_experiment(&sweep(), DrainModel::LinearInN);
    let nd_size = mean_of(&s_size, "ND", 80);
    let el1_size = mean_of(&s_size, "EL1", 80);
    let nd_life = mean_of(&s_life, "ND", 80);
    let el1_life = mean_of(&s_life, "EL1", 80);
    assert!(el1_size > nd_size, "EL1's set is larger than ND's");
    assert!(el1_life > nd_life, "yet EL1 outlives ND");
}

/// Figure 11 (literal model 1): `d = 2/|G'| < d' = 1` for realistic set
/// sizes, so lifetimes cluster at/above the 100-interval non-gateway wall
/// and the policies barely separate (the documented Model-1 pathology).
#[test]
fn fig11_literal_model1_clusters_at_the_wall() {
    let series = lifetime_experiment(&sweep(), DrainModel::ConstantTotal);
    for s in &series {
        for (n, summary) in &s.points {
            assert!(
                summary.mean >= 90.0,
                "{} at n={n}: {} below the wall",
                s.label,
                summary.mean
            );
        }
    }
    // NR's huge gateway set drains slowest of all under the literal model.
    let nr = mean_of(&series, "NR", 80);
    let id = mean_of(&series, "ID", 80);
    assert!(nr >= id, "NR {nr} vs ID {id}");
}

/// The alternative model-1 reading (fixed d = 2 per gateway) restores the
/// asymmetry: lifetimes drop below the wall and rotation helps again.
#[test]
fn model1_alternative_reading_discriminates() {
    let series = lifetime_experiment(&sweep(), DrainModel::ConstantPerGateway { value: 2.0 });
    let id = mean_of(&series, "ID", 80);
    let el1 = mean_of(&series, "EL1", 80);
    assert!(id < 100.0, "gateways now die first: {id}");
    assert!(el1 >= id, "EL1 {el1} vs ID {id}");
}
