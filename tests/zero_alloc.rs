//! Pins the tentpole zero-allocation claim with a counting allocator.
//!
//! After warm-up, one simulation interval's CDS work — quantise energy,
//! recompute the gateway set through the retained [`CdsWorkspace`], copy it
//! into the caller's mask, verify it, and apply battery drain — performs
//! **zero** heap allocations, every interval, at paper scale (n = 1000).
//!
//! The topology rebuild (`advance_topology`) is deliberately outside the
//! measured region: it is allocation-free only once the retained CSR /
//! adjacency buffers have grown to the mobility pattern's high-water mark,
//! which no fixed warm-up count can guarantee (buffers grow monotonically,
//! so it is amortised-free, not strictly free). The CDS path has no such
//! caveat, and this test fails if anyone reintroduces a per-interval
//! allocation there.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

fn allocs() -> usize {
    ALLOCS.load(Ordering::Relaxed)
}

use pacds::core::{CdsConfig, Policy};
use pacds::energy::DrainModel;
use pacds::graph::VertexMask;
use pacds::serve::handler::{handle_payload, ServeState, WorkerScratch};
use pacds::serve::protocol;
use pacds::sim::{NetworkState, SimConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

const N: usize = 1000;
const WARMUP: usize = 25;
const MEASURED: usize = 10;

#[test]
fn cds_interval_work_is_allocation_free_after_warmup() {
    // EnergyDegree exercises the full path: energy quantisation, priority
    // key construction, and both pruning rules.
    let cfg = SimConfig::paper(N, Policy::EnergyDegree, DrainModel::LinearInN);
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let mut st = NetworkState::init(cfg, &mut rng);
    let mut gateways = VertexMask::new();

    for _ in 0..WARMUP {
        st.advance_topology(&mut rng);
        st.compute_gateways_into(&mut gateways);
        st.verify_gateways(&gateways).expect("warm-up CDS must verify");
        st.drain(&gateways);
    }

    for interval in 0..MEASURED {
        // Topology rebuild outside the measured region (see module docs).
        st.advance_topology(&mut rng);

        let before = allocs();
        st.compute_gateways_into(&mut gateways);
        st.verify_gateways(&gateways).expect("steady-state CDS must verify");
        let died = st.drain(&gateways);
        let grew = allocs() - before;

        assert!(died.is_empty(), "paper energy budget outlasts this test");
        assert_eq!(
            grew, 0,
            "interval {interval}: CDS compute/verify/drain performed {grew} heap allocations"
        );
    }
}

#[test]
fn workspace_recompute_on_static_topology_is_allocation_free() {
    // With the topology frozen, the *entire* recompute cycle must be free
    // after a single priming call — this isolates the workspace-reuse
    // property from mobility-driven buffer growth.
    let cfg = SimConfig::paper(N, Policy::EnergyDegree, DrainModel::LinearInN);
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let mut st = NetworkState::init(cfg, &mut rng);
    let mut gateways = VertexMask::new();
    st.compute_gateways_into(&mut gateways);
    st.verify_gateways(&gateways).expect("initial CDS must verify");

    let before = allocs();
    for _ in 0..MEASURED {
        st.compute_gateways_into(&mut gateways);
        st.verify_gateways(&gateways).expect("repeat CDS must verify");
    }
    assert_eq!(
        allocs() - before,
        0,
        "repeated workspace recomputation on a static topology allocated"
    );
}

#[test]
fn sharded_engine_recompute_is_allocation_free_after_warmup() {
    // The sharded engine's spatial path with `threads == 1` (tiles solved
    // inline, no spawns): partition, per-tile halo gather + CSR build,
    // per-tile marking + rules on retained workspaces, ownership merge.
    // Every buffer is retained, so once each has reached its high-water
    // mark a recompute performs zero heap allocations — the property that
    // lets a long-lived serving worker run the engine per request.
    use pacds::geom::Rect;
    use pacds::shard::{ShardSpec, ShardedCds};

    let bounds = Rect::square(300.0);
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let base = pacds::geom::placement::uniform_points(&mut rng, bounds, N);
    let energy: Vec<u64> = (0..N as u64).map(|i| (i * 7919) % 100).collect();
    let cds_cfg = CdsConfig::policy(Policy::EnergyDegree);
    let mut engine = ShardedCds::new(ShardSpec {
        shards: 4,
        threads: 1,
        ..ShardSpec::auto()
    })
    .expect("default halo is legal");

    // Jitter cycles through a few distinct layouts so warm recomputes do
    // real work (tile membership and halos shift), while every measured
    // layout has already been seen in warm-up — retained buffers grow
    // monotonically to their high-water marks, so growth cannot recur.
    const LAYOUTS: usize = 5;
    let mut points = base.clone();
    let layout = |points: &mut Vec<pacds::geom::Point2>, round: usize| {
        for (i, (p, b)) in points.iter_mut().zip(&base).enumerate() {
            let phase = (i + (round % LAYOUTS) * 131) as f64;
            p.x = (b.x + 3.0 * phase.sin()).clamp(0.0, 300.0);
            p.y = (b.y + 3.0 * phase.cos()).clamp(0.0, 300.0);
        }
    };

    for round in 0..WARMUP {
        layout(&mut points, round);
        engine
            .compute_unit_disk(bounds, 25.0, &points, Some(&energy), &cds_cfg)
            .expect("shardable config");
    }

    for round in 0..MEASURED {
        layout(&mut points, round);
        let before = allocs();
        engine
            .compute_unit_disk(bounds, 25.0, &points, Some(&energy), &cds_cfg)
            .expect("shardable config");
        let grew = allocs() - before;
        assert!(engine.gateway_count() > 0, "round {round}: degenerate instance");
        assert_eq!(
            grew, 0,
            "round {round}: warm sharded recompute performed {grew} heap allocations"
        );
    }
}

#[test]
fn parallel_sharded_recompute_is_allocation_free_after_warmup() {
    // The same property for the *parallel* path (`threads == 2`): the
    // persistent worker pool spawns its thread on the first compute, the
    // LPT schedule sorts in place on a retained order buffer, stripe
    // cursors are retained atomics, and the condvar handoff itself is
    // futex-based — so a warm parallel recompute, halo build included,
    // performs zero heap allocations on the *calling* thread. (The
    // counting allocator is global, so pool-thread allocations would be
    // caught too; timing makes their attribution to a measured round
    // nondeterministic, which is why warm-up must cover every layout.)
    use pacds::geom::Rect;
    use pacds::shard::{ShardSpec, ShardedCds};

    let bounds = Rect::square(300.0);
    let mut rng = ChaCha8Rng::seed_from_u64(6);
    let base = pacds::geom::placement::uniform_points(&mut rng, bounds, N);
    let energy: Vec<u64> = (0..N as u64).map(|i| (i * 6271) % 100).collect();
    let cds_cfg = CdsConfig::policy(Policy::EnergyDegree);
    let mut engine = ShardedCds::new(ShardSpec {
        shards: 8,
        threads: 2,
        ..ShardSpec::auto()
    })
    .expect("default halo is legal");

    const LAYOUTS: usize = 5;
    let mut points = base.clone();
    let layout = |points: &mut Vec<pacds::geom::Point2>, round: usize| {
        for (i, (p, b)) in points.iter_mut().zip(&base).enumerate() {
            let phase = (i + (round % LAYOUTS) * 137) as f64;
            p.x = (b.x + 3.0 * phase.sin()).clamp(0.0, 300.0);
            p.y = (b.y + 3.0 * phase.cos()).clamp(0.0, 300.0);
        }
    };

    // First compute spawns the pool thread; later warm-up rounds grow
    // every retained buffer to its high-water mark across all layouts.
    for round in 0..WARMUP {
        layout(&mut points, round);
        engine
            .compute_unit_disk(bounds, 25.0, &points, Some(&energy), &cds_cfg)
            .expect("shardable config");
    }

    for round in 0..MEASURED {
        layout(&mut points, round);
        let before = allocs();
        engine
            .compute_unit_disk(bounds, 25.0, &points, Some(&energy), &cds_cfg)
            .expect("shardable config");
        let grew = allocs() - before;
        assert!(engine.gateway_count() > 0, "round {round}: degenerate instance");
        assert_eq!(
            grew, 0,
            "round {round}: warm parallel recompute performed {grew} heap allocations"
        );
        let work = engine.thread_work();
        assert_eq!(
            work.iter().map(|w| w.tiles_solved).sum::<u64>(),
            engine.stats().tiles as u64,
            "round {round}: executor tallies must cover every tile exactly once"
        );
    }
}

#[test]
fn serve_cache_warm_request_handling_is_allocation_free() {
    // The serving layer's hot path: decode a compute-CDS frame, validate
    // and canonicalise the edges into retained scratch, derive the cache
    // key, and copy the cached response frame into the retained reply
    // buffer. After the first (cold, cache-filling) request, the whole
    // round performs zero heap allocations — the ≥10k req/s claim in
    // BENCH_serve.json rests on this.
    let cfg = SimConfig::paper(200, Policy::EnergyDegree, DrainModel::LinearInN);
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let st = NetworkState::init(cfg, &mut rng);
    let edges: Vec<(u32, u32)> = st.graph().edges().collect();
    let energy: Vec<u64> = vec![9; st.graph().n()];

    let state = ServeState::new(8 << 20);
    let mut scratch = WorkerScratch::new();
    let serve_cfg = CdsConfig::sequential(Policy::EnergyDegree);
    let mut frame = Vec::new();
    protocol::encode_compute_cds(
        &mut frame,
        0,
        0,
        &serve_cfg,
        st.graph().n() as u32,
        &edges,
        Some(&energy),
    );
    let payload = &frame[protocol::LEN_PREFIX..];
    let mut resp = Vec::new();

    // Cold request computes and populates the cache; a few extra rounds
    // let every retained buffer reach its high-water mark.
    for _ in 0..WARMUP {
        handle_payload(&state, &mut scratch, payload, &mut resp, Instant::now());
    }
    assert!(resp[protocol::LEN_PREFIX + protocol::CACHE_FLAG_PAYLOAD_OFFSET] == 1);

    // Half the measured rounds run with span sampling ON: in a trace
    // build every request then draws a real trace id and records its
    // request/cache-lookup spans — which must land in the static ring,
    // not the heap, for the warm path to stay allocation-free.
    for round in 0..MEASURED {
        if round == MEASURED / 2 {
            pacds::obs::set_sampling(1);
        }
        let before = allocs();
        handle_payload(&state, &mut scratch, payload, &mut resp, Instant::now());
        let grew = allocs() - before;
        assert_eq!(
            grew, 0,
            "round {round}: cache-warm request handling performed {grew} heap allocations \
             (sampling {})",
            pacds::obs::sampling(),
        );
    }
    pacds::obs::set_sampling(0);
    assert_eq!(state.cache.stats().hits as usize, WARMUP - 1 + MEASURED);
}

#[test]
fn dataplane_warm_forwarding_loop_is_allocation_free() {
    // The forwarding hot path, epoch churn included: inject a wave on
    // every registered flow plus both broadcast kinds, pump the node
    // graph to quiescence, reset the packet store — and every other
    // round, reinstall the tables first so the lazy BFS trees and the
    // route arena rebuild from their retained pools. Once the warm-up
    // has seen both the cached-route and the rebuild path, a full wave
    // performs zero heap allocations — the ≥10⁶ hops/s claim in
    // BENCH_dataplane.json rests on this.
    use pacds::core::{compute_cds, CdsInput};
    use pacds::dataplane::Dataplane;
    use pacds::geom::Rect;

    let bounds = Rect::square(300.0);
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let pts = pacds::geom::placement::uniform_points(&mut rng, bounds, N);
    let full = pacds::graph::gen::unit_disk(bounds, 25.0, &pts);
    let keep = pacds::graph::algo::largest_component(&full);
    let (g, _) = full.induced(&keep);
    let cds = compute_cds(&CdsInput::new(&g), &CdsConfig::policy(Policy::Degree));
    let alive = vec![true; g.n()];

    let mut dp = Dataplane::new();
    dp.install_tables(&cds, &alive);
    let flows: Vec<u32> = (0..64u32)
        .map(|i| {
            let s = (i as usize * 131 + 17) % g.n();
            let t = (i as usize * 197 + 5) % g.n();
            dp.add_flow(s as u32, t as u32)
        })
        .collect();

    let wave = |dp: &mut Dataplane, reinstall: bool| {
        if reinstall {
            dp.install_tables(&cds, &alive);
        }
        for &f in &flows {
            dp.inject(f, 4);
        }
        dp.inject_broadcast(0, false);
        dp.inject_broadcast(0, true);
        let stats = dp.pump(&g, &alive);
        assert_eq!(stats.misroutes, 0);
        assert_eq!(dp.nacked_pending(), 0, "no churn here: nothing to NACK");
        dp.reset_packets();
    };

    for round in 0..WARMUP {
        wave(&mut dp, round % 2 == 0);
    }

    // Half the measured rounds run with span sampling ON, as in the serve
    // test: pump spans must land in the static ring, not the heap.
    for round in 0..MEASURED {
        if round == MEASURED / 2 {
            pacds::obs::set_sampling(1);
        }
        let before = allocs();
        wave(&mut dp, round % 2 == 0);
        let grew = allocs() - before;
        assert_eq!(
            grew, 0,
            "round {round}: warm forwarding wave performed {grew} heap allocations \
             (sampling {})",
            pacds::obs::sampling(),
        );
    }
    pacds::obs::set_sampling(0);
    let stats = dp.stats();
    assert_eq!(stats.delivered, stats.injected, "every wave fully delivered");
    assert!(stats.forwarded_hops > stats.injected, "multi-hop traffic");
}
