//! Cross-crate integration: placement → unit-disk graph → CDS → routing
//! tables → packet delivery, for every policy, plus the distributed
//! protocol equivalence at full pipeline scale.

use pacds::core::{compute_cds, CdsConfig, CdsInput, Policy};
use pacds::distributed::{run_distributed, run_distributed_sequential};
use pacds::graph::{algo, gen, NodeId};
use pacds::routing::{route, stretch_summary, RoutingState};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn connected_network(n: usize, seed: u64) -> pacds::graph::Graph {
    let bounds = pacds::geom::Rect::paper_arena();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    loop {
        let pts = pacds::geom::placement::uniform_points(&mut rng, bounds, n);
        let g = gen::unit_disk(bounds, 25.0, &pts);
        if algo::is_connected(&g) {
            return g;
        }
    }
}

#[test]
fn every_policy_supports_full_packet_delivery() {
    for seed in [1u64, 2, 3] {
        let g = connected_network(45, seed);
        let energy: Vec<u64> = (0..g.n() as u64).map(|i| (i * 17) % 100).collect();
        for policy in Policy::ALL {
            let cds = compute_cds(
                &CdsInput::with_energy(&g, &energy),
                &CdsConfig::policy(policy),
            );
            let state = RoutingState::build(&g, &cds);
            for s in (0..g.n() as NodeId).step_by(5) {
                for t in (0..g.n() as NodeId).step_by(7) {
                    let path = route(&g, &state, s, t)
                        .unwrap_or_else(|e| panic!("{policy:?} {s}->{t}: {e}"));
                    assert_eq!(path.first(), Some(&s));
                    assert_eq!(path.last(), Some(&t));
                    assert!(path.windows(2).all(|w| g.has_edge(w[0], w[1])));
                }
            }
        }
    }
}

#[test]
fn pruning_trades_set_size_for_stretch() {
    let g = connected_network(60, 9);
    let nr = compute_cds(&CdsInput::new(&g), &CdsConfig::policy(Policy::NoPruning));
    let nd = compute_cds(&CdsInput::new(&g), &CdsConfig::paper(Policy::Degree));
    let count = |m: &[bool]| m.iter().filter(|&&b| b).count();
    assert!(count(&nd) <= count(&nr));

    let s_nr = stretch_summary(&g, &RoutingState::build(&g, &nr));
    let s_nd = stretch_summary(&g, &RoutingState::build(&g, &nd));
    assert_eq!(s_nr.failures, 0);
    // NR satisfies Property 3: every pair routes along a true shortest path
    // except for the enter/leave hops.
    assert!(s_nr.mean_extra_hops <= s_nd.mean_extra_hops + 2.0);
    if pacds::core::verify_cds(&g, &nd).is_ok() {
        assert_eq!(s_nd.failures, 0);
    }
}

#[test]
fn distributed_protocol_agrees_on_unit_disk_networks() {
    for seed in [11u64, 12] {
        let g = connected_network(50, seed);
        let energy: Vec<u64> = (0..g.n() as u64).map(|i| (i * 23) % 100).collect();
        for policy in Policy::ALL {
            for cfg in [CdsConfig::policy(policy), CdsConfig::paper(policy)] {
                let central = compute_cds(&CdsInput::with_energy(&g, &energy), &cfg);
                let seq = run_distributed_sequential(&g, Some(&energy), &cfg);
                assert_eq!(central, seq, "sequential {policy:?}");
                let thr = run_distributed(&g, Some(&energy), &cfg);
                assert_eq!(central, thr, "threaded {policy:?}");
            }
        }
    }
}

#[test]
fn baselines_compare_sanely_with_marking() {
    let g = connected_network(70, 21);
    let count = |m: &[bool]| m.iter().filter(|&&b| b).count();

    let marked = compute_cds(&CdsInput::new(&g), &CdsConfig::policy(Policy::NoPruning));
    let pruned = compute_cds(&CdsInput::new(&g), &CdsConfig::paper(Policy::Degree));
    let mcds = pacds::baselines::greedy_mcds(&g);
    assert!(pacds::core::verify_cds(&g, &mcds).is_ok());

    // The centralized greedy has global knowledge: it should beat the raw
    // marking and be competitive with (typically beat) local pruning.
    assert!(count(&mcds) <= count(&marked));
    assert!(count(&mcds) <= count(&pruned) + 5);

    // Lowest-ID clusterheads dominate; with borders the overlay dominates.
    let clustering = pacds::baselines::lowest_id_clusters(&g);
    assert!(pacds::core::verify::is_dominating_set(&g, &clustering.is_head));
    let overlay = pacds::baselines::cluster_gateways(&g, &clustering);
    assert!(pacds::core::verify::is_dominating_set(&g, &overlay));
}
