//! Cross-crate checks of the `pacds-obs` instrumentation layer.
//!
//! Built twice in CI: with `--features obs` the reference pipeline must
//! tick the counters, record phase timings, and round-trip its snapshot
//! through the JSONL and Prometheus exporters; without the feature the
//! identical API must be a no-op that records nothing.

use pacds::core::{CdsConfig, CdsWorkspace, Policy};
use pacds::graph::gen;
use pacds::obs::{self, Counter, Snapshot};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// One reference CDS computation through the retained workspace.
fn reference_run() {
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let g = gen::connected_gnp(&mut rng, 60, 0.1, 8);
    let energy: Vec<u64> = (0..60).map(|i| (i * 13) % 100).collect();
    let mut ws = CdsWorkspace::with_capacity(60);
    let gw = ws.compute(&g, Some(&energy), &CdsConfig::policy(Policy::EnergyDegree));
    assert!(gw.iter().any(|&b| b));
}

#[cfg(feature = "obs")]
#[test]
fn instrumented_reference_run_ticks_counters_and_exports() {
    let before = Snapshot::capture();
    reference_run();
    let snap = Snapshot::capture();
    assert!(obs::enabled());
    assert!(snap.enabled);

    // Every stage of the pipeline left a trace.
    let delta = |c: Counter| snap.counter(c.label()) - before.counter(c.label());
    assert_eq!(delta(Counter::WorkspaceComputes), 1);
    assert_eq!(delta(Counter::MarkingScanned), 60);
    assert!(delta(Counter::Rule1Candidates) > 0);
    assert!(delta(Counter::Rule2Vertices) > 0);
    for phase in ["marking", "rule1", "rule2", "bitmap_rebuild", "key_rebuild"] {
        let p = snap.phase(phase).unwrap_or_else(|| panic!("missing phase {phase}"));
        assert!(p.count >= 1, "phase {phase} never timed");
    }

    // JSONL round-trip: the line parses back to an identical snapshot.
    let line = snap.to_json_line();
    let back: Snapshot = serde_json::from_str(&line).unwrap();
    assert_eq!(back, snap);

    // Prometheus exposition carries the same counters.
    let mut buf = Vec::new();
    obs::write_prometheus(&snap, &mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    assert!(text.contains("pacds_workspace_computes_total"));
    assert!(text.contains("pacds_phase_duration_ns"));
}

#[cfg(not(feature = "obs"))]
#[test]
fn disabled_build_exposes_noop_api() {
    reference_run();
    assert!(!obs::enabled());

    // The full recording surface is callable but records nothing.
    obs::inc(Counter::WorkspaceComputes);
    obs::add(Counter::Rule1Candidates, 42);
    obs::record_phase_ns(obs::Phase::Marking, 1_000);
    {
        let _t = obs::phase_timer(obs::Phase::Verify);
    }
    let mut tally = obs::Tally::new();
    tally.bump();
    tally.add(7);
    tally.flush(Counter::Rule2PairsProbed);

    let snap = Snapshot::capture();
    assert!(!snap.enabled);
    assert!(snap.counters.is_empty(), "{:?}", snap.counters);
    assert!(snap.phases.is_empty());
    assert_eq!(snap.counter("workspace.computes"), 0);

    // Exporters still work on the empty snapshot.
    let back: Snapshot = serde_json::from_str(&snap.to_json_line()).unwrap();
    assert_eq!(back, snap);
    let mut buf = Vec::new();
    obs::write_prometheus(&snap, &mut buf).unwrap();
}
